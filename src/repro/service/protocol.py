"""The service wire contract: strict JSON in, deterministic JSON out.

Three jobs live here, all of them about *meaning* rather than transport
(HTTP and stdio both ride this module):

1. **Parsing.**  :func:`parse_request` turns an untrusted JSON payload
   into a frozen :class:`CanonicalRequest` or raises
   :class:`RequestRejected` with an HTTP status and a machine-readable
   error code.  The contract is strict: unknown keys are rejected, not
   ignored — a typo'd ``"max_bufers"`` must fail loudly instead of
   silently optimizing under the default cap.

2. **Canonicalization.**  :meth:`CanonicalRequest.fingerprint` hashes
   the canonical JSON form (sorted keys, every solution-affecting field,
   nothing else) with SHA-256.  The fingerprint is the service twin of
   the batch checkpoint fingerprint: it keys the journal-backed result
   cache, so two requests for the same work — across clients, across
   server restarts — resolve to one computation.  Client-side envelope
   fields (``id``, ``wait``) are deliberately *outside* the canonical
   form; they name the conversation, not the work.

3. **Response shaping.**  :func:`result_payload` projects a
   :class:`~repro.batch.NetResult` onto exactly the fields of
   :meth:`NetResult.signature() <repro.batch.NetResult.signature>` — the
   repo's determinism currency — minus the free-text error message.
   Everything nondeterministic (wall-clock seconds, attempt counts,
   human-readable messages) travels in a separate ``meta`` object, so a
   chaos run's responses can be compared bit-for-bit against a
   fault-free serial run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..core.dp import ENGINE_CHOICES
from ..core.objective import Objective
from ..units import UM

#: bump when the request/response schema changes incompatibly; echoed in
#: every response and recorded in the service journal header.  Version 2
#: added the ``objective`` block (the unified Objective API).
PROTOCOL_VERSION = 2

#: journal protocol versions this build can *read*.  Version 1 journals
#: carry no objective block, which parses as the legacy default — and
#: legacy-shaped requests canonicalize (and therefore fingerprint) to
#: the version-1 form, so resuming a v1 journal is exact, not a best
#: effort.
COMPATIBLE_PROTOCOLS = (1, 2)

#: optimization modes the service accepts (mirrors the batch layer).
MODES = ("buffopt", "delay")

#: pruning rules the service accepts.
PRUNE_CHOICES = ("timing", "pareto")

#: default wire segmentation, matching ``repro.api.SessionOptions``.
DEFAULT_SEGMENT_LENGTH = 500 * UM

#: machine-readable error codes carried by :class:`RequestRejected`.
ERROR_CODES = (
    "malformed",     # 400 — unparseable / invalid / unknown-key payload
    "not_found",     # 404 — unknown job id or route
    "method_not_allowed",  # 405 — wrong HTTP verb for the route
    "pending",       # 409 — result asked for before the job finished
    "too_large",     # 413 — request body over the size cap
    "shed",          # 429 — admission queue full, retry later
    "draining",      # 503 — server is draining / not accepting work
    "deadline",      # 504 — synchronous wait timed out (job continues)
)

_STATUS_BY_CODE = {
    "malformed": 400,
    "not_found": 404,
    "method_not_allowed": 405,
    "pending": 409,
    "too_large": 413,
    "shed": 429,
    "draining": 503,
    "deadline": 504,
}


class RequestRejected(Exception):
    """A request the service refuses — control flow, not a server fault.

    Carries everything the transport needs to answer: an HTTP status,
    a code from :data:`ERROR_CODES`, a human-readable message, and an
    optional ``Retry-After`` hint (seconds) for the load-shedding codes.
    Deliberately *not* a :class:`~repro.errors.ReproError`: these are
    per-request outcomes the server survives by design, never
    operational failures (those raise
    :class:`~repro.errors.ServiceError`).
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown rejection code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = _STATUS_BY_CODE[code]
        self.retry_after = retry_after

    # -- factories, one per rejection shape the service produces --------

    @classmethod
    def malformed(cls, message: str) -> "RequestRejected":
        return cls("malformed", message)

    @classmethod
    def not_found(cls, message: str) -> "RequestRejected":
        return cls("not_found", message)

    @classmethod
    def method_not_allowed(cls, message: str) -> "RequestRejected":
        return cls("method_not_allowed", message)

    @classmethod
    def pending(cls, message: str) -> "RequestRejected":
        return cls("pending", message)

    @classmethod
    def too_large(cls, message: str) -> "RequestRejected":
        return cls("too_large", message)

    @classmethod
    def shed(cls, message: str, retry_after: float) -> "RequestRejected":
        return cls("shed", message, retry_after=retry_after)

    @classmethod
    def draining(cls, message: str, retry_after: float) -> "RequestRejected":
        return cls("draining", message, retry_after=retry_after)

    @classmethod
    def deadline(cls, message: str) -> "RequestRejected":
        return cls("deadline", message)


@dataclass(frozen=True)
class CanonicalRequest:
    """One unit of service work, fully normalized.

    Every field here affects the solution (or its telemetry signature),
    so every field participates in :meth:`fingerprint`.  Unlike the
    batch checkpoint fingerprint, ``engine`` is *included*: the service
    cache stores final response payloads, and candidate telemetry in the
    payload is engine-visible, so serving a ``"fast"`` result for a
    ``"lishi"`` request would not be the lie-free cache the protocol
    promises.
    """

    #: net identity and generator inputs (``repro.workloads.NetSpec``).
    net_name: str
    sink_count: int
    span: float
    seed: int
    #: engine policy, mirroring :class:`~repro.batch.BatchConfig`.
    mode: str = "buffopt"
    engine: str = "reference"
    max_buffers: Optional[int] = None
    prune: str = "timing"
    min_slack: float = 0.0
    max_segment_length: Optional[float] = DEFAULT_SEGMENT_LENGTH
    #: per-request guards, mapped onto a fresh
    #: :class:`~repro.core.budget.RunBudget` inside the worker.
    deadline_seconds: Optional[float] = None
    max_candidates: Optional[int] = None
    #: independently certify the outcome before answering.
    certify: bool = False
    #: structured objective (protocol v2).  ``None`` means the legacy
    #: ``mode`` semantics; when set, ``mode`` always equals
    #: ``objective.mode`` (the parser enforces it).
    objective: Optional[Objective] = None

    def to_json(self) -> Dict[str, Any]:
        """The canonical wire form (also what the journal stores).

        Legacy-shaped objectives (``None``, or exactly what the old
        ``mode=`` strings meant) deliberately emit the version-1 form —
        no ``objective`` key — so their fingerprints, and therefore the
        journal-backed cache entries of every pre-objective deployment,
        stay valid.
        """
        body: Dict[str, Any] = {
            "net": {
                "name": self.net_name,
                "sink_count": self.sink_count,
                "span": self.span,
                "seed": self.seed,
            },
            "mode": self.mode,
            "engine": self.engine,
            "max_buffers": self.max_buffers,
            "prune": self.prune,
            "min_slack": self.min_slack,
            "max_segment_length": self.max_segment_length,
            "deadline_seconds": self.deadline_seconds,
            "max_candidates": self.max_candidates,
            "certify": self.certify,
        }
        if self.objective is not None and not self.objective.is_legacy():
            # The objective block carries mode and min_slack itself; the
            # top-level twins are dropped so the canonical form has one
            # unambiguous spelling per request (and the parser's
            # mutual-exclusion rule round-trips).
            del body["mode"]
            del body["min_slack"]
            body["objective"] = self.objective.to_json()
        return body

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form — the cache key."""
        canonical = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: keys accepted at the top level of a submit payload.  ``id`` and
#: ``wait`` are client-envelope fields, excluded from the canonical form.
_TOP_KEYS = frozenset({
    "net", "mode", "engine", "max_buffers", "prune", "min_slack",
    "max_segment_length", "deadline_seconds", "max_candidates",
    "certify", "objective", "id", "wait",
})

_NET_KEYS = frozenset({"name", "sink_count", "span", "seed"})


def _reject(field: str, message: str) -> RequestRejected:
    return RequestRejected.malformed(f"field {field!r}: {message}")


def _want_str(payload: Mapping[str, Any], field: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise _reject(field, f"expected a non-empty string, got {value!r}")
    return value


def _want_int(field: str, value: Any, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _reject(field, f"expected an integer, got {value!r}")
    if value < minimum:
        raise _reject(field, f"expected an integer >= {minimum}, got {value}")
    return value


def _want_number(field: str, value: Any, *, positive: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _reject(field, f"expected a number, got {value!r}")
    number = float(value)
    if positive and number <= 0:
        raise _reject(field, f"expected a positive number, got {value}")
    if number != number or number in (float("inf"), float("-inf")):
        raise _reject(field, f"expected a finite number, got {value}")
    return number


def _want_bool(field: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise _reject(field, f"expected a boolean, got {value!r}")
    return value


def _want_choice(field: str, value: Any, choices: Tuple[str, ...]) -> str:
    if not isinstance(value, str) or value not in choices:
        raise _reject(field, f"expected one of {choices}, got {value!r}")
    return value


def parse_request(payload: Any) -> CanonicalRequest:
    """Validate an untrusted submit payload into a :class:`CanonicalRequest`.

    Raises :class:`RequestRejected` (code ``"malformed"``, HTTP 400) on
    the first violation, naming the offending field.  Unknown keys — at
    the top level or inside ``net`` — are violations.
    """
    if not isinstance(payload, Mapping):
        raise RequestRejected.malformed(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _TOP_KEYS)
    if unknown:
        raise RequestRejected.malformed(
            f"unknown field(s): {', '.join(repr(k) for k in unknown)}"
        )
    net = payload.get("net")
    if not isinstance(net, Mapping):
        raise _reject("net", "expected an object with name/sink_count/"
                             "span/seed")
    unknown = sorted(set(net) - _NET_KEYS)
    if unknown:
        raise RequestRejected.malformed(
            f"unknown field(s) under 'net': "
            f"{', '.join(repr(k) for k in unknown)}"
        )
    missing = sorted(_NET_KEYS - set(net))
    if missing:
        raise RequestRejected.malformed(
            f"missing field(s) under 'net': "
            f"{', '.join(repr(k) for k in missing)}"
        )

    kwargs: Dict[str, Any] = {
        "net_name": _want_str(net, "net.name", net["name"]),
        "sink_count": _want_int("net.sink_count", net["sink_count"], 1),
        "span": _want_number("net.span", net["span"], positive=True),
        "seed": _want_int("net.seed", net["seed"], 0),
    }
    if "objective" in payload and payload["objective"] is not None:
        if "mode" in payload:
            raise RequestRejected.malformed(
                "'mode' and 'objective' are mutually exclusive: the "
                "objective block carries its own mode"
            )
        if "min_slack" in payload:
            raise RequestRejected.malformed(
                "'min_slack' and 'objective' are mutually exclusive: the "
                "objective block carries its own min_slack"
            )
        try:
            objective = Objective.from_json(payload["objective"])
        except ValueError as exc:
            raise _reject("objective", str(exc)) from None
        if objective.selection == "pareto":
            raise _reject(
                "objective",
                "the pareto selection returns an outcome *set*; the "
                "service answers with a single outcome — select "
                "min-power or power-capped instead",
            )
        kwargs["objective"] = objective
        kwargs["mode"] = objective.mode
        kwargs["min_slack"] = objective.min_slack
    if "mode" in payload:
        kwargs["mode"] = _want_choice("mode", payload["mode"], MODES)
    if "engine" in payload:
        kwargs["engine"] = _want_choice(
            "engine", payload["engine"], tuple(ENGINE_CHOICES)
        )
    if "max_buffers" in payload and payload["max_buffers"] is not None:
        kwargs["max_buffers"] = _want_int(
            "max_buffers", payload["max_buffers"], 1
        )
    if "prune" in payload:
        kwargs["prune"] = _want_choice(
            "prune", payload["prune"], PRUNE_CHOICES
        )
    if "min_slack" in payload:
        kwargs["min_slack"] = _want_number("min_slack", payload["min_slack"])
    if "max_segment_length" in payload:
        value = payload["max_segment_length"]
        kwargs["max_segment_length"] = (
            None if value is None
            else _want_number("max_segment_length", value, positive=True)
        )
    if "deadline_seconds" in payload and payload["deadline_seconds"] is not None:
        kwargs["deadline_seconds"] = _want_number(
            "deadline_seconds", payload["deadline_seconds"], positive=True
        )
    if "max_candidates" in payload and payload["max_candidates"] is not None:
        kwargs["max_candidates"] = _want_int(
            "max_candidates", payload["max_candidates"], 1
        )
    if "certify" in payload:
        kwargs["certify"] = _want_bool("certify", payload["certify"])
    if "id" in payload and not isinstance(payload["id"], str):
        raise _reject("id", f"expected a string, got {payload['id']!r}")
    if "wait" in payload:
        _want_bool("wait", payload["wait"])
    return CanonicalRequest(**kwargs)


def client_id(payload: Any) -> Optional[str]:
    """The client's envelope tag, if the payload carried one."""
    if isinstance(payload, Mapping):
        value = payload.get("id")
        if isinstance(value, str):
            return value
    return None


def wants_wait(payload: Any) -> bool:
    """Whether the payload asked for a synchronous answer."""
    return isinstance(payload, Mapping) and payload.get("wait") is True


def request_from_json(record: Mapping[str, Any]) -> CanonicalRequest:
    """Rebuild a :class:`CanonicalRequest` from its canonical wire form
    (:meth:`CanonicalRequest.to_json`), e.g. out of the journal.

    Journal records were validated on admission, so this re-validates
    through the same parser — a corrupt record fails loudly rather than
    silently optimizing the wrong thing.
    """
    return parse_request(dict(record))


# ---------------------------------------------------------------------------
# response shaping
# ---------------------------------------------------------------------------


def result_payload(net_result) -> Dict[str, Any]:
    """The *deterministic* slice of a :class:`~repro.batch.NetResult`.

    Exactly the signature fields (name through telemetry counters) plus
    the structured failure's class and phase.  No seconds, no attempts,
    no free-text messages — those go in the response ``meta`` — so two
    runs of the same request, however faulty the path, produce equal
    payloads.  The chaos acceptance test compares these dicts directly.
    """
    assignment = (
        None
        if net_result.assignment is None
        else {
            node: buffer.name
            for node, buffer in sorted(net_result.assignment.items())
        }
    )
    failure = net_result.failure
    return {
        "name": net_result.name,
        "ok": net_result.ok,
        "sink_count": net_result.sink_count,
        "node_count": net_result.node_count,
        "buffer_count": net_result.buffer_count,
        "slack": net_result.slack,
        "noise_feasible": net_result.noise_feasible,
        "assignment": assignment,
        "candidates_generated": net_result.candidates_generated,
        "candidates_kept_peak": net_result.candidates_kept_peak,
        "certified": net_result.certified,
        "failure": (
            None if failure is None
            else {"error": failure.error, "phase": failure.phase}
        ),
    }


def error_response(
    code: str, message: str, retry_after: Optional[float] = None
) -> Dict[str, Any]:
    """The JSON body for any rejected request."""
    body: Dict[str, Any] = {
        "kind": "buffopt-service-error",
        "protocol": PROTOCOL_VERSION,
        "error": code,
        "message": message,
    }
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body


def rejection_response(exc: RequestRejected) -> Dict[str, Any]:
    return error_response(exc.code, exc.message, exc.retry_after)
