"""The stdin/stdout worker mode: the service without a socket.

For embedding buffopt in a parent process (a router, a test harness, an
orchestration script) without opening a port: one JSON request per
input line, one JSON response envelope per output line, in order.
Every envelope is ``{"kind": "buffopt-service-response", "status":
<http-equivalent code>, "body": {...}}`` with exactly the body the HTTP
surface would have sent — the two transports share the core, so the
contract (and the chaos harness) transfers.

A line is either a bare submit payload (synchronous by default: the
embedding caller wants an answer, not a job id — pass ``"wait": false``
to opt out) or an op object:

``{"op": "optimize", "request": {...}}``  submit (same as a bare payload)
``{"op": "status", "id": "job-3"}``       job status
``{"op": "result", "id": "job-3"}``       job result
``{"op": "health"}`` / ``{"op": "ready"}``  probes
``{"op": "metrics"}``                     Prometheus text, JSON-wrapped
``{"op": "drain"}``                       graceful drain, then exit

EOF drains and exits.  Malformed lines get a 400 envelope; nothing a
client writes can end the loop early except ``drain``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, TextIO, Tuple

from .protocol import RequestRejected, error_response, rejection_response
from .server import OptimizationService

STDIO_OPS = ("optimize", "status", "result", "health", "ready", "metrics",
             "drain")


def _respond(service: OptimizationService, line: str) -> Tuple[
    int, Dict[str, Any], bool
]:
    """One input line -> ``(status, body, should_exit)``."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError:
        raise RequestRejected.malformed("input line is not valid JSON")
    op = "optimize"
    payload: Any = message
    if isinstance(message, dict) and "op" in message:
        op = message["op"]
        if not isinstance(op, str) or op not in STDIO_OPS:
            raise RequestRejected.malformed(
                f"unknown op {op!r} (expected one of {STDIO_OPS})"
            )
        payload = message.get("request")
    if op == "optimize":
        if isinstance(payload, dict) and "wait" not in payload:
            payload = dict(payload, wait=True)
        status, body = service.submit(payload)
        return status, body, False
    if op in ("status", "result"):
        job_id = message.get("id")
        if not isinstance(job_id, str):
            raise RequestRejected.malformed(f"op {op!r} needs a string 'id'")
        if op == "status":
            status, body = service.job_status(job_id)
        else:
            status, body = service.job_result(job_id)
        return status, body, False
    if op == "health":
        status, body = service.health()
        return status, body, False
    if op == "ready":
        status, body = service.ready()
        return status, body, False
    if op == "metrics":
        return 200, {
            "kind": "buffopt-service-metrics",
            "prometheus": service.metrics_text(),
        }, False
    # op == "drain"
    drained = service.drain()
    return 200, {
        "kind": "buffopt-service-drained",
        "drained": drained,
    }, True


def run_stdio(
    service: OptimizationService,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
) -> bool:
    """Serve line-delimited requests until EOF or a ``drain`` op.

    Returns the drain verdict, like
    :func:`~repro.service.http.run_http_server`.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    drained: Optional[bool] = None
    for line in stdin:
        if not line.strip():
            continue
        try:
            status, body, should_exit = _respond(service, line)
        except RequestRejected as exc:
            status, body, should_exit = (
                exc.http_status, rejection_response(exc), False
            )
        except Exception as exc:  # noqa: BLE001 - a line must never kill the loop
            status, body, should_exit = 500, error_response(
                "malformed", f"internal error: {type(exc).__name__}: {exc}"
            ), False
        envelope = {
            "kind": "buffopt-service-response",
            "status": status,
            "body": body,
        }
        stdout.write(json.dumps(envelope, sort_keys=True) + "\n")
        stdout.flush()
        if should_exit:
            drained = bool(body.get("drained"))
            break
    if drained is None:
        drained = service.drain()
    return drained
