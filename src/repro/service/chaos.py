"""Deterministic service-level fault injection.

The batch fault harness (:mod:`repro.batch.faults`) schedules worker
misbehavior by net name; this module extends it to the *service* attack
surface, deciding per request — deterministically, from ``(seed, net
name)`` alone, so the decision is independent of arrival order and
thread interleaving — whether a request's worker should raise, die,
hang past the supervisor's hard deadline, or start slow (sleep under
the deadline, exercising queue backpressure instead of the kill path).

Two more faults live entirely outside the worker:

* :func:`tear_journal_tail` — truncate/append so the service journal
  ends in a partial record, exactly what a kill mid-``write`` leaves
  behind; recovery must skip it (and count it) rather than die.
* :func:`malformed_requests` — a deterministic family of invalid submit
  payloads (wrong shapes, unknown keys, bad values) the harness fires
  at a live server; every one must come back as a structured 400, and
  none may affect any other request's answer.

The chaos acceptance test drives all of these at once and checks the
two properties the ISSUE demands: zero dropped requests, and responses
bit-identical to a fault-free serial run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..batch.faults import FAULT_KINDS, FaultPlan, FaultSpec
from ..errors import WorkloadError

#: fault kinds the chaos harness injects into workers.  ``"exit"`` and
#: ``"hang"`` require resilient (process-per-request) supervision to be
#: recoverable; inline supervision recovers ``"raise"`` and ``"slow"``.
DEFAULT_KINDS = ("raise", "exit", "hang", "slow")


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic per-request fault policy for the service layer.

    ``rate`` is the target fraction of requests faulted; each request's
    decision comes from ``random.Random(f"{seed}:{net_name}")``, so the
    same (seed, workload) pair faults the same nets no matter how many
    clients submit them, in what order, or how often (retries of one
    net see one consistent schedule).  Faults fire on ``attempts`` only
    (default: the first), modeling transient failures the retry layer
    must absorb — which is what makes "responses identical to a
    fault-free run" achievable rather than vacuous.
    """

    rate: float = 0.05
    seed: int = 0
    kinds: Tuple[str, ...] = DEFAULT_KINDS
    #: sleep for ``"hang"`` — choose well past the server's hard
    #: deadline so the kill path must fire.
    hang_seconds: float = 30.0
    #: sleep for ``"slow"`` — choose under the deadline so the request
    #: still succeeds, just late.
    slow_seconds: float = 0.25
    #: attempt numbers (1-based) on which injected faults fire.
    attempts: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise WorkloadError(f"rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise WorkloadError("kinds must not be empty")
        unknown = sorted(set(self.kinds) - set(FAULT_KINDS))
        if unknown:
            raise WorkloadError(
                f"unknown fault kind(s) {unknown} "
                f"(expected a subset of {FAULT_KINDS})"
            )
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise WorkloadError(
                f"attempts must be >= 1, got {self.attempts}"
            )

    def spec_for(self, net_name: str) -> Optional[FaultSpec]:
        """This net's scripted misbehavior, or ``None`` to run clean."""
        stream = random.Random(f"{self.seed}:{net_name}")
        if stream.random() >= self.rate:
            return None
        kind = self.kinds[stream.randrange(len(self.kinds))]
        seconds = (
            self.hang_seconds if kind == "hang"
            else self.slow_seconds if kind == "slow"
            else 3600.0  # unused by "raise"/"exit"; FaultSpec wants > 0
        )
        return FaultSpec(
            kind=kind,
            attempts=self.attempts,
            seconds=seconds,
            message=f"chaos[{self.seed}]: injected {kind}",
        )

    def plan_for(self, net_name: str) -> Optional[FaultPlan]:
        """A single-net :class:`~repro.batch.FaultPlan`, or ``None``."""
        spec = self.spec_for(net_name)
        if spec is None:
            return None
        return FaultPlan({net_name: spec})

    def faulted(self, net_names) -> List[str]:
        """The subset of ``net_names`` this config would fault (for
        asserting the injected rate actually cleared a threshold)."""
        return [name for name in net_names if self.spec_for(name) is not None]


def tear_journal_tail(
    path: Union[str, Path],
    fragment: str = '{"kind": "result", "fingerprint": "dead',
) -> None:
    """Leave ``path`` ending in a torn (unterminated, unparseable) line.

    Mirrors what a kill between ``write`` and the trailing newline
    reaching disk leaves behind.  If the file already ends mid-line the
    fragment just extends the tear; recovery must skip it either way.
    """
    path = Path(path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(fragment)


def malformed_requests(seed: int = 0) -> List[Tuple[str, Any]]:
    """Deterministic ``(label, payload)`` attack payloads for submit.

    Every payload must be answered with a structured ``malformed`` 400
    (never a 5xx, never a hang).  ``seed`` perturbs the values so
    repeated chaos legs don't probe byte-identical inputs, while the
    *shapes* stay fixed and documented.
    """
    stream = random.Random(f"malformed:{seed}")
    salt = stream.randrange(1, 10_000)
    payloads: List[Tuple[str, Any]] = [
        ("not-an-object", [1, 2, 3]),
        ("empty-object", {}),
        ("unknown-top-key", {
            "net": _net(salt), "max_bufers": 4,
        }),
        ("unknown-net-key", {
            "net": dict(_net(salt), polarity="odd"),
        }),
        ("missing-net-field", {
            "net": {"name": f"m{salt}", "sink_count": 4},
        }),
        ("bad-sink-count", {
            "net": dict(_net(salt), sink_count=0),
        }),
        ("bad-span-type", {
            "net": dict(_net(salt), span="wide"),
        }),
        ("negative-span", {
            "net": dict(_net(salt), span=-1.0),
        }),
        ("bad-mode", {"net": _net(salt), "mode": "fastest"}),
        ("bad-engine", {"net": _net(salt), "engine": "warp"}),
        ("bool-max-buffers", {"net": _net(salt), "max_buffers": True}),
        ("nan-min-slack", {"net": _net(salt), "min_slack": float("nan")}),
        ("zero-deadline", {"net": _net(salt), "deadline_seconds": 0}),
        ("bad-certify", {"net": _net(salt), "certify": "yes"}),
        ("bad-wait", {"net": _net(salt), "wait": "true"}),
    ]
    return payloads


def _net(salt: int) -> Dict[str, Any]:
    return {
        "name": f"malformed-{salt}",
        "sink_count": 4,
        "span": 1000.0,
        "seed": salt,
    }


def raw_malformed_bodies(seed: int = 0) -> List[Tuple[str, bytes]]:
    """Byte-level garbage for the HTTP surface (not even JSON)."""
    ok = json.dumps({"net": _net(seed + 1)}).encode("utf-8")
    return [
        ("empty-body", b""),
        ("not-json", b"GET me a buffer"),
        ("truncated-json", ok[: max(1, len(ok) // 2)]),
        ("binary", bytes(range(32))),
    ]
