"""Required-arrival-time propagation and timing slack.

The paper defines the slack at a node ``v`` as

    q(v) = min over downstream sinks si of ( RAT(si) - Delay(v, si) )

with the source slack additionally charged the driver's gate delay.  The
circuit meets timing iff ``q(so) >= 0`` (paper eq. 5 and surrounding text).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..errors import AnalysisError
from ..tree.topology import RoutingTree
from .elmore import BufferMap, arrival_times, node_loads, wire_delay


def node_slacks(
    tree: RoutingTree, buffers: Optional[BufferMap] = None
) -> Dict[str, float]:
    """Slack ``q(v)`` at every node, excluding the source driver's delay.

    Computed bottom-up: ``q(si) = RAT(si)`` at sinks, and moving up a wire
    subtracts that wire's Elmore delay; a buffered node additionally pays
    the buffer's gate delay before presenting slack to its parent.  Branch
    nodes take the minimum of their children (per-node definition in
    Section II-A).
    """
    driven, upward = node_loads(tree, buffers)
    buffers = buffers or {}
    slacks: Dict[str, float] = {}
    for node in tree.postorder():
        if node.is_sink:
            assert node.sink is not None
            slacks[node.name] = node.sink.required_arrival
            continue
        best = math.inf
        for child in node.children:
            wire = child.parent_wire
            assert wire is not None
            child_slack = slacks[child.name]
            if child.name in buffers:
                buffer = buffers[child.name]
                child_slack -= buffer.gate_delay(driven[child.name])
            best = min(best, child_slack - wire_delay(wire, upward[child.name]))
        slacks[node.name] = best
    return slacks


def source_slack(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> float:
    """The paper's objective ``q(so)``, including the driver gate delay.

    Equals ``min over sinks (RAT(si) - Delay(so, si))`` — verified against
    the forward :func:`~repro.timing.elmore.sink_delays` computation in the
    test suite.
    """
    slacks = node_slacks(tree, buffers)
    value = slacks[tree.source.name]
    if include_driver:
        if tree.driver is None:
            raise AnalysisError(
                f"tree {tree.name!r} has no driver cell; pass "
                "include_driver=False or attach a DriverCell"
            )
        driven, _ = node_loads(tree, buffers)
        value -= tree.driver.gate_delay(driven[tree.source.name])
    return value


def meets_timing(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> bool:
    """Whether every sink meets its required arrival time (eq. 5)."""
    if all(math.isinf(s.sink.required_arrival) for s in tree.sinks):
        return True
    return source_slack(tree, buffers, include_driver=include_driver) >= 0.0


def worst_sink(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> str:
    """Name of the sink with the smallest ``RAT - delay`` margin."""
    arrivals = arrival_times(tree, buffers, include_driver=include_driver)
    sinks = tree.sinks
    return min(
        sinks, key=lambda s: (s.sink.required_arrival - arrivals[s.name], s.name)
    ).name
