"""Elmore delay and slack analysis (paper Section II-A)."""

from .elmore import (
    BufferMap,
    arrival_times,
    max_sink_delay,
    node_loads,
    sink_delays,
    stage_count,
    wire_delay,
)
from .rat import budget_from_unbuffered, make_critical, set_uniform_rat
from .slack import meets_timing, node_slacks, source_slack, worst_sink

__all__ = [
    "BufferMap",
    "arrival_times",
    "budget_from_unbuffered",
    "make_critical",
    "set_uniform_rat",
    "max_sink_delay",
    "meets_timing",
    "node_loads",
    "node_slacks",
    "sink_delays",
    "source_slack",
    "stage_count",
    "wire_delay",
    "worst_sink",
]
