"""Elmore delay analysis of (possibly buffered) routing trees.

The paper's delay model (Section II-A): the Elmore delay of a wire
``w = (u, v)`` is ``R_w * (C_w / 2 + C(v))`` where ``C(v)`` is the lumped
downstream load at ``v``; a gate contributes a linear delay
``d + R * C_load``; a buffer is a *cut* — its input capacitance is what the
upstream stage sees, and its output resistance drives the downstream stage.

All functions accept an optional ``buffers`` mapping ``node name ->
BufferType`` (a :class:`~repro.core.solution.BufferSolution` exposes one),
so the same engine analyzes both raw and buffered trees.  Buffers may only
sit on internal nodes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..tree.topology import RoutingTree, Wire

#: ``node name -> buffer type`` for buffered analysis.
BufferMap = Mapping[str, BufferType]


def _check_buffers(tree: RoutingTree, buffers: Optional[BufferMap]) -> BufferMap:
    if not buffers:
        return {}
    for name in buffers:
        node = tree.node(name)  # raises KeyError on unknown names
        if not node.is_internal:
            raise AnalysisError(
                f"buffer assigned to non-internal node {name!r} "
                f"({'source' if node.is_source else 'sink'})"
            )
    return buffers


def wire_delay(wire: Wire, downstream_load: float) -> float:
    """Elmore delay of one wire given the load at its child end (eq. 2)."""
    return wire.resistance * (wire.capacitance / 2.0 + downstream_load)


def node_loads(
    tree: RoutingTree, buffers: Optional[BufferMap] = None
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Downstream loads per node, with buffer cuts.

    Returns ``(driven, upward)``:

    * ``driven[v]`` — the load a gate output placed at ``v`` would drive:
      the subtree hanging below ``v``, cut at any *descendant* buffer
      (paper eq. 1 applied per stage);
    * ``upward[v]`` — what the parent wire of ``v`` sees at ``v``: the
      buffer's input capacitance when ``v`` is buffered, the pin
      capacitance when ``v`` is a sink, else ``driven[v]``.
    """
    buffers = _check_buffers(tree, buffers)
    driven: Dict[str, float] = {}
    upward: Dict[str, float] = {}
    for node in tree.postorder():
        total = 0.0
        for child in node.children:
            wire = child.parent_wire
            assert wire is not None
            total += wire.capacitance + upward[child.name]
        driven[node.name] = total
        if node.name in buffers:
            upward[node.name] = buffers[node.name].input_capacitance
        elif node.is_sink:
            assert node.sink is not None
            upward[node.name] = node.sink.capacitance
        else:
            upward[node.name] = total
    return driven, upward


def arrival_times(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> Dict[str, float]:
    """Signal arrival time at every node's *input*, from a t=0 source input.

    For buffered nodes the stored value is the arrival at the buffer
    *input*; downstream propagation continues from the buffer output
    (input arrival plus the buffer's gate delay into its driven load).
    ``include_driver`` adds the source driver's own gate delay (paper
    Fig. 4 Step 3); it requires ``tree.driver`` to be set.
    """
    buffers = _check_buffers(tree, buffers)
    driven, upward = node_loads(tree, buffers)
    arrivals: Dict[str, float] = {}
    departures: Dict[str, float] = {}

    source = tree.source
    arrivals[source.name] = 0.0
    if include_driver:
        if tree.driver is None:
            raise AnalysisError(
                f"tree {tree.name!r} has no driver cell; pass "
                "include_driver=False or attach a DriverCell"
            )
        departures[source.name] = tree.driver.gate_delay(driven[source.name])
    else:
        departures[source.name] = 0.0

    for node in tree.preorder():
        if node is source:
            continue
        wire = node.parent_wire
        assert wire is not None
        arrival = departures[wire.parent.name] + wire_delay(wire, upward[node.name])
        arrivals[node.name] = arrival
        if node.name in buffers:
            departures[node.name] = arrival + buffers[node.name].gate_delay(
                driven[node.name]
            )
        else:
            departures[node.name] = arrival
    return arrivals


def sink_delays(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> Dict[str, float]:
    """Source-to-sink delay (paper eq. 4) for every sink, by name."""
    arrivals = arrival_times(tree, buffers, include_driver=include_driver)
    return {sink.name: arrivals[sink.name] for sink in tree.sinks}


def max_sink_delay(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    include_driver: bool = True,
) -> float:
    """The longest source-to-sink delay."""
    delays = sink_delays(tree, buffers, include_driver=include_driver)
    return max(delays.values())


def stage_count(tree: RoutingTree, buffers: Optional[BufferMap] = None) -> int:
    """Number of restoring stages: 1 (driver) + number of inserted buffers."""
    buffers = _check_buffers(tree, buffers)
    return 1 + len(buffers)
