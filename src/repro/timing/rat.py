"""Required-arrival-time manipulations (paper footnote 6).

"Various formulations can be captured by manipulating the RAT(si)
values": making one sink the only critical one (all others get infinite
RATs) turns slack maximization into single-path delay minimization, and
equal slacks capture minimizing the maximum source-to-sink delay.  These
helpers produce modified *copies* — input trees are never mutated.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import AnalysisError
from ..tree.topology import RoutingTree, SinkSpec
from ..tree.transform import clone_tree
from .elmore import sink_delays


def _with_rats(tree: RoutingTree, rats) -> RoutingTree:
    copy = clone_tree(tree)
    for sink in copy.sinks:
        assert sink.sink is not None
        sink.sink = SinkSpec(
            capacitance=sink.sink.capacitance,
            noise_margin=sink.sink.noise_margin,
            required_arrival=rats(sink.name),
        )
    return copy


def set_uniform_rat(tree: RoutingTree, value: float) -> RoutingTree:
    """Every sink gets the same RAT (maximizing slack then minimizes the
    maximum source-to-sink delay, per footnote 6)."""
    return _with_rats(tree, lambda _: value)


def make_critical(tree: RoutingTree, sink_name: str,
                  value: float = 0.0) -> RoutingTree:
    """Only ``sink_name`` is timing-critical; all other RATs become +inf.

    Slack maximization then minimizes the delay to that single sink.
    ``value`` is the critical sink's RAT (its absolute level only shifts
    the slack, not the optimizer's choices).
    """
    names = {s.name for s in tree.sinks}
    if sink_name not in names:
        raise AnalysisError(
            f"no sink named {sink_name!r} in {tree.name!r}; have {sorted(names)}"
        )
    return _with_rats(
        tree, lambda name: value if name == sink_name else math.inf
    )


def budget_from_unbuffered(
    tree: RoutingTree, fraction: float, floor: Optional[float] = None
) -> RoutingTree:
    """Set a uniform RAT of ``fraction x`` the unbuffered worst delay.

    ``fraction > 1`` makes unbuffered timing feasible (the workload
    generator's regime); ``fraction < 1`` forces buffering for timing.
    """
    if fraction <= 0:
        raise AnalysisError(f"fraction must be positive, got {fraction}")
    worst = max(sink_delays(tree).values())
    budget = fraction * worst
    if floor is not None:
        budget = max(budget, floor)
    return set_uniform_rat(tree, budget)
