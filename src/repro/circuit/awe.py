"""Asymptotic waveform evaluation (AWE) on MNA systems.

The paper's verification tool (3dnoise [26]) used "accurate moment-
matching based techniques that are similar to RICE [27]".  This module
implements that technique on our MNA substrate:

* :func:`transfer_moments` — moments of the transfer function from one
  independent source to one node voltage, by repeated sparse solves of
  ``G x_k = -C x_{k-1}`` (the block-power iteration at the heart of
  RICE/AWE);
* :class:`PadeApproximant` — a two-pole Padé [2/2] fit of the transfer
  function (with a defensive dominant-pole fallback when the quadratic
  fit produces unstable or complex poles, the classic AWE failure mode);
* :func:`ramp_response_peak` — the peak of the approximant's response to
  a saturated ramp (the aggressor excitation of coupled-noise analysis),
  evaluated from the closed-form exponential solution.

For coupled victim/aggressor circuits the victim's DC gain is zero
(capacitive coupling blocks DC), so the transfer function is ``H(s) =
m1 s + m2 s^2 + ...`` and the fit works on the shifted series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.sparse.linalg import splu

from ..errors import SimulationError
from .mna import MNASystem


def transfer_moments(
    system: MNASystem,
    source_index: int,
    output_node: str,
    order: int = 4,
) -> List[float]:
    """Moments ``m_0 .. m_order`` of ``V(output) / U(source)``.

    ``source_index`` indexes the stacked source vector ``u(t)`` (voltage
    sources first, in insertion order, then current sources).
    """
    if order < 1:
        raise SimulationError(f"order must be >= 1, got {order}")
    if not 0 <= source_index < len(system.sources):
        raise SimulationError(
            f"source index {source_index} out of range "
            f"(have {len(system.sources)} sources)"
        )
    try:
        lu = splu(system.conductance.tocsc())
    except RuntimeError as exc:
        raise SimulationError(
            "singular conductance matrix — every node needs a DC path "
            "to ground for moment analysis"
        ) from exc

    unit = np.zeros(len(system.sources))
    unit[source_index] = 1.0
    rhs = np.asarray(system.source_map @ unit).ravel()
    row = system.index_of(output_node)

    moments: List[float] = []
    x = lu.solve(rhs)
    moments.append(float(x[row]))
    capacitance = system.capacitance
    for _ in range(order):
        x = lu.solve(-np.asarray(capacitance @ x).ravel())
        moments.append(float(x[row]))
    return moments


@dataclass(frozen=True)
class PadeApproximant:
    """``H(s) ~ sum_i residues[i] * s / (1 - s/poles[i])``-style reduced
    model, stored as exponential step-response terms.

    The *step response* of the approximant is
    ``y_step(t) = sum_i coefficients[i] * exp(poles[i] * t)`` — it decays
    to the DC gain (zero for coupled noise).  ``stable`` is False when the
    quadratic fit failed and a single dominant pole was used instead.
    """

    poles: Tuple[float, ...]
    coefficients: Tuple[float, ...]
    dc_gain: float
    stable: bool

    def step_response(self, t: float) -> float:
        """Response to a unit step input at time ``t >= 0``."""
        if t < 0:
            return 0.0
        return self.dc_gain + sum(
            c * math.exp(p * t) for p, c in zip(self.poles, self.coefficients)
        )

    def ramp_response(self, t: float, slope: float, rise_time: float) -> float:
        """Response to a saturated ramp (slope ``slope`` until
        ``rise_time``, constant after).

        The ramp is the integral of ``slope * (u(t) - u(t - rise))``, so
        the response is the integrated step response, differenced.
        """
        return slope * (
            self._integrated_step(t) - self._integrated_step(t - rise_time)
        )

    def _integrated_step(self, t: float) -> float:
        if t <= 0:
            return 0.0
        total = self.dc_gain * t
        for p, c in zip(self.poles, self.coefficients):
            total += c * (math.exp(p * t) - 1.0) / p
        return total


def fit_pade(moments: Sequence[float]) -> PadeApproximant:
    """Fit a two-pole approximant to transfer moments ``m_0 .. m_4``.

    Requires ``m_0`` (DC gain) and at least four higher moments.  The
    classic AWE 2-pole equations are solved for the denominator; when the
    resulting poles are complex or non-negative (the known AWE failure
    mode for far-from-dominant responses) a single-pole fit on
    ``m_1, m_2`` is used instead and ``stable`` is False.
    """
    if len(moments) < 5:
        raise SimulationError(
            f"need moments m0..m4 for a two-pole fit, got {len(moments)}"
        )
    m0, m1, m2, m3, m4 = moments[:5]
    # Work on the zero-DC part: G(s) = (H(s) - m0) = m1 s + m2 s^2 + ...
    # Padé: G(s) = (a1 s + a2 s^2) / (1 + b1 s + b2 s^2)
    det = m2 * m2 - m1 * m3
    fallback = False
    poles: Tuple[float, ...] = ()
    coefficients: Tuple[float, ...] = ()
    if det != 0.0:
        b1 = (m1 * m4 - m2 * m3) / det
        b2 = (m3 * m3 - m2 * m4) / det
        disc = b1 * b1 - 4.0 * b2
        if b2 > 0 and disc >= 0:
            root = math.sqrt(disc)
            p1 = (-b1 + root) / (2.0 * b2)
            p2 = (-b1 - root) / (2.0 * b2)
            if p1 < 0 and p2 < 0:
                a1 = m1
                a2 = m2 + b1 * m1
                if p1 != p2:
                    # step response of G/s = (a1 + a2 s)/(1 + b1 s + b2 s^2):
                    # residues at the poles
                    c1 = (a1 + a2 * p1) / (b2 * p1 * (p1 - p2)) * p1
                    c2 = (a1 + a2 * p2) / (b2 * p2 * (p2 - p1)) * p2
                    poles = (p1, p2)
                    coefficients = (c1, c2)
                else:
                    fallback = True
            else:
                fallback = True
        else:
            fallback = True
    else:
        fallback = True

    if fallback or not poles:
        # Single dominant pole: G(s) ~ a s / (1 - s/p), matched to m1, m2.
        if m1 == 0.0:
            return PadeApproximant((), (), m0, stable=False)
        p = m1 / m2 if m2 != 0.0 else -1.0 / abs(m1)
        if p >= 0:
            p = -abs(p)
        # G(s) = r s / (s - p) expands to m1 = -r/p, so r = -m1 * p; the
        # step response is r * exp(p t).
        poles = (p,)
        coefficients = (-m1 * p,)
        return PadeApproximant(poles, coefficients, m0, stable=False)
    return PadeApproximant(poles, coefficients, m0, stable=True)


def ramp_response_peak(
    approximant: PadeApproximant,
    slope: float,
    rise_time: float,
    horizon_constants: float = 8.0,
    samples: int = 400,
) -> float:
    """Peak |response| of the approximant to a saturated ramp.

    Samples the closed-form exponential response densely over the ramp
    plus ``horizon_constants`` dominant time constants.
    """
    if rise_time <= 0:
        raise SimulationError(f"rise_time must be positive, got {rise_time}")
    if not approximant.poles:
        return abs(approximant.dc_gain) * slope * rise_time
    tau = max(1.0 / abs(p) for p in approximant.poles)
    stop = rise_time + horizon_constants * tau
    times = np.linspace(0.0, stop, samples)
    values = [
        abs(approximant.ramp_response(float(t), slope, rise_time))
        for t in times
    ]
    return max(values)
