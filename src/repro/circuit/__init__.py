"""SPICE-lite linear circuit substrate: netlists, MNA, transient, moments."""

from .awe import PadeApproximant, fit_pade, ramp_response_peak, transfer_moments
from .mna import MNASystem, assemble
from .moments import (
    d2m_delay,
    dominant_time_constant,
    elmore_from_moments,
    stage_capacitances,
    tree_moments,
)
from .netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    VoltageSource,
    is_ground,
)
from .transient import TransientResult, dc_operating_point, simulate
from .waveform import PiecewiseLinear, Waveform

__all__ = [
    "PadeApproximant",
    "fit_pade",
    "ramp_response_peak",
    "transfer_moments",
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "MNASystem",
    "PiecewiseLinear",
    "Resistor",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "assemble",
    "d2m_delay",
    "dc_operating_point",
    "dominant_time_constant",
    "elmore_from_moments",
    "is_ground",
    "simulate",
    "stage_capacitances",
    "tree_moments",
]
