"""Linear circuit netlists for the SPICE-lite simulator.

Supports exactly what coupled-noise verification needs: resistors,
(coupling) capacitors, independent voltage sources with piecewise-linear
waveforms, and independent current sources.  Node names are strings;
``"0"`` and ``"gnd"`` are ground.

The paper's verification tool (3dnoise) analyzed linear RC models of the
victim/aggressor system — "the problem can be modeled as a linear circuit
(which it generally can be for most coupled noise problems)" — so a linear
simulator is the faithful substrate here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .waveform import PiecewiseLinear

GROUND_NAMES = ("0", "gnd", "GND")


@dataclass(frozen=True)
class Resistor:
    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise SimulationError(
                f"resistor {self.name!r}: resistance must be positive, "
                f"got {self.resistance}"
            )


@dataclass(frozen=True)
class Capacitor:
    name: str
    node_a: str
    node_b: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise SimulationError(
                f"capacitor {self.name!r}: capacitance must be >= 0, "
                f"got {self.capacitance}"
            )


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source from ``node_plus`` to ``node_minus``."""

    name: str
    node_plus: str
    node_minus: str
    waveform: PiecewiseLinear


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source injecting into ``node_plus``."""

    name: str
    node_plus: str
    node_minus: str
    waveform: PiecewiseLinear


class Circuit:
    """An element bag with node bookkeeping.

    Build with the ``add_*`` methods; hand to
    :func:`repro.circuit.transient.simulate`.  Element names must be
    unique per kind (auto-generated when omitted).
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self.voltage_sources: List[VoltageSource] = []
        self.current_sources: List[CurrentSource] = []
        self._names: Dict[str, set] = {}

    # -- builders ---------------------------------------------------------------

    def add_resistor(
        self, node_a: str, node_b: str, resistance: float, name: Optional[str] = None
    ) -> Resistor:
        element = Resistor(
            self._name("R", name, len(self.resistors)), node_a, node_b, resistance
        )
        self.resistors.append(element)
        return element

    def add_capacitor(
        self, node_a: str, node_b: str, capacitance: float, name: Optional[str] = None
    ) -> Capacitor:
        element = Capacitor(
            self._name("C", name, len(self.capacitors)), node_a, node_b, capacitance
        )
        self.capacitors.append(element)
        return element

    def add_voltage_source(
        self,
        node_plus: str,
        node_minus: str,
        waveform: PiecewiseLinear,
        name: Optional[str] = None,
    ) -> VoltageSource:
        element = VoltageSource(
            self._name("V", name, len(self.voltage_sources)),
            node_plus,
            node_minus,
            waveform,
        )
        self.voltage_sources.append(element)
        return element

    def add_current_source(
        self,
        node_plus: str,
        node_minus: str,
        waveform: PiecewiseLinear,
        name: Optional[str] = None,
    ) -> CurrentSource:
        element = CurrentSource(
            self._name("I", name, len(self.current_sources)),
            node_plus,
            node_minus,
            waveform,
        )
        self.current_sources.append(element)
        return element

    def _name(self, prefix: str, explicit: Optional[str], index: int) -> str:
        taken = self._names.setdefault(prefix, set())
        name = explicit if explicit is not None else f"{prefix}{index}"
        if name in taken:
            raise SimulationError(f"duplicate element name {name!r}")
        taken.add(name)
        return name

    # -- queries ---------------------------------------------------------------

    def nodes(self) -> Tuple[str, ...]:
        """All non-ground node names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for element in (
            *self.resistors,
            *self.capacitors,
            *self.voltage_sources,
            *self.current_sources,
        ):
            pair = (
                (element.node_a, element.node_b)
                if isinstance(element, (Resistor, Capacitor))
                else (element.node_plus, element.node_minus)
            )
            for node in pair:
                if node not in GROUND_NAMES:
                    seen.setdefault(node, None)
        return tuple(seen)

    def element_count(self) -> int:
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.voltage_sources)
            + len(self.current_sources)
        )

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, R={len(self.resistors)}, "
            f"C={len(self.capacitors)}, V={len(self.voltage_sources)}, "
            f"I={len(self.current_sources)})"
        )


def is_ground(node: str) -> bool:
    return node in GROUND_NAMES
