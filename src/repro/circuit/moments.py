"""RC-tree moment analysis by path tracing (RICE/AWE-lite).

Computes the voltage transfer-function moments of a routing-tree stage
driven through a driver resistance — the machinery behind the moment-
matching noise/delay tools the paper cites ([25], [27]).  Only the tree
case is supported (no coupling), which is all the delay cross-validation
needs; the coupled-noise verifier uses the full MNA transient instead.

For a step input, the voltage at node ``v`` is characterized by moments
``m_k(v)`` of its impulse response with ``m_0 = 1`` and

    m_{k+1}(v) = - sum over nodes u of R(path(root, v) ∩ path(root, u))
                 * C_u * m_k(u)

computed in O(n) per order with one bottom-up and one top-down pass.
``-m_1`` is exactly the Elmore delay (tested against
:mod:`repro.timing.elmore`); the D2M metric uses ``m_2`` to sharpen the
estimate for far-from-lumped nets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..tree.topology import Node, RoutingTree


def stage_capacitances(
    tree: RoutingTree,
    buffers: Optional[Mapping[str, BufferType]] = None,
) -> Dict[str, float]:
    """Lumped node capacitances of the *source stage* (pi-model split).

    Each stage wire contributes half its capacitance to each endpoint;
    sinks add their pin capacitance; buffered nodes terminate the stage
    with the buffer's input capacitance (their subtrees belong to other
    stages and are excluded).
    """
    buffers = buffers or {}
    caps: Dict[str, float] = {tree.source.name: 0.0}
    stack = list(tree.source.children)
    while stack:
        node = stack.pop()
        wire = node.parent_wire
        assert wire is not None
        caps[wire.parent.name] = caps.get(wire.parent.name, 0.0) + wire.capacitance / 2
        caps[node.name] = caps.get(node.name, 0.0) + wire.capacitance / 2
        if node.name in buffers:
            caps[node.name] += buffers[node.name].input_capacitance
            continue
        if node.is_sink:
            assert node.sink is not None
            caps[node.name] += node.sink.capacitance
            continue
        stack.extend(node.children)
    return caps


def tree_moments(
    tree: RoutingTree,
    order: int = 3,
    driver_resistance: Optional[float] = None,
    buffers: Optional[Mapping[str, BufferType]] = None,
) -> Dict[str, List[float]]:
    """Moments ``[m_1 .. m_order]`` per source-stage node.

    ``driver_resistance`` defaults to ``tree.driver.resistance``.
    """
    if order < 1:
        raise AnalysisError(f"order must be >= 1, got {order}")
    if driver_resistance is None:
        if tree.driver is None:
            raise AnalysisError(
                f"tree {tree.name!r} has no driver; pass driver_resistance"
            )
        driver_resistance = tree.driver.resistance
    buffers = buffers or {}
    caps = stage_capacitances(tree, buffers)
    members = set(caps)

    # Stage traversal orders (source stage only).
    top_down: List[Node] = []
    stack = [tree.source]
    while stack:
        node = stack.pop()
        top_down.append(node)
        if node is not tree.source and (node.name in buffers or node.is_sink):
            continue
        stack.extend(node.children)

    current: Dict[str, float] = {name: 1.0 for name in members}  # m_0
    moments: Dict[str, List[float]] = {name: [] for name in members}
    for _ in range(order):
        # Bottom-up: S(v) = sum of C_u * m_k(u) over the stage subtree at v.
        subtotal: Dict[str, float] = {}
        for node in reversed(top_down):
            total = caps[node.name] * current[node.name]
            if not (node is not tree.source and (node.name in buffers or node.is_sink)):
                for child in node.children:
                    total += subtotal[child.name]
            subtotal[node.name] = total
        # Top-down: m_{k+1}(v) = m_{k+1}(parent) - R_wire * S(v).
        nxt: Dict[str, float] = {}
        nxt[tree.source.name] = -driver_resistance * subtotal[tree.source.name]
        for node in top_down:
            if node is tree.source:
                continue
            wire = node.parent_wire
            assert wire is not None
            nxt[node.name] = (
                nxt[wire.parent.name] - wire.resistance * subtotal[node.name]
            )
        for name in members:
            moments[name].append(nxt[name])
        current = nxt
    return moments


def elmore_from_moments(moments: Mapping[str, List[float]]) -> Dict[str, float]:
    """Elmore delay per node: ``-m_1``."""
    return {name: -values[0] for name, values in moments.items()}


def d2m_delay(moments_at_node: List[float]) -> float:
    """The D2M two-moment delay metric ``ln(2) * m1^2 / sqrt(m2)``.

    Tighter than Elmore for nodes far from the driver (Elmore is an upper
    bound on 50 % delay for RC trees); equals ``ln(2)/|m1|``-scaled Elmore
    when the response is single-pole (then ``m2 = m1^2``).
    """
    if len(moments_at_node) < 2:
        raise AnalysisError("d2m_delay needs at least two moments")
    m1, m2 = moments_at_node[0], moments_at_node[1]
    if m2 <= 0:
        raise AnalysisError(f"m2 must be positive for an RC tree, got {m2}")
    return math.log(2.0) * (m1 * m1) / math.sqrt(m2)


def dominant_time_constant(moments_at_node: List[float]) -> float:
    """Dominant-pole time constant estimate ``m2 / |m1|``.

    Exact for single-pole responses; a safe simulation-horizon guide for
    choosing transient stop times.
    """
    if len(moments_at_node) < 2:
        raise AnalysisError("need at least two moments")
    m1, m2 = moments_at_node[0], moments_at_node[1]
    if m1 == 0:
        return 0.0
    return m2 / abs(m1)
