"""Waveforms and time-domain sources for the SPICE-lite simulator.

:class:`PiecewiseLinear` describes source excitations (the ramp aggressors
of the noise verifier); :class:`Waveform` holds sampled simulation results
with the measurements noise analysis needs (peak, value-at, pulse width).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear voltage source ``v(t)``.

    Defined by ascending time points and values; constant extrapolation
    outside the range (the usual SPICE PWL convention).
    """

    times: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise SimulationError(
                f"{len(self.times)} times but {len(self.values)} values"
            )
        if not self.times:
            raise SimulationError("a PWL source needs at least one point")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise SimulationError(f"PWL times must be ascending: {self.times}")

    @classmethod
    def constant(cls, value: float) -> "PiecewiseLinear":
        return cls((0.0,), (value,))

    @classmethod
    def ramp(
        cls, vdd: float, rise_time: float, start: float = 0.0
    ) -> "PiecewiseLinear":
        """A 0 -> vdd ramp with the given rise time (slope = vdd/rise)."""
        if rise_time <= 0:
            raise SimulationError(f"rise_time must be positive, got {rise_time}")
        return cls((0.0, start, start + rise_time), (0.0, 0.0, vdd))

    def __call__(self, t: float) -> float:
        times, values = self.times, self.values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        index = bisect_right(times, t) - 1
        t0, t1 = times[index], times[index + 1]
        v0, v1 = values[index], values[index + 1]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    @property
    def final_time(self) -> float:
        return self.times[-1]

    @property
    def max_slope(self) -> float:
        """Steepest segment slope (V/s); 0 for constants."""
        best = 0.0
        for t0, t1, v0, v1 in zip(
            self.times, self.times[1:], self.values, self.values[1:]
        ):
            if t1 > t0:
                best = max(best, abs(v1 - v0) / (t1 - t0))
        return best


class Waveform:
    """A sampled node voltage ``v(t)`` from a transient run."""

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.times.ndim != 1 or self.times.shape != self.values.shape:
            raise SimulationError(
                f"waveform shape mismatch: {self.times.shape} vs "
                f"{self.values.shape}"
            )
        if self.times.size == 0:
            raise SimulationError("empty waveform")

    def __len__(self) -> int:
        return int(self.times.size)

    def at(self, t: float) -> float:
        """Linear interpolation at time ``t`` (clamped to the range)."""
        return float(np.interp(t, self.times, self.values))

    @property
    def peak(self) -> float:
        """Maximum absolute value — the peak noise amplitude."""
        return float(np.max(np.abs(self.values)))

    @property
    def peak_time(self) -> float:
        return float(self.times[int(np.argmax(np.abs(self.values)))])

    @property
    def final(self) -> float:
        return float(self.values[-1])

    def width_above(self, threshold: float) -> float:
        """Total time the waveform spends above ``threshold`` (pulse width).

        The paper notes gate failure depends mostly on peak amplitude and
        only weakly on pulse width; this measurement lets tests quantify
        that second-order term.
        """
        if threshold < 0:
            raise SimulationError(f"threshold must be >= 0, got {threshold}")
        above = np.abs(self.values) > threshold
        if not np.any(above):
            return 0.0
        dt = np.diff(self.times)
        # Attribute each interval to "above" when either endpoint is above
        # (trapezoid-level accuracy is unnecessary for a width metric).
        mids = above[:-1] | above[1:]
        return float(np.sum(dt[mids]))

    def settle_value(self, fraction: float = 0.05) -> float:
        """Mean of the last ``fraction`` of samples (steady-state probe)."""
        if not 0.0 < fraction <= 1.0:
            raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(math.ceil(self.times.size * fraction)))
        return float(np.mean(self.values[-count:]))
