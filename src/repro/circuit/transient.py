"""Backward-Euler transient simulation.

Solves ``G x + C x' = B u(t)`` with the A-stable first-order scheme

    (G + C/h) x_{n+1} = B u(t_{n+1}) + (C/h) x_n

using one sparse LU factorization for the whole run (fixed step).  For the
stiff, heavily-damped RC systems of coupled-noise analysis, backward Euler
with a step well below the aggressor rise time is accurate and — unlike
trapezoidal — never rings.  Its numerical damping *underestimates* peaks
slightly, which is conservative in exactly the safe direction for
verifying an upper-bound metric: if even the damped response exceeds a
margin, the violation is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy.sparse.linalg import splu

from ..errors import SimulationError
from .mna import assemble
from .netlist import Circuit
from .waveform import Waveform


@dataclass(frozen=True)
class TransientResult:
    """Waveforms per probed node, plus run metadata."""

    waveforms: Dict[str, Waveform]
    step: float
    stop: float

    def __getitem__(self, node: str) -> Waveform:
        try:
            return self.waveforms[node]
        except KeyError:
            raise SimulationError(
                f"node {node!r} was not probed; have {sorted(self.waveforms)}"
            ) from None


def simulate(
    circuit: Circuit,
    stop: float,
    step: float,
    probes: Optional[Sequence[str]] = None,
    initial: Optional[Dict[str, float]] = None,
) -> TransientResult:
    """Run a fixed-step backward-Euler transient on ``circuit``.

    Parameters
    ----------
    stop, step:
        Total simulated time and time step (seconds).  ``stop/step`` is
        capped at 2,000,000 points as a runaway guard.
    probes:
        Node names to record; default records every non-ground node.
    initial:
        Initial node voltages (default all zero — the quiet-victim
        condition for noise analysis).

    Raises
    ------
    SimulationError
        On singular systems (a node with no DC path to ground) or invalid
        time parameters.
    """
    if step <= 0:
        raise SimulationError(f"step must be positive, got {step}")
    if stop <= 0:
        raise SimulationError(f"stop must be positive, got {stop}")
    steps = int(np.ceil(stop / step))
    if steps > 2_000_000:
        raise SimulationError(
            f"{steps} time points requested; raise step or lower stop"
        )

    system = assemble(circuit)
    matrix = (system.conductance + system.capacitance / step).tocsc()
    try:
        lu = splu(matrix)
    except RuntimeError as exc:
        raise SimulationError(
            f"circuit {circuit.name!r}: singular backward-Euler matrix — "
            "check that every node has a DC path to ground"
        ) from exc

    dim = system.dimension
    state = np.zeros(dim)
    if initial:
        for node, value in initial.items():
            state[system.index_of(node)] = value

    probe_nodes = list(probes) if probes is not None else list(system.node_index)
    probe_rows = [system.index_of(node) for node in probe_nodes]

    times = np.empty(steps + 1)
    records = np.empty((steps + 1, len(probe_rows)))
    times[0] = 0.0
    records[0] = state[probe_rows]

    c_over_h = (system.capacitance / step).tocsc()
    b_matrix = system.source_map
    for n in range(1, steps + 1):
        t = n * step
        rhs = b_matrix @ system.input_vector(t) + c_over_h @ state
        state = lu.solve(rhs)
        times[n] = t
        records[n] = state[probe_rows]

    waveforms = {
        node: Waveform(times, records[:, k]) for k, node in enumerate(probe_nodes)
    }
    return TransientResult(waveforms=waveforms, step=step, stop=stop)


def dc_operating_point(circuit: Circuit) -> Dict[str, float]:
    """Steady-state node voltages with sources at their t=+inf values.

    Capacitors are open at DC, so this solves ``G x = B u(inf)``.
    """
    system = assemble(circuit)
    late = max(
        [w.final_time for w in system.sources] or [0.0]
    )
    rhs = system.source_map @ system.input_vector(late + 1.0)
    try:
        lu = splu(system.conductance.tocsc())
    except RuntimeError as exc:
        raise SimulationError(
            f"circuit {circuit.name!r}: singular DC system — every node "
            "needs a resistive path to ground"
        ) from exc
    solution = lu.solve(rhs)
    return {node: float(solution[row]) for node, row in system.node_index.items()}
