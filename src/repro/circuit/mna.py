"""Modified nodal analysis (MNA) assembly.

Stamps a :class:`~repro.circuit.netlist.Circuit` into the descriptor form

    G x(t) + C dx/dt = B u(t)

where ``x`` holds node voltages followed by voltage-source branch
currents, and ``u(t)`` stacks the independent source values.  Matrices are
scipy CSC sparse, ready for the backward-Euler integrator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np
from scipy import sparse

from ..errors import SimulationError
from .netlist import Circuit, is_ground


@dataclass(frozen=True)
class MNASystem:
    """Assembled descriptor system plus index maps."""

    conductance: sparse.csc_matrix  # G
    capacitance: sparse.csc_matrix  # C
    source_map: sparse.csc_matrix  # B
    node_index: Dict[str, int]
    branch_index: Dict[str, int]  # voltage-source name -> row
    sources: Tuple[Callable[[float], float], ...]  # u(t) entries

    @property
    def dimension(self) -> int:
        return self.conductance.shape[0]

    def input_vector(self, t: float) -> np.ndarray:
        """``u(t)`` evaluated at time ``t``."""
        return np.array([source(t) for source in self.sources])

    def index_of(self, node: str) -> int:
        """Row of a node voltage in ``x`` (raises for ground/unknown)."""
        if is_ground(node):
            raise SimulationError("ground has no MNA row; its voltage is 0")
        try:
            return self.node_index[node]
        except KeyError:
            raise SimulationError(f"unknown node {node!r}") from None


def assemble(circuit: Circuit) -> MNASystem:
    """Stamp ``circuit`` into an :class:`MNASystem`.

    Every non-ground node must have a DC path to ground through resistors
    or voltage sources for the backward-Euler matrix to be nonsingular;
    the integrator reports a factorization failure otherwise.
    """
    nodes = circuit.nodes()
    if not nodes:
        raise SimulationError(f"circuit {circuit.name!r} has no nodes")
    node_index = {node: i for i, node in enumerate(nodes)}
    n_nodes = len(nodes)
    n_branches = len(circuit.voltage_sources)
    dim = n_nodes + n_branches

    g_rows: List[int] = []
    g_cols: List[int] = []
    g_vals: List[float] = []
    c_rows: List[int] = []
    c_cols: List[int] = []
    c_vals: List[float] = []

    def stamp(rows, cols, vals, i: int, j: int, value: float) -> None:
        rows.append(i)
        cols.append(j)
        vals.append(value)

    def stamp_two_terminal(rows, cols, vals, a: str, b: str, value: float) -> None:
        ia = None if is_ground(a) else node_index[a]
        ib = None if is_ground(b) else node_index[b]
        if ia is not None:
            stamp(rows, cols, vals, ia, ia, value)
        if ib is not None:
            stamp(rows, cols, vals, ib, ib, value)
        if ia is not None and ib is not None:
            stamp(rows, cols, vals, ia, ib, -value)
            stamp(rows, cols, vals, ib, ia, -value)

    for resistor in circuit.resistors:
        stamp_two_terminal(
            g_rows, g_cols, g_vals,
            resistor.node_a, resistor.node_b, 1.0 / resistor.resistance,
        )
    for capacitor in circuit.capacitors:
        if capacitor.capacitance == 0.0:
            continue
        stamp_two_terminal(
            c_rows, c_cols, c_vals,
            capacitor.node_a, capacitor.node_b, capacitor.capacitance,
        )

    # Sources populate B; u(t) ordering: voltage sources then current sources.
    b_rows: List[int] = []
    b_cols: List[int] = []
    b_vals: List[float] = []
    sources: List[Callable[[float], float]] = []
    branch_index: Dict[str, int] = {}

    for k, vsource in enumerate(circuit.voltage_sources):
        row = n_nodes + k
        branch_index[vsource.name] = row
        ip = None if is_ground(vsource.node_plus) else node_index[vsource.node_plus]
        im = None if is_ground(vsource.node_minus) else node_index[vsource.node_minus]
        if ip is not None:
            stamp(g_rows, g_cols, g_vals, ip, row, 1.0)
            stamp(g_rows, g_cols, g_vals, row, ip, 1.0)
        if im is not None:
            stamp(g_rows, g_cols, g_vals, im, row, -1.0)
            stamp(g_rows, g_cols, g_vals, row, im, -1.0)
        column = len(sources)
        b_rows.append(row)
        b_cols.append(column)
        b_vals.append(1.0)
        sources.append(vsource.waveform)

    for isource in circuit.current_sources:
        column = len(sources)
        ip = None if is_ground(isource.node_plus) else node_index[isource.node_plus]
        im = None if is_ground(isource.node_minus) else node_index[isource.node_minus]
        if ip is not None:
            b_rows.append(ip)
            b_cols.append(column)
            b_vals.append(1.0)
        if im is not None:
            b_rows.append(im)
            b_cols.append(column)
            b_vals.append(-1.0)
        sources.append(isource.waveform)

    shape = (dim, dim)
    conductance = sparse.csc_matrix(
        sparse.coo_matrix((g_vals, (g_rows, g_cols)), shape=shape)
    )
    capacitance = sparse.csc_matrix(
        sparse.coo_matrix((c_vals, (c_rows, c_cols)), shape=shape)
    )
    source_map = sparse.csc_matrix(
        sparse.coo_matrix(
            (b_vals, (b_rows, b_cols)), shape=(dim, max(len(sources), 1))
        )
    )
    return MNASystem(
        conductance=conductance,
        capacitance=capacitance,
        source_map=source_map,
        node_index=node_index,
        branch_index=branch_index,
        sources=tuple(sources),
    )
