"""repro — reproduction of Alpert, Devgan & Quay,
"Buffer Insertion for Noise and Delay Optimization" (DAC 1998 / TCAD 1999).

The package implements the paper's three buffer-insertion algorithms and
every substrate they need:

* :mod:`repro.library` — technology, buffer, driver/sink cell models;
* :mod:`repro.tree` — binary routing trees, binarization, wire segmenting,
  rectilinear Steiner estimation;
* :mod:`repro.timing` — Elmore delay and slack analysis;
* :mod:`repro.noise` — the Devgan coupled-noise metric and aggressor models;
* :mod:`repro.core` — Theorem 1 closed forms, Algorithm 1 (single-sink
  noise avoidance), Algorithm 2 (multi-sink noise avoidance), Algorithm 3
  (BuffOpt: simultaneous noise+delay), and the DelayOpt baseline;
* :mod:`repro.circuit` — a SPICE-lite linear simulator (MNA + backward
  Euler) and RC moment analysis;
* :mod:`repro.analysis` — the detailed simulation-based noise verifier
  (the paper's "3dnoise" role);
* :mod:`repro.workloads` — the synthetic microprocessor net population;
* :mod:`repro.experiments` — regeneration of the paper's Tables I–IV and
  characterization figures.

The stable programmatic surface is :mod:`repro.api` — a
:class:`~repro.api.Session` facade unifying BuffOpt and DelayOpt behind
one call, with optional tracing/metrics from :mod:`repro.obs`::

    from repro import Session, SessionOptions
    from repro.experiments import default_experiment

    experiment = default_experiment(nets=10)
    with Session(SessionOptions(mode="buffopt"),
                 library=experiment.library,
                 coupling=experiment.coupling) as session:
        outcome = session.optimize(experiment.nets[0].tree)
        print(outcome.describe())

Quickstart (low-level single-sink entry point)::

    from repro import (
        default_technology, default_buffer_library, DriverCell,
        two_pin_net, CouplingModel, insert_buffers_single_sink,
    )
    from repro.units import UM, FF

    tech = default_technology()
    net = two_pin_net(tech, 9000 * UM, DriverCell("drv", 250.0),
                      sink_capacitance=20 * FF, noise_margin=0.8)
    coupling = CouplingModel.estimation_mode(tech)
    solution = insert_buffers_single_sink(
        net, default_buffer_library(), coupling)
    print(solution.describe())
"""

from .api import Objective, OptimizeResult, Session, SessionOptions, dp_result
from .core import (
    BufferSolution,
    ContinuousSolution,
    DPOptions,
    DPResult,
    PlacedBuffer,
    RunBudget,
    buffopt,
    buffopt_min_buffers,
    buffopt_result,
    decompose_stages,
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
    max_safe_length,
    optimize_delay,
    optimize_delay_per_count,
    run_dp,
    unloaded_max_length,
)
from .errors import (
    AnalysisError,
    BudgetExceededError,
    InfeasibleError,
    ObservabilityError,
    ReproError,
    SimulationError,
    TechnologyError,
    TimeoutError,
    TreeStructureError,
    WorkerCrashError,
    WorkloadError,
)
from .library import (
    BufferLibrary,
    BufferType,
    CellLibrary,
    DriverCell,
    PowerModel,
    SinkCell,
    Technology,
    default_buffer_library,
    default_cell_library,
    default_power_model,
    default_technology,
)
from .noise import (
    Aggressor,
    CouplingModel,
    NoiseReport,
    analyze_noise,
    has_noise_violation,
    noise_violations,
    sink_noise,
)
from .timing import max_sink_delay, sink_delays, source_slack
from .tree import (
    RoutingTree,
    SinkSite,
    TreeBuilder,
    binarize,
    segment_tree,
    steiner_tree,
    two_pin_net,
)

__version__ = "1.0.0"

__all__ = [
    "Aggressor",
    "AnalysisError",
    "BudgetExceededError",
    "BufferLibrary",
    "BufferSolution",
    "BufferType",
    "CellLibrary",
    "ContinuousSolution",
    "CouplingModel",
    "DPOptions",
    "DPResult",
    "DriverCell",
    "InfeasibleError",
    "NoiseReport",
    "Objective",
    "ObservabilityError",
    "OptimizeResult",
    "PlacedBuffer",
    "PowerModel",
    "ReproError",
    "RoutingTree",
    "RunBudget",
    "Session",
    "SessionOptions",
    "SimulationError",
    "SinkCell",
    "SinkSite",
    "Technology",
    "TechnologyError",
    "TimeoutError",
    "TreeBuilder",
    "TreeStructureError",
    "WorkerCrashError",
    "WorkloadError",
    "analyze_noise",
    "binarize",
    "buffopt",
    "buffopt_min_buffers",
    "buffopt_result",
    "decompose_stages",
    "default_buffer_library",
    "default_cell_library",
    "default_power_model",
    "default_technology",
    "dp_result",
    "has_noise_violation",
    "insert_buffers_multi_sink",
    "insert_buffers_single_sink",
    "max_safe_length",
    "max_sink_delay",
    "noise_violations",
    "optimize_delay",
    "optimize_delay_per_count",
    "run_dp",
    "segment_tree",
    "sink_delays",
    "sink_noise",
    "source_slack",
    "steiner_tree",
    "two_pin_net",
    "unloaded_max_length",
    "__version__",
]
