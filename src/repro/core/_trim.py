"""Footnote-8 completion: trim buffers made redundant by a strong driver.

The greedy walkers of Algorithms 1 and 2 test deferral against the
*buffer's* resistance, which the paper justifies by assuming
``R_so > R_b`` (footnote 8).  When the real driver is stronger than the
buffer, a span the greedy covered with its topmost buffer might have been
covered by the driver itself, leaving that buffer redundant.

:func:`trim_redundant` restores minimality in the sense of a 1-minimal
certificate: it repeatedly removes any placed buffer whose removal keeps
the net noise-clean (trying source-adjacent buffers first, where the
footnote-8 slack lives).  For ``R_so > R_b`` the greedy is already
optimal and this pass is a no-op; otherwise it implements the "test
whether the current solution will have no noise violations if no more
buffers are inserted" check the footnote prescribes, generalized to every
prefix of the solution.
"""

from __future__ import annotations

from typing import List, Tuple

from ..noise.coupling import CouplingModel
from ..noise.devgan import noise_violations
from ..tree.topology import RoutingTree
from .solution import ContinuousSolution, PlacedBuffer


def _depth_from_source(tree: RoutingTree, placement: PlacedBuffer) -> float:
    """Path length from the source to the placement point."""
    child = tree.node(placement.child)
    wire = child.parent_wire
    assert wire is not None
    depth = 0.0
    node = wire.parent
    while node.parent_wire is not None:
        depth += node.parent_wire.length
        node = node.parent_wire.parent
    return depth + (wire.length - placement.distance_from_child)


def _is_clean(
    tree: RoutingTree,
    placements: Tuple[PlacedBuffer, ...],
    coupling: CouplingModel,
    driver_resistance: float,
) -> bool:
    buffered, solution = ContinuousSolution(tree, placements).realize()
    return not noise_violations(
        buffered, coupling, solution.buffer_map(), driver_resistance
    )


def trim_redundant(
    tree: RoutingTree,
    placements: Tuple[PlacedBuffer, ...],
    coupling: CouplingModel,
    driver_resistance: float,
) -> Tuple[PlacedBuffer, ...]:
    """Drop placements whose removal keeps the net noise-clean.

    Returns a subset of ``placements`` that is 1-minimal: removing any
    single remaining buffer re-creates a violation.  The input is assumed
    to be noise-clean as a whole.
    """
    if not placements:
        return placements
    current: List[PlacedBuffer] = sorted(
        placements, key=lambda p: _depth_from_source(tree, p)
    )
    changed = True
    while changed:
        changed = False
        for index in range(len(current)):
            trial = tuple(current[:index] + current[index + 1:])
            if _is_clean(tree, trial, coupling, driver_resistance):
                current = list(trial)
                changed = True
                break
    return tuple(current)
