"""The paper's algorithms: Theorem 1 closed forms, Algorithms 1–3, DelayOpt."""

from .budget import RunBudget
from .dp import (
    AUTO_LISHI_THRESHOLD,
    ENGINE_CHOICES,
    ENGINES,
    DPCandidate,
    DPOptions,
    DPOutcome,
    DPResult,
    Insertion,
    resolve_auto_engine,
    run_dp,
)
from .eco import (
    ECO_HITS_COUNTER,
    ECO_MISSES_COUNTER,
    FrontierCache,
    FrontierSnapshot,
    subtree_fingerprints,
)
from .noise_delay import buffopt, buffopt_min_buffers, buffopt_result
from .objective import OBJECTIVE_MODES, SELECTION_RULES, Objective
from .noise_multi import (
    NoiseCandidate,
    insert_buffers_multi_sink,
    prune_noise_candidates,
)
from .noise_single import insert_buffers_single_sink, select_noise_buffer
from .noise_sites import noise_aware_segmentation
from .solution import BufferSolution, ContinuousSolution, PlacedBuffer
from .stages import Stage, StageSink, decompose_stages
from .stats import EngineStats, NodeStats
from .van_ginneken import (
    best_within_count,
    delay_opt_result,
    optimize_delay,
    optimize_delay_per_count,
)
from .wire_sizing import WireChoice, WireSizingSpec, apply_wire_widths
from .wire_length import (
    SpacingPlan,
    max_coupling_ratio,
    max_safe_length,
    max_safe_length_estimation,
    min_separation,
    uniform_line_spacing,
    uniform_wire_noise,
    unloaded_max_length,
    violating_margin_bound,
)

__all__ = [
    "BufferSolution",
    "ContinuousSolution",
    "DPCandidate",
    "DPOptions",
    "DPOutcome",
    "DPResult",
    "ECO_HITS_COUNTER",
    "ECO_MISSES_COUNTER",
    "EngineStats",
    "FrontierCache",
    "FrontierSnapshot",
    "Insertion",
    "subtree_fingerprints",
    "NodeStats",
    "NoiseCandidate",
    "OBJECTIVE_MODES",
    "Objective",
    "SELECTION_RULES",
    "PlacedBuffer",
    "RunBudget",
    "SpacingPlan",
    "Stage",
    "StageSink",
    "WireChoice",
    "WireSizingSpec",
    "apply_wire_widths",
    "best_within_count",
    "buffopt",
    "buffopt_min_buffers",
    "buffopt_result",
    "decompose_stages",
    "delay_opt_result",
    "insert_buffers_multi_sink",
    "insert_buffers_single_sink",
    "max_coupling_ratio",
    "max_safe_length",
    "max_safe_length_estimation",
    "min_separation",
    "noise_aware_segmentation",
    "optimize_delay",
    "optimize_delay_per_count",
    "prune_noise_candidates",
    "run_dp",
    "ENGINES",
    "ENGINE_CHOICES",
    "AUTO_LISHI_THRESHOLD",
    "resolve_auto_engine",
    "select_noise_buffer",
    "uniform_line_spacing",
    "uniform_wire_noise",
    "unloaded_max_length",
    "violating_margin_bound",
]
