"""The fast DP engine: Li & Shi-style flat frontiers, bit-identical results.

Li & Shi's *An O(bn^2) Time Algorithm for Optimal Buffer Insertion with b
Buffer Types* observes that the Van Ginneken recurrence spends its time in
three places — candidate-record churn, per-node re-sorting, and redundant
dominance scans — and that all three can be driven off candidate lists
that are *kept* sorted by load instead of being re-sorted at every node.
This module is that engine, adapted to BuffOpt's noise-aware candidate
tuple ``(C, q, I, NS, M)``:

* **flat tuple candidates** — ``(load, slack, current, noise_slack,
  chain, wire_chain, power)`` replaces the frozen-dataclass record of
  the reference engine.  Building a flat tuple is several times cheaper
  than a dataclass, and the DP builds hundreds of thousands of them.
  The power slot rides along as ``0.0`` on power-off runs (the same
  zero-cost-identity discipline as the reference engine: every
  power-off expression is ``x + 0.0``, which IEEE-754 guarantees equals
  ``x`` for finite ``x``), and joins the merge/prune/finalize logic
  only when :attr:`~repro.core.dp.DPOptions.power` is set;
* **cons-cell tuples** — solution chains are ``(payload, tail, count)``
  tuples instead of :class:`~repro.core._chain.Chain` cells, with the
  same O(1) push / shared-tail semantics;
* **incremental sorted frontiers** — merge outputs and wire updates
  preserve load order, so the timing prune is a single no-sort scan
  (the same :func:`~repro.core.dp._presorted_timing_frontier` discipline
  as the reference engine); only frontiers thrown out of order by the
  buffering pass pay a sort.  The ``prune_presorted`` / ``prune_sorts``
  telemetry on :class:`~repro.core.stats.EngineStats` makes this
  observable for both engines;
* **hoisted buffering scans** — the per-buffer "best candidate to drive"
  search runs over pre-extracted scalar lists (``(limit, slack, load)``
  triples), not attribute lookups.

**The bit-identity contract.**  This engine returns *the same
* :class:`~repro.core.dp.DPOutcome` objects as the reference engine —
not merely equal slacks, the same selected solutions — and the
differential suite (``tests/core/test_engine_differential.py``,
``benchmarks/bench_engines.py``) holds it to that.  Two classic Li–Shi
tricks are deliberately **not** used because they would break the
contract:

* *lazy wire-delay offsets* (applying the wire as a deferred
  ``(Δq, ΔI, ΔNS)`` on the whole list) re-associates the floating-point
  sums and can drift in the last ulp, so wires are applied per candidate
  with expressions mirroring the reference engine operation-for-
  operation;
* *eager dominance eviction at insert time* resolves exact-value ties in
  a different order than the reference engine's concatenate-then-prune
  discipline, selecting a different (equally good) solution on symmetric
  trees.

What remains is pure constant-factor engineering — same candidate
multisets, same group ordering, same prune decisions, ~2-4x faster.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..library.buffers import BufferLibrary
from ..library.cells import DriverCell
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree, Wire
from .dp import DPOptions, DPOutcome, DPResult, Insertion
from .stats import EngineStats
from .wire_sizing import WireChoice

# A candidate is (load, slack, current, noise_slack, chain, wire_chain,
# power); polarity and buffer count live on the group key / chain cell,
# so the per-candidate record carries only what the arithmetic touches.
_Cand = Tuple[
    float, float, float, float, Optional[tuple], Optional[tuple], float
]
_Groups = Dict[Tuple[int, int], List[_Cand]]

_INF = math.inf


def _chain_concat(left: Optional[tuple], right: Optional[tuple]) -> Optional[tuple]:
    """Tuple-cell twin of :meth:`Chain.concat`: left's items pushed onto right."""
    if left is None:
        return right
    items = []
    node: Optional[tuple] = left
    while node is not None:
        items.append(node[0])
        node = node[1]
    out = right
    count = out[2] if out is not None else 0
    for item in reversed(items):
        count += 1
        out = (item, out, count)
    return out


def _chain_payloads(chain: Optional[tuple]) -> List[tuple]:
    """Chain payloads in push order (twin of :meth:`Chain.to_tuple`)."""
    items: List[tuple] = []
    node = chain
    while node is not None:
        items.append(node[0])
        node = node[1]
    items.reverse()
    return items


def _timing_key(cand: _Cand) -> Tuple[float, float]:
    return (cand[0], -cand[1])


def _pareto_key(cand: _Cand) -> Tuple[float, float, float, float]:
    return (cand[0], -cand[1], cand[2], -cand[3])


class FastEngine:
    """Drop-in twin of :class:`~repro.core.dp._Engine` (``engine="fast"``).

    Construction, phase structure, counters, telemetry, and budget
    charging all mirror the reference engine; only the per-candidate
    representation and inner loops differ.  See the module docstring for
    the bit-identity contract.
    """

    def __init__(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        coupling: CouplingModel,
        options: DPOptions,
        driver: DriverCell,
    ):
        self.tree = tree
        self.library = library
        self.coupling = coupling
        self.options = options
        self.driver = driver
        self.power = options.power
        self.generated = 0
        self.kept_peak = 0
        self.dead = 0
        self.merge_forks = 0
        self.prune_presorted = 0
        self.prune_sorts = 0
        self.stats: Optional[EngineStats] = (
            EngineStats(engine="fast") if options.collect_stats else None
        )
        # Per-buffer scalars, extracted once: (buffer, R, Cin, D, NM, inv).
        self._buffers = [
            (
                b,
                b.resistance,
                b.input_capacitance,
                b.intrinsic_delay,
                b.noise_margin,
                1 if b.inverting else 0,
            )
            for b in library
        ]

    # -- visit loop ----------------------------------------------------------

    def run(self) -> DPResult:
        if self.stats is not None:
            return self._run_instrumented()
        budget = self.options.budget
        lists: Dict[str, _Groups] = {}
        for node in self.tree.postorder():
            if node.is_sink:
                groups = self._sink_base(node)
            else:
                groups = self._merge_children(node, lists)
                self._insert_buffers(node, groups)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                self._apply_wire(node.parent_wire, groups)
            self._prune(groups)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = groups
        return self._finalize(lists[self.tree.source.name])

    def _run_instrumented(self) -> DPResult:
        """:meth:`run` with per-phase telemetry (same arithmetic)."""
        stats = self.stats
        assert stats is not None
        budget = self.options.budget
        lists: Dict[str, _Groups] = {}
        for node in self.tree.postorder():
            record = stats.open_node(node.name)
            generated_before = self.generated
            dead_before = self.dead
            forks_before = self.merge_forks
            if node.is_sink:
                groups = self._sink_base(node)
            else:
                start = perf_counter()
                groups = self._merge_children(node, lists)
                stats.add_phase("merge", perf_counter() - start)
                start = perf_counter()
                self._insert_buffers(node, groups)
                stats.add_phase("buffering", perf_counter() - start)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                start = perf_counter()
                self._apply_wire(node.parent_wire, groups)
                stats.add_phase("wire", perf_counter() - start)
            start = perf_counter()
            dropped, frontier = self._prune(groups)
            stats.add_phase("prune", perf_counter() - start)
            record.generated = self.generated - generated_before
            record.dead = self.dead - dead_before
            record.merge_forks = self.merge_forks - forks_before
            record.pruned = dropped
            record.frontier = frontier
            stats.candidates_pruned += dropped
            stats.frontier_peak = max(stats.frontier_peak, frontier)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = groups
        start = perf_counter()
        result = self._finalize(lists[self.tree.source.name])
        stats.add_phase("finalize", perf_counter() - start)
        stats.candidates_generated = self.generated
        stats.candidates_dead = self.dead
        stats.merge_forks = self.merge_forks
        stats.prune_presorted = self.prune_presorted
        stats.prune_sorts = self.prune_sorts
        if budget is not None:
            stats.budget_checks = budget.checks
            stats.budget_candidate_pressure = budget.candidate_pressure
            stats.budget_time_pressure = budget.time_pressure
        return result

    # -- phases --------------------------------------------------------------

    def _sink_base(self, node: Node) -> _Groups:
        assert node.sink is not None
        self.generated += 1
        return {
            (0, 0): [
                (
                    node.sink.capacitance,
                    node.sink.required_arrival,
                    0.0,
                    node.sink.noise_margin,
                    None,
                    None,
                    0.0,
                )
            ]
        }

    def _merge_children(self, node: Node, lists: Dict[str, _Groups]) -> _Groups:
        children = node.children
        assert children, f"internal node {node.name!r} without children"
        groups = lists[children[0].name]
        for child in children[1:]:
            groups = self._merge_pair(groups, lists[child.name])
        return groups

    def _merge_pair(self, left: _Groups, right: _Groups) -> _Groups:
        enforce = self.options.enforce_polarity
        track = self.options.track_counts
        max_buffers = self.options.max_buffers
        power_active = self.power is not None
        merged: _Groups = {}
        made = 0
        for (pol_l, count_l), list_l in left.items():
            n_l = len(list_l)
            for (pol_r, count_r), list_r in right.items():
                if enforce and pol_l != pol_r:
                    continue
                count = count_l + count_r
                if max_buffers is not None and track and count > max_buffers:
                    continue
                key = (pol_l if enforce else 0, count if track else 0)
                self.merge_forks += 1
                out = merged.get(key)
                if out is None:
                    merged[key] = out = []
                append = out.append
                if power_active:
                    # Full |L|x|R| merge: with power as a third frontier
                    # axis the staircase's single binding partner is no
                    # longer exhaustive (a partner may trade slack for
                    # power), so every pairing is generated and the
                    # following prune keeps the 3D frontier — mirroring
                    # the reference engine's _cross_merge.
                    for a in list_l:
                        a_slack = a[1]
                        a_ns = a[3]
                        for b in list_r:
                            b_slack = b[1]
                            b_ns = b[3]
                            append(
                                (
                                    a[0] + b[0],
                                    a_slack if a_slack < b_slack else b_slack,
                                    a[2] + b[2],
                                    a_ns if a_ns < b_ns else b_ns,
                                    _chain_concat(a[4], b[4]),
                                    _chain_concat(a[5], b[5]),
                                    a[6] + b[6],
                                )
                            )
                            made += 1
                    continue
                # Van Ginneken's |L|+|R| merge over two load-sorted
                # frontiers, inlined.  Advance the side whose slack
                # binds; it can only improve by paying more load.
                i = j = 0
                n_r = len(list_r)
                while i < n_l and j < n_r:
                    a = list_l[i]
                    b = list_r[j]
                    a_slack = a[1]
                    b_slack = b[1]
                    a_ns = a[3]
                    b_ns = b[3]
                    append(
                        (
                            a[0] + b[0],
                            a_slack if a_slack < b_slack else b_slack,
                            a[2] + b[2],
                            a_ns if a_ns < b_ns else b_ns,
                            _chain_concat(a[4], b[4]),
                            _chain_concat(a[5], b[5]),
                            a[6] + b[6],
                        )
                    )
                    made += 1
                    if a_slack < b_slack:
                        i += 1
                    elif b_slack < a_slack:
                        j += 1
                    else:
                        i += 1
                        j += 1
        self.generated += made
        return merged

    def _insert_buffers(self, node: Node, groups: _Groups) -> None:
        if not node.feasible or node.is_source:
            return
        options = self.options
        track = options.track_counts
        noise_aware = options.noise_aware
        max_buffers = options.max_buffers
        enforce = options.enforce_polarity
        node_name = node.name
        prices = options.site_prices
        # Uniform per node, so the per-buffer argmax is untouched; the
        # subtraction mirrors the reference's operation order exactly
        # ((best_slack - intrinsic) - penalty) for bit-identity.
        penalty = prices.get(node_name, 0.0) if prices else 0.0
        power_model = self.power
        buffers = self._buffers
        additions: List[Tuple[Tuple[int, int], _Cand]] = []
        add = additions.append
        for (polarity, group_count), candidates in groups.items():
            if track and max_buffers is not None and group_count + 1 > max_buffers:
                continue
            if power_model is not None:
                # Power-active: the scalar argmax would discard donors
                # that trade slack for power, so keep one buffered
                # candidate per (drive-slack, power)-Pareto donor —
                # mirroring the reference engine's donor frontier.
                if noise_aware:
                    limits = [
                        (c[3] / c[2]) if c[2] > 0 else _INF
                        for c in candidates
                    ]
                else:
                    limits = None
                for buffer, resistance, in_cap, intrinsic, noise_margin, inv in buffers:
                    entries = []
                    for index, cand in enumerate(candidates):
                        if limits is not None and resistance > limits[index]:
                            continue
                        entries.append(
                            (
                                cand[1] - resistance * cand[0],
                                cand[6],
                                index,
                            )
                        )
                    if not entries:
                        continue
                    entries.sort(key=lambda entry: (entry[1], -entry[0]))
                    best_seen = -_INF
                    buffer_power = power_model.buffer_power(buffer)
                    new_pol = (polarity ^ inv) if enforce else 0
                    for drive_slack, _, index in entries:
                        if drive_slack > best_seen:
                            best_seen = drive_slack
                            self._add_buffered(
                                node_name,
                                add,
                                candidates[index],
                                drive_slack,
                                buffer,
                                in_cap,
                                intrinsic,
                                noise_margin,
                                new_pol,
                                group_count,
                                track,
                                penalty,
                                buffer_power,
                            )
                continue
            # Pre-extracted scan rows; limit is the largest gate resistance
            # the candidate tolerates (NS / I).  The per-buffer argmax runs
            # as a listcomp + C-level max/index: `max` and `.index` both
            # return the *first* maximal element, exactly the reference
            # engine's first-strict-improvement scan, and filtered rows
            # collapse to -inf which the strict `>` scan would also never
            # pick.
            if noise_aware:
                rows = [
                    (
                        (c[3] / c[2]) if c[2] > 0 else _INF,
                        c[1],
                        c[0],
                    )
                    for c in candidates
                ]
                for buffer, resistance, in_cap, intrinsic, noise_margin, inv in buffers:
                    slacks = [
                        -_INF
                        if resistance > limit  # Step 5: never noisy.
                        else cand_slack - resistance * load
                        for limit, cand_slack, load in rows
                    ]
                    best_slack = max(slacks, default=-_INF)
                    if best_slack == -_INF:
                        continue
                    self._add_buffered(
                        node_name,
                        add,
                        candidates[slacks.index(best_slack)],
                        best_slack,
                        buffer,
                        in_cap,
                        intrinsic,
                        noise_margin,
                        (polarity ^ inv) if enforce else 0,
                        group_count,
                        track,
                        penalty,
                    )
                continue
            pairs = [(c[1], c[0]) for c in candidates]
            for buffer, resistance, in_cap, intrinsic, noise_margin, inv in buffers:
                slacks = [
                    cand_slack - resistance * load for cand_slack, load in pairs
                ]
                best_slack = max(slacks, default=-_INF)
                if best_slack == -_INF:
                    continue
                self._add_buffered(
                    node_name,
                    add,
                    candidates[slacks.index(best_slack)],
                    best_slack,
                    buffer,
                    in_cap,
                    intrinsic,
                    noise_margin,
                    (polarity ^ inv) if enforce else 0,
                    group_count,
                    track,
                    penalty,
                )
        for key, cand in additions:
            group = groups.get(key)
            if group is None:
                groups[key] = [cand]
            else:
                group.append(cand)

    def _add_buffered(
        self,
        node_name: str,
        add,
        cand: _Cand,
        best_slack: float,
        buffer,
        in_cap: float,
        intrinsic: float,
        noise_margin: float,
        new_pol: int,
        group_count: int,
        track: bool,
        penalty: float = 0.0,
        buffer_power: float = 0.0,
    ) -> None:
        """Queue the buffered variant of ``cand`` (one per buffer type)."""
        chain = cand[4]
        tail_count = chain[2] if chain is not None else 0
        new_count = (group_count if track else tail_count) + 1
        add(
            (
                (new_pol, new_count if track else 0),
                (
                    in_cap,
                    best_slack - intrinsic - penalty,
                    0.0,
                    noise_margin,
                    ((node_name, buffer), chain, tail_count + 1),
                    cand[5],
                    cand[6] + buffer_power,
                ),
            )
        )
        self.generated += 1

    def _apply_wire(self, wire: Wire, groups: _Groups) -> None:
        base_i = self.coupling.wire_current(wire)
        sizing = self.options.sizing
        noise_aware = self.options.noise_aware
        power_model = self.power
        if sizing is None:
            # The hot path: one width, updates applied per candidate with
            # the halved terms hoisted (exactly `R * (I/2 + i)` and
            # `q - R * (C/2 + c)` as in the reference engine).  The
            # wire's power is uniform across candidates (the segment
            # switches however the subtree is buffered); adding 0.0 on
            # power-off runs is bit-identical.
            resistance = wire.resistance
            capacitance = wire.capacitance
            half_i = base_i / 2.0
            half_cap = capacitance / 2.0
            wire_power = (
                power_model.wire_power(capacitance)
                if power_model is not None
                else 0.0
            )
            dead = 0
            for key, candidates in list(groups.items()):
                if noise_aware:
                    # Walrus in the filter clause computes NS once and
                    # drops dead candidates (no gate can ever drive them).
                    updated = [
                        (
                            cand[0] + capacitance,
                            cand[1] - resistance * (half_cap + cand[0]),
                            cand[2] + base_i,
                            noise_slack,
                            cand[4],
                            cand[5],
                            cand[6] + wire_power,
                        )
                        for cand in candidates
                        if not (
                            (
                                noise_slack := cand[3]
                                - resistance * (half_i + cand[2])
                            )
                            < 0.0
                        )
                    ]
                    dead += len(candidates) - len(updated)
                else:
                    updated = [
                        (
                            cand[0] + capacitance,
                            cand[1] - resistance * (half_cap + cand[0]),
                            cand[2] + base_i,
                            cand[3] - resistance * (half_i + cand[2]),
                            cand[4],
                            cand[5],
                            cand[6] + wire_power,
                        )
                        for cand in candidates
                    ]
                if updated:
                    groups[key] = updated
                else:
                    del groups[key]
            self.dead += dead
            return
        # Lillis sizing: realize the wire at every menu width; the pruning
        # pass keeps the (load, slack) frontier of the variants.  (Power
        # with sizing is rejected by DPOptions, so the 0.0 here is the
        # only value this path ever sees.)
        variants = []
        for width in sizing.widths:
            scale = sizing.capacitance_scale(width)
            capacitance = sizing.capacitance(wire.capacitance, width)
            variants.append(
                (
                    None if width == 1.0 else width,
                    sizing.resistance(wire.resistance, width),
                    capacitance,
                    base_i * scale,
                    power_model.wire_power(capacitance)
                    if power_model is not None
                    else 0.0,
                )
            )
        parent_name = wire.parent.name
        child_name = wire.child.name
        for key, candidates in list(groups.items()):
            updated = []
            for cand in candidates:
                for width, resistance, capacitance, wire_i, wire_power in variants:
                    noise_slack = cand[3] - resistance * (
                        wire_i / 2.0 + cand[2]
                    )
                    if noise_aware and noise_slack < 0.0:
                        self.dead += 1
                        continue
                    wire_chain = cand[5]
                    if width is not None:
                        wire_chain = (
                            (parent_name, child_name, width),
                            wire_chain,
                            (wire_chain[2] if wire_chain is not None else 0)
                            + 1,
                        )
                    updated.append(
                        (
                            cand[0] + capacitance,
                            cand[1] - resistance * (capacitance / 2.0 + cand[0]),
                            cand[2] + wire_i,
                            noise_slack,
                            cand[4],
                            wire_chain,
                            cand[6] + wire_power,
                        )
                    )
                    self.generated += 1
            if updated:
                groups[key] = updated
            else:
                del groups[key]

    def _prune(self, groups: _Groups) -> Tuple[int, int]:
        """Prune every group in place; return (dropped, surviving) counts."""
        total = 0
        dropped = 0
        timing = self.options.prune == "timing"
        power_active = self.power is not None
        for key, candidates in list(groups.items()):
            if power_active:
                # Power joins the dominance key only here — power-off
                # runs never reach these branches, preserving bit
                # identity and the presorted-scan fast path.
                self.prune_sorts += 1
                kept = (
                    self._power_timing_frontier(candidates)
                    if timing
                    else self._prune_pareto_power(candidates)
                )
            elif timing:
                kept = self._prune_timing(candidates)
            else:
                kept = self._prune_pareto(candidates)
            dropped += len(candidates) - len(kept)
            groups[key] = kept
            total += len(kept)
        if total > self.kept_peak:
            self.kept_peak = total
        return dropped, total

    def _prune_timing(self, candidates: List[_Cand]) -> List[_Cand]:
        """The (load, slack) frontier, sort-free on already-sorted lists.

        One forward scan both *verifies* ``(load, -slack)`` order and
        prunes; the moment an out-of-order pair appears the scan aborts
        to the sort-then-scan fallback (identical to the reference
        engine's discipline, so both engines keep exactly the same
        candidates).  An instance method so the fuzz harness can plant a
        broken override.
        """
        kept: List[_Cand] = []
        append = kept.append
        best_slack = -_INF
        prev_load = -_INF
        prev_slack = _INF
        for cand in candidates:
            load = cand[0]
            slack = cand[1]
            if load < prev_load or (load == prev_load and slack > prev_slack):
                break  # out of order: fall back to the sort below
            prev_load = load
            prev_slack = slack
            if slack > best_slack:
                append(cand)
                best_slack = slack
        else:
            self.prune_presorted += 1
            return kept
        self.prune_sorts += 1
        kept = []
        append = kept.append
        best_slack = -_INF
        for cand in sorted(candidates, key=_timing_key):
            slack = cand[1]
            if slack > best_slack:
                append(cand)
                best_slack = slack
        return kept

    @staticmethod
    def _power_timing_frontier(candidates: List[_Cand]) -> List[_Cand]:
        """(load, slack, power) dominance — the timing rule's power axis.

        Mirrors the reference engine's ``_power_timing_frontier``: load
        order makes dominance a scan of the kept list for a candidate
        with slack >= and power <= (first-seen wins exact ties).
        """
        ordered = sorted(candidates, key=lambda c: (c[0], -c[1], c[6]))
        kept: List[_Cand] = []
        for cand in ordered:
            slack = cand[1]
            power = cand[6]
            for other in kept:
                if other[1] >= slack and other[6] <= power:
                    break
            else:
                kept.append(cand)
        return kept

    @staticmethod
    def _prune_pareto_power(candidates: List[_Cand]) -> List[_Cand]:
        """5-field dominance: the pareto ablation plus the power axis."""
        ordered = sorted(
            candidates,
            key=lambda c: (c[0], -c[1], c[2], -c[3], c[6]),
        )
        kept: List[_Cand] = []
        for cand in ordered:
            for other in kept:
                if (
                    other[0] <= cand[0]
                    and other[1] >= cand[1]
                    and other[2] <= cand[2]
                    and other[3] >= cand[3]
                    and other[6] <= cand[6]
                ):
                    break
            else:
                kept.append(cand)
        return kept

    def _prune_pareto(self, candidates: List[_Cand]) -> List[_Cand]:
        """4-field dominance (load, slack, current, noise slack) — ablation."""
        kept: List[_Cand] = []
        for cand in sorted(candidates, key=_pareto_key):
            load = cand[0]
            slack = cand[1]
            current = cand[2]
            noise_slack = cand[3]
            for other in kept:
                if (
                    other[0] <= load
                    and other[1] >= slack
                    and other[2] <= current
                    and other[3] >= noise_slack
                ):
                    break
            else:
                kept.append(cand)
        return kept

    def _finalize(self, groups: _Groups) -> DPResult:
        if self.power is not None:
            return self._finalize_power(groups)
        # Winner per count is tracked as the raw candidate and only
        # materialized into Insertion/WireChoice tuples once at the end —
        # the selection (strict slack improvement, first wins ties) is the
        # reference engine's, so the built outcomes are identical.
        winners: Dict[int, Tuple[float, bool, _Cand]] = {}
        has_inverters = any(b.inverting for b in self.library)
        enforce = self.options.enforce_polarity
        noise_aware = self.options.noise_aware
        gate_delay = self.driver.gate_delay
        driver_resistance = self.driver.resistance
        for (polarity, _), candidates in groups.items():
            if enforce and has_inverters and polarity != 0:
                continue
            for cand in candidates:
                slack = cand[1] - gate_delay(cand[0])
                noise_ok = driver_resistance * cand[2] <= cand[3]
                if noise_aware and not noise_ok:
                    continue  # Step 3/4 of Fig. 10: reject noisy finals.
                chain = cand[4]
                count = chain[2] if chain is not None else 0
                kept = winners.get(count)
                if kept is not None and not slack > kept[0]:
                    continue
                winners[count] = (slack, noise_ok, cand)
        ordered = tuple(
            self._materialize(count, slack, noise_ok, cand)
            for count, (slack, noise_ok, cand) in sorted(winners.items())
        )
        return DPResult(
            tree=self.tree,
            outcomes=ordered,
            options=self.options,
            candidates_generated=self.generated,
            candidates_kept_peak=self.kept_peak,
            stats=self.stats,
        )

    def _finalize_power(self, groups: _Groups) -> DPResult:
        """Power-mode finalize: per-count (slack, power) frontiers.

        Mirrors the reference engine: every surviving candidate is
        evaluated at the driver, then each count keeps the outcomes
        ordered by rising power where each extra joule buys strictly
        more slack.
        """
        has_inverters = any(b.inverting for b in self.library)
        enforce = self.options.enforce_polarity
        noise_aware = self.options.noise_aware
        gate_delay = self.driver.gate_delay
        driver_resistance = self.driver.resistance
        per_count: Dict[int, List[Tuple[float, bool, _Cand]]] = {}
        for (polarity, _), candidates in groups.items():
            if enforce and has_inverters and polarity != 0:
                continue
            for cand in candidates:
                slack = cand[1] - gate_delay(cand[0])
                noise_ok = driver_resistance * cand[2] <= cand[3]
                if noise_aware and not noise_ok:
                    continue
                chain = cand[4]
                count = chain[2] if chain is not None else 0
                per_count.setdefault(count, []).append(
                    (slack, noise_ok, cand)
                )
        frontier: List[DPOutcome] = []
        for count in sorted(per_count):
            best_seen = -_INF
            for slack, noise_ok, cand in sorted(
                per_count[count], key=lambda entry: (entry[2][6], -entry[0])
            ):
                if slack > best_seen:
                    frontier.append(
                        self._materialize(count, slack, noise_ok, cand)
                    )
                    best_seen = slack
        return DPResult(
            tree=self.tree,
            outcomes=tuple(frontier),
            options=self.options,
            candidates_generated=self.generated,
            candidates_kept_peak=self.kept_peak,
            stats=self.stats,
        )

    @staticmethod
    def _materialize(
        count: int, slack: float, noise_ok: bool, cand: _Cand
    ) -> DPOutcome:
        """Expand a raw winning candidate into a full :class:`DPOutcome`."""
        return DPOutcome(
            buffer_count=count,
            slack=slack,
            noise_feasible=noise_ok,
            insertions=tuple(
                Insertion(name, buffer)
                for name, buffer in _chain_payloads(cand[4])
            ),
            wire_choices=tuple(
                WireChoice(parent, child, width)
                for parent, child, width in _chain_payloads(cand[5])
            ),
            power=cand[6],
        )
