"""Algorithm 3 / BuffOpt: simultaneous noise and delay optimization
(paper Section IV).

Same DP as Van Ginneken's algorithm, with the boldface modifications of
Figs. 10–11: candidates carry ``(C, q, I, NS, M)``, a buffer is only
inserted when its output noise fits the downstream noise slack, dead
candidates (``NS < 0``) are dropped, and the final driver must itself be
noise-feasible.  Optimality holds for a single-buffer library under the
Theorem 5 assumptions (``Cb <= Ci`` and ``NM(b) >= NM(si)``); for the
11-buffer experimental library the paper measures (and we reproduce) a
<2 % gap to the DelayOpt upper bound.

Entry points:

* :func:`buffopt` — Problem 2: maximize source slack subject to noise;
* :func:`buffopt_min_buffers` — Problem 3: fewest buffers meeting noise
  and timing, slack as tiebreak (the BuffOpt tool configuration used for
  the paper's Tables II–IV);
* :func:`buffopt_result` — the raw per-count :class:`DPResult`.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..library.buffers import BufferLibrary
from ..library.cells import DriverCell
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from .budget import RunBudget
from .dp import DPOptions, DPResult, run_dp
from .solution import BufferSolution


def buffopt_result(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    driver: Optional[DriverCell] = None,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
    prune: str = "timing",
    collect_stats: bool = False,
    budget: Optional[RunBudget] = None,
    engine: str = "reference",
) -> DPResult:
    """Noise-constrained count-tracking DP run (per-count outcomes).

    .. deprecated:: 1.1
        Use :func:`repro.api.dp_result` with ``mode="buffopt"`` (or the
        :class:`repro.api.Session` facade).  This shim forwards there
        and returns bit-identical results — pinned by the parity tests.
    """
    warnings.warn(
        "buffopt_result is deprecated; use repro.api.dp_result("
        "mode='buffopt') or repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import dp_result

    return dp_result(
        tree,
        library,
        coupling,
        mode="buffopt",
        driver=driver,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
        prune=prune,
        collect_stats=collect_stats,
        budget=budget,
        engine=engine,
    )


def buffopt(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    driver: Optional[DriverCell] = None,
    enforce_polarity: bool = True,
) -> BufferSolution:
    """Problem 2: maximize slack such that all noise constraints hold.

    Raises :class:`~repro.errors.InfeasibleError` when no noise-feasible
    buffering exists for this library/segmentation.
    """
    result = run_dp(
        tree,
        library,
        coupling=coupling,
        options=DPOptions(noise_aware=True, enforce_polarity=enforce_polarity),
        driver=driver,
    )
    return result.solution(result._best())


def buffopt_min_buffers(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    driver: Optional[DriverCell] = None,
    min_slack: float = 0.0,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
) -> BufferSolution:
    """Problem 3: fewest buffers with noise satisfied and slack >= min_slack.

    This mirrors the shipped BuffOpt tool: "first finding the best solution
    in terms of timing for each possible number of buffers and then
    returning the solution with the fewest buffers such that both noise
    and timing constraints are satisfied."  When no count reaches
    ``min_slack`` (e.g. all RATs are infinite — pure noise repair — or the
    net is timing-infeasible), the max-slack noise-feasible solution is
    returned instead.
    """
    from ..api import dp_result

    result = dp_result(
        tree,
        library,
        coupling,
        mode="buffopt",
        driver=driver,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
    )
    return result.solution(result._fewest_buffers(min_slack=min_slack))
