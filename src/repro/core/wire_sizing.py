"""Wire sizing model for simultaneous sizing + buffer insertion.

The paper's DP inherits from Lillis, Cheng and Lin [18], whose algorithm
"simultaneously perform[s] wire sizing and buffer insertion".  This module
supplies that extension for our engine:

* :class:`WireSizingSpec` — the discrete width menu and the electrical
  scaling model.  A wire of base resistance ``R0`` and capacitance ``C0``
  realized at width multiplier ``w`` has

      R(w) = R0 / w
      C(w) = C0 * (a * w + (1 - a))

  where ``a`` is the *area fraction* of the wire capacitance (the
  width-proportional plate component; the remainder is fringe/coupling
  that stays roughly constant).  Aggressor-induced noise current scales
  with the capacitance, matching the estimation-mode assumption that a
  fixed fraction of the total capacitance is coupling (eq. 6).
* :class:`WireChoice` — one (wire, width) decision recorded in a DP
  candidate.
* :func:`apply_wire_widths` — realize a width assignment as a new tree so
  the ordinary timing/noise analyses can verify the DP's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import TechnologyError
from ..tree.topology import Node, RoutingTree
from ..tree.transform import copy_node, copy_wire


@dataclass(frozen=True)
class WireChoice:
    """One wire realized at a non-default width."""

    parent: str
    child: str
    width: float


@dataclass(frozen=True)
class WireSizingSpec:
    """Discrete width menu plus the R/C scaling model."""

    widths: Tuple[float, ...] = (1.0, 1.5, 2.0)
    area_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not self.widths:
            raise TechnologyError("wire sizing needs at least one width")
        for width in self.widths:
            if width <= 0:
                raise TechnologyError(f"widths must be positive, got {width}")
        if 1.0 not in self.widths:
            raise TechnologyError(
                "the width menu must include 1.0 (the drawn width); got "
                f"{self.widths}"
            )
        if not 0.0 <= self.area_fraction <= 1.0:
            raise TechnologyError(
                f"area_fraction must lie in [0, 1], got {self.area_fraction}"
            )

    def resistance(self, base: float, width: float) -> float:
        """Wire resistance at the given width multiplier."""
        return base / width

    def capacitance(self, base: float, width: float) -> float:
        """Wire capacitance at the given width multiplier."""
        return base * (self.area_fraction * width + (1.0 - self.area_fraction))

    def capacitance_scale(self, width: float) -> float:
        """``C(w) / C(1)`` — also the noise-current scale (eq. 6)."""
        return self.area_fraction * width + (1.0 - self.area_fraction)


def apply_wire_widths(
    tree: RoutingTree,
    choices: Mapping[Tuple[str, str], float],
    spec: WireSizingSpec,
) -> RoutingTree:
    """Return a copy of ``tree`` with the chosen wires resized.

    ``choices`` maps ``(parent name, child name)`` to a width multiplier;
    unlisted wires keep their drawn width.  Explicit wire currents scale
    with the capacitance (the coupled fraction tracks total capacitance).
    """
    remaining = dict(choices)
    copies: Dict[str, Node] = {n.name: copy_node(n) for n in tree.nodes()}
    new_wires = []
    for wire in tree.wires():
        piece = copy_wire(wire, copies[wire.parent.name], copies[wire.child.name])
        width = remaining.pop((wire.parent.name, wire.child.name), None)
        if width is not None and width != 1.0:
            if width not in spec.widths:
                raise TechnologyError(
                    f"width {width} for wire {wire.name} is not in the "
                    f"menu {spec.widths}"
                )
            piece.resistance = spec.resistance(wire.resistance, width)
            piece.capacitance = spec.capacitance(wire.capacitance, width)
            if wire.current is not None:
                piece.current = wire.current * spec.capacitance_scale(width)
        new_wires.append(piece)
    if remaining:
        raise TechnologyError(
            f"width choices reference unknown wires: {sorted(remaining)}"
        )
    return RoutingTree(
        list(copies.values()), new_wires, driver=tree.driver,
        name=tree.name, allow_nonbinary=not tree.is_binary,
    )
