"""Algorithm 1: optimal noise avoidance for single-sink trees (Section III-B).

Walk from the sink toward the source maintaining the downstream current
``I`` and noise slack ``NS``.  On each wire, as long as a buffer placed at
the wire's upstream end would satisfy the noise constraint, defer; when it
would not, insert a buffer at its *maximal* distance up the wire per
Theorem 1 (which resets ``I = 0`` and ``NS = NM(b)``) and continue.  At the
source, if the driver itself cannot satisfy ``R_so * I <= NS``, insert one
final buffer right after the source (only needed when ``R_so > R_b``).

Optimality (Theorem 3): every buffer is inserted as far up the tree as the
noise constraint allows, so no solution uses fewer buffers.  Run time is
linear in the number of wires plus the number of inserted buffers.

For a multi-buffer library the optimum is achieved by the smallest-
resistance buffer (remark after Theorem 3): a smaller ``Rb`` strictly
increases every Theorem-1 distance, so the min-R buffer maximizes spacing.
:func:`insert_buffers_single_sink` performs that selection when handed a
:class:`~repro.library.BufferLibrary`.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..errors import InfeasibleError, TreeStructureError
from ..library.buffers import BufferLibrary, BufferType
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from ._trim import trim_redundant
from ._walk import walk_wire
from .solution import ContinuousSolution, PlacedBuffer


def select_noise_buffer(buffers: Union[BufferType, BufferLibrary]) -> BufferType:
    """The buffer Algorithms 1/2 use: the library's smallest resistance."""
    if isinstance(buffers, BufferLibrary):
        return buffers.smallest_resistance()
    return buffers


def insert_buffers_single_sink(
    tree: RoutingTree,
    buffers: Union[BufferType, BufferLibrary],
    coupling: CouplingModel,
    driver_resistance: Optional[float] = None,
) -> ContinuousSolution:
    """Minimum-buffer noise avoidance on a single-sink tree (Problem 1).

    Parameters
    ----------
    tree:
        A routing tree with exactly one sink.  Intermediate degree-1 chain
        nodes are fine; buffers are *not* restricted to them — Algorithm 1
        places buffers continuously along wires.
    buffers:
        The buffer type to insert, or a library (collapsed to its
        smallest-resistance member).
    coupling:
        Aggressor model resolving per-wire noise currents.
    driver_resistance:
        ``R_so``; defaults to ``tree.driver.resistance``.

    Raises
    ------
    InfeasibleError
        If noise cannot be fixed with this buffer type (e.g. the buffer's
        own drive of a sink-adjacent span already violates the margin).
    """
    sinks = tree.sinks
    if len(sinks) != 1:
        raise TreeStructureError(
            f"Algorithm 1 needs a single-sink tree; {tree.name!r} has "
            f"{len(sinks)} sinks (use insert_buffers_multi_sink)"
        )
    if driver_resistance is None:
        if tree.driver is None:
            raise InfeasibleError(
                f"tree {tree.name!r} has no driver; pass driver_resistance"
            )
        driver_resistance = tree.driver.resistance
    buffer = select_noise_buffer(buffers)
    sink = sinks[0]
    assert sink.sink is not None

    current = 0.0
    slack = sink.sink.noise_margin
    placements: List[PlacedBuffer] = []

    for wire in tree.path_to_source(sink):
        current, slack, placed = walk_wire(wire, buffer, coupling, current, slack)
        placements.extend(placed)

    # Step 5: the real driver replaces the hypothetical buffer at the source.
    if driver_resistance * current > slack:
        top_wire = tree.source.children[0].parent_wire
        assert top_wire is not None
        # Feasible because the walker's invariant guarantees Rb * I <= NS.
        placements.append(
            PlacedBuffer(
                parent=top_wire.parent.name,
                child=top_wire.child.name,
                distance_from_child=top_wire.length,
                buffer=buffer,
            )
        )
    result = tuple(placements)
    if driver_resistance < buffer.resistance:
        # Footnote 8: a driver stronger than the buffer can make the
        # topmost placements redundant; trim to a 1-minimal solution.
        result = trim_redundant(tree, result, coupling, driver_resistance)
    return ContinuousSolution(tree=tree, placements=result)
