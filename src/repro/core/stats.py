"""Engine instrumentation: candidate and pruning telemetry.

The paper explains BuffOpt's speed by candidate-population effects
(Section V-B: dead-candidate dropping makes the noise-aware DP *generate
fewer* candidates than DelayOpt), and Li & Shi's O(bn^2) analysis shows
the asymptotics live in how hard each pruning pass bites.  This module
makes those quantities observable instead of anecdotal: an optional
:class:`EngineStats` collector rides along a DP run (``DPOptions(
collect_stats=True)``) and records, per node and in aggregate,

* how many candidates were generated,
* how many each pruning pass removed,
* how many died to the noise-slack test (``NS < 0``, noise-aware only),
* frontier sizes after pruning, and
* wall-clock per engine phase (merge / buffering / wire / prune).

Everything here is plain picklable data so batch workers can ship the
telemetry back across process boundaries.  Collection never changes the
candidate arithmetic — a run with stats enabled returns bit-identical
solutions to one without (covered by the differential harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: engine phase names, in execution order within a node visit.
PHASES = ("merge", "buffering", "wire", "prune", "finalize")


@dataclass
class NodeStats:
    """Telemetry for one tree node's visit.

    ``generated`` counts candidates created while processing this node
    (sink bases, merge outputs, buffered variants, sizing variants);
    ``pruned`` counts candidates the pruning pass removed *at* this node
    — which may exceed ``generated`` at pass-through nodes whose frontier
    was generated further down.  ``dead`` counts noise-dead drops
    (``NS < 0``) during the wire update; ``frontier`` is the surviving
    candidate count after pruning; ``merge_forks`` the number of
    (polarity, count)-group pair combinations merged here.
    """

    name: str
    generated: int = 0
    pruned: int = 0
    dead: int = 0
    frontier: int = 0
    merge_forks: int = 0


@dataclass
class EngineStats:
    """Aggregate telemetry of one DP run.

    Attributes
    ----------
    candidates_generated:
        Total candidates created, identical in meaning to
        :attr:`~repro.core.dp.DPResult.candidates_generated`.
    candidates_pruned:
        Total candidates removed by the pruning passes.
    candidates_dead:
        Total noise-dead candidates dropped during wire updates
        (``NS < 0``; always 0 for delay-only runs).
    frontier_peak:
        Largest post-prune frontier (all groups of one node summed).
    merge_forks:
        Total (polarity, count)-group pair combinations merged.
    phase_seconds:
        Wall-clock spent per engine phase, keyed by :data:`PHASES`.
    nodes:
        Per-node breakdowns in postorder visit order.
    budget_checks:
        How many cooperative :class:`~repro.core.budget.RunBudget`
        checks ran (0 when the run was unguarded).
    budget_candidate_pressure:
        Peak generated-candidate count as a fraction of the candidate
        budget — how close the run came to a
        :class:`~repro.errors.BudgetExceededError` (0 when uncapped).
    budget_time_pressure:
        Peak observed elapsed time as a fraction of the deadline — how
        close the run came to a :class:`~repro.errors.TimeoutError`
        (0 when no deadline).
    engine:
        Which DP engine produced this record (``"reference"`` or
        ``"fast"``; ``"mixed"`` after aggregating across engines).
    prune_presorted:
        Timing-prune passes that found their frontier already
        ``(load, -slack)``-sorted and skipped the sort entirely — the
        incremental-sorted-frontier fast path.  The reference and fast
        engines report the same counter, so their pruning behaviour is
        directly comparable.
    prune_sorts:
        Timing-prune passes that had to fall back to a full sort.
    """

    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_dead: int = 0
    frontier_peak: int = 0
    merge_forks: int = 0
    budget_checks: int = 0
    budget_candidate_pressure: float = 0.0
    budget_time_pressure: float = 0.0
    engine: str = ""
    prune_presorted: int = 0
    prune_sorts: int = 0
    phase_seconds: Dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    nodes: List[NodeStats] = field(default_factory=list)

    # -- collection hooks (called by the engine) ---------------------------

    def open_node(self, name: str) -> NodeStats:
        node = NodeStats(name=name)
        self.nodes.append(node)
        return node

    def add_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    # -- derived views -----------------------------------------------------

    @property
    def candidates_kept(self) -> int:
        """Candidates that survived everything (generated - pruned - dead)."""
        return (
            self.candidates_generated
            - self.candidates_pruned
            - self.candidates_dead
        )

    @property
    def prune_rate(self) -> float:
        """Fraction of generated candidates removed by pruning passes."""
        if self.candidates_generated == 0:
            return 0.0
        return self.candidates_pruned / self.candidates_generated

    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def merge_with(self, other: "EngineStats") -> None:
        """Fold another run's telemetry into this one (batch aggregation).

        Per-node breakdowns are concatenated; ``frontier_peak`` takes the
        max (it is a peak, not a sum).
        """
        self.candidates_generated += other.candidates_generated
        self.candidates_pruned += other.candidates_pruned
        self.candidates_dead += other.candidates_dead
        self.frontier_peak = max(self.frontier_peak, other.frontier_peak)
        self.merge_forks += other.merge_forks
        self.prune_presorted += other.prune_presorted
        self.prune_sorts += other.prune_sorts
        if not self.engine:
            self.engine = other.engine
        elif other.engine and other.engine != self.engine:
            self.engine = "mixed"
        self.budget_checks += other.budget_checks
        self.budget_candidate_pressure = max(
            self.budget_candidate_pressure, other.budget_candidate_pressure
        )
        self.budget_time_pressure = max(
            self.budget_time_pressure, other.budget_time_pressure
        )
        for phase, seconds in other.phase_seconds.items():
            self.add_phase(phase, seconds)
        self.nodes.extend(other.nodes)

    def describe(self) -> str:
        engine = f" [{self.engine}]" if self.engine else ""
        lines = [
            f"candidates{engine}: {self.candidates_generated} generated, "
            f"{self.candidates_pruned} pruned "
            f"({100.0 * self.prune_rate:.1f}%), "
            f"{self.candidates_dead} noise-dead, "
            f"{self.candidates_kept} kept",
            f"frontier peak: {self.frontier_peak}   "
            f"merge forks: {self.merge_forks}",
        ]
        if self.prune_presorted or self.prune_sorts:
            lines.append(
                f"timing prunes: {self.prune_presorted} presorted "
                f"(sort skipped), {self.prune_sorts} sorted"
            )
        if self.budget_checks:
            lines.append(
                f"budget: {self.budget_checks} checks, peak pressure "
                f"{100.0 * self.budget_candidate_pressure:.1f}% of "
                "candidate budget, "
                f"{100.0 * self.budget_time_pressure:.1f}% of deadline"
            )
        timed = {p: s for p, s in self.phase_seconds.items() if s > 0.0}
        if timed:
            total = self.total_seconds()
            shares = "  ".join(
                f"{phase}: {seconds * 1e3:.2f} ms"
                f" ({100.0 * seconds / total:.0f}%)"
                for phase, seconds in sorted(
                    timed.items(), key=lambda kv: -kv[1]
                )
            )
            lines.append(f"phase wall-clock: {shares}")
        return "\n".join(lines)
