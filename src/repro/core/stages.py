"""Stage decomposition of a buffered tree.

Assigning buffers to a tree "induces |M|+1 nets" (paper Section II): each
restoring gate (the source driver or an inserted buffer) drives a maximal
buffer-free subtree.  The detailed noise verifier simulates each stage as
its own linear circuit, and several analyses reason per stage, so the
decomposition lives here as a reusable structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..tree.topology import Node, RoutingTree, Wire

BufferMap = Mapping[str, BufferType]


@dataclass(frozen=True)
class StageSink:
    """A leaf of a stage: a real sink pin or an inserted buffer's input.

    ``capacitance`` is the load the stage sees at this leaf — the pin
    capacitance for a real sink, the buffer's input capacitance otherwise.
    """

    node: Node
    noise_margin: float
    is_buffer_input: bool
    capacitance: float = 0.0


@dataclass(frozen=True)
class Stage:
    """One restoring gate and the buffer-free subtree it drives.

    ``root`` is the gate's output node (the tree source or a buffered
    node); ``resistance`` its output resistance.  ``wires`` are in
    parent-before-child order.
    """

    root: Node
    resistance: float
    gate_name: str
    wires: Tuple[Wire, ...]
    sinks: Tuple[StageSink, ...]

    @property
    def is_source_stage(self) -> bool:
        return self.root.is_source

    def wire_count(self) -> int:
        return len(self.wires)


def decompose_stages(
    tree: RoutingTree,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> List[Stage]:
    """Split ``tree`` into its |M|+1 stages, source stage first.

    ``driver_resistance`` defaults to ``tree.driver.resistance``.
    """
    buffers = buffers or {}
    for name in buffers:
        if not tree.node(name).is_internal:
            raise AnalysisError(f"buffer on non-internal node {name!r}")
    if driver_resistance is None:
        if tree.driver is None:
            raise AnalysisError(
                f"tree {tree.name!r} has no driver; pass driver_resistance"
            )
        driver_resistance = tree.driver.resistance

    roots: List[Tuple[Node, float, str]] = [
        (tree.source, driver_resistance,
         tree.driver.name if tree.driver else "driver")
    ]
    for name, buffer in sorted(buffers.items()):
        roots.append((tree.node(name), buffer.resistance, buffer.name))

    stages: List[Stage] = []
    for root, resistance, gate_name in roots:
        wires: List[Wire] = []
        sinks: List[StageSink] = []
        stack = list(root.children)
        while stack:
            node = stack.pop()
            wire = node.parent_wire
            assert wire is not None
            wires.append(wire)
            if node.name in buffers and node is not root:
                sinks.append(
                    StageSink(
                        node=node,
                        noise_margin=buffers[node.name].noise_margin,
                        is_buffer_input=True,
                        capacitance=buffers[node.name].input_capacitance,
                    )
                )
                continue  # the subtree below belongs to the buffer's stage
            if node.is_sink:
                assert node.sink is not None
                sinks.append(
                    StageSink(
                        node=node,
                        noise_margin=node.sink.noise_margin,
                        is_buffer_input=False,
                        capacitance=node.sink.capacitance,
                    )
                )
            stack.extend(node.children)
        stages.append(
            Stage(
                root=root,
                resistance=resistance,
                gate_name=gate_name,
                wires=tuple(wires),
                sinks=tuple(sinks),
            )
        )
    return stages
