"""Closed-form noise-safe wire lengths (paper Section III-A).

**Theorem 1.** For a uniform wire with resistance ``r`` per meter and
aggressor-induced current ``i`` per meter, driven by a buffer with output
resistance ``Rb``, above a point with downstream current ``I`` and noise
slack ``NS``, the noise constraint

    Rb * (i*l + I)  +  (r*l) * (i*l/2 + I)  <=  NS

is a quadratic in the length ``l``.  The maximal safe length is

    l_max = [ -(r*I + Rb*i) + sqrt( (r*I + Rb*i)^2 + 2*r*i*(NS - Rb*I) ) ]
            / (r * i)

valid iff ``NS >= Rb * I`` (otherwise it is already too late to fix the
constraint by buffering above this point).  Corollaries implemented and
tested here:

* ``NS == Rb*I``  =>  ``l_max == 0``;
* ``Rb == 0 and I == 0``  =>  ``l_max == sqrt(2*NS / (r*i))``;
* increasing ``Rb`` strictly decreases ``l_max`` (when ``i > 0``).

Equation (16) substitutes ``i = lambda * c * sigma``; equation (17) solves
for the aggressor separation distance when ``lambda = K / d``.

**Theorem 2.** A delay-optimal buffering can still violate noise: for any
fixed electrical parameters there is a noise margin small enough (eq. 19)
that the wire between two consecutive delay-placed gates is noisy.
:func:`uniform_wire_noise` gives the noise of such a wire, and
:func:`violating_margin_bound` the margin threshold of eq. 19.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InfeasibleError


def max_safe_length(
    driver_resistance: float,
    unit_resistance: float,
    unit_current: float,
    downstream_current: float,
    noise_slack: float,
) -> float:
    """Theorem 1: maximal wire length with no noise violation.

    Parameters are ``Rb`` (ohm), ``r`` (ohm/m), ``i`` (A/m), ``I`` (A) and
    ``NS`` (V).  Returns ``math.inf`` when the wire can be extended without
    bound (no resistance or no current anywhere).

    Raises
    ------
    InfeasibleError
        If ``NS < Rb * I`` — no buffer position on the wire satisfies the
        constraint; a buffer should have been inserted further downstream.
    """
    _check_nonneg(
        driver_resistance=driver_resistance,
        unit_resistance=unit_resistance,
        unit_current=unit_current,
        downstream_current=downstream_current,
    )
    r, i = unit_resistance, unit_current
    rb, big_i, ns = driver_resistance, downstream_current, noise_slack
    if ns < rb * big_i:
        raise InfeasibleError(
            f"noise slack {ns:.6g} V is below Rb*I = {rb * big_i:.6g} V; "
            "too late to satisfy the constraint on this wire"
        )
    quad = r * i  # coefficient of l^2 is quad/2
    lin = r * big_i + rb * i
    budget = ns - rb * big_i  # >= 0 here
    if quad == 0.0:
        if lin == 0.0:
            return math.inf
        return budget / lin
    discriminant = lin * lin + 2.0 * quad * budget
    return (-lin + math.sqrt(discriminant)) / quad


def max_safe_length_estimation(
    driver_resistance: float,
    unit_resistance: float,
    unit_capacitance: float,
    coupling_ratio: float,
    slope: float,
    downstream_current: float,
    noise_slack: float,
) -> float:
    """Equation (16): Theorem 1 with ``i = lambda * c * sigma`` substituted."""
    return max_safe_length(
        driver_resistance=driver_resistance,
        unit_resistance=unit_resistance,
        unit_current=coupling_ratio * unit_capacitance * slope,
        downstream_current=downstream_current,
        noise_slack=noise_slack,
    )


def unloaded_max_length(
    unit_resistance: float, unit_current: float, noise_margin: float
) -> float:
    """The driverless bound ``sqrt(2*NM / (r*i))`` from the Theorem 1 text.

    Useful as a quick noise-avoidance rule when driver properties are
    unknown or driver resistance is negligible against wire resistance.
    """
    return max_safe_length(0.0, unit_resistance, unit_current, 0.0, noise_margin)


def max_coupling_ratio(
    length: float,
    driver_resistance: float,
    unit_resistance: float,
    unit_capacitance: float,
    slope: float,
    downstream_current: float,
    noise_slack: float,
) -> float:
    """Largest coupling ratio ``lambda`` a wire of fixed length tolerates.

    Inverts eq. (16) for ``lambda``; the precursor to the separation
    distance of eq. (17).  Returns ``math.inf`` when any coupling is fine
    (no resistance in the path) and raises :class:`InfeasibleError` when
    even ``lambda = 0`` violates (resistive noise from downstream current
    alone exceeds the slack).
    """
    _check_nonneg(
        length=length,
        driver_resistance=driver_resistance,
        unit_resistance=unit_resistance,
        unit_capacitance=unit_capacitance,
        slope=slope,
        downstream_current=downstream_current,
    )
    rb, r, c = driver_resistance, unit_resistance, unit_capacitance
    big_i, ns, l = downstream_current, noise_slack, length
    base_noise = (rb + r * l) * big_i  # lambda-independent part
    if ns < base_noise:
        raise InfeasibleError(
            f"even with zero coupling the noise {base_noise:.6g} V exceeds "
            f"the slack {ns:.6g} V"
        )
    denom = c * slope * l * (rb + r * l / 2.0)
    if denom == 0.0:
        return math.inf
    return (ns - base_noise) / denom


def min_separation(
    coupling_constant: float,
    length: float,
    driver_resistance: float,
    unit_resistance: float,
    unit_capacitance: float,
    slope: float,
    downstream_current: float,
    noise_slack: float,
) -> float:
    """Equation (17): minimal aggressor separation distance.

    Models ``lambda = K / d`` (coupling inversely proportional to spacing,
    the paper's stated relation) and returns the smallest spacing ``d``
    keeping the wire noise-safe.  Returns 0 when any spacing works.
    """
    if coupling_constant < 0:
        raise ValueError(f"coupling_constant must be >= 0, got {coupling_constant}")
    lam = max_coupling_ratio(
        length,
        driver_resistance,
        unit_resistance,
        unit_capacitance,
        slope,
        downstream_current,
        noise_slack,
    )
    if math.isinf(lam) or coupling_constant == 0.0:
        return 0.0
    if lam == 0.0:
        raise InfeasibleError(
            "wire requires zero coupling; no finite separation suffices"
        )
    return coupling_constant / lam


def uniform_wire_noise(
    driver_resistance: float,
    unit_resistance: float,
    unit_current: float,
    length: float,
    downstream_current: float = 0.0,
) -> float:
    """Devgan noise at the far end of one uniform wire.

    ``Rb*(i*l + I) + r*l*(i*l/2 + I)`` — the left side of Theorem 1's
    constraint; also the quantity eq. (18) compares against the margin in
    the Theorem 2 construction.
    """
    _check_nonneg(
        driver_resistance=driver_resistance,
        unit_resistance=unit_resistance,
        unit_current=unit_current,
        length=length,
        downstream_current=downstream_current,
    )
    rb, r, i = driver_resistance, unit_resistance, unit_current
    l, big_i = length, downstream_current
    return rb * (i * l + big_i) + r * l * (i * l / 2.0 + big_i)


def violating_margin_bound(
    driver_resistance: float,
    unit_resistance: float,
    unit_current: float,
    length: float,
    downstream_current: float = 0.0,
) -> float:
    """Theorem 2 / eq. (19): margins strictly below this value are violated.

    Any sink (or gate input) with noise margin below the returned noise of
    the given delay-chosen wire fails, however the wire was timed — the
    existence proof that delay-only optimization is insufficient.
    """
    return uniform_wire_noise(
        driver_resistance, unit_resistance, unit_current, length, downstream_current
    )


@dataclass(frozen=True)
class SpacingPlan:
    """Buffer spacing plan for an infinitely long uniform line.

    ``first_span`` is the sink-adjacent span (uses the sink margin and
    load); ``repeat_span`` is the steady-state buffer-to-buffer span.
    Produced by :func:`uniform_line_spacing`; used by the figure benches to
    visualize Theorem 1 (the paper's Fig. 7 iterates exactly this).
    """

    first_span: float
    repeat_span: float


def uniform_line_spacing(
    buffer_resistance: float,
    buffer_margin: float,
    unit_resistance: float,
    unit_current: float,
    sink_margin: float,
) -> SpacingPlan:
    """Spans produced by iterating Theorem 1 along a uniform line.

    The first buffer goes ``l1 = max_safe_length(Rb, r, i, 0, NM_sink)``
    above the sink; every subsequent buffer ``l* = max_safe_length(Rb, r,
    i, 0, NM_b)`` above the previous one (downstream current resets to
    zero at each restoring stage).
    """
    first = max_safe_length(
        buffer_resistance, unit_resistance, unit_current, 0.0, sink_margin
    )
    repeat = max_safe_length(
        buffer_resistance, unit_resistance, unit_current, 0.0, buffer_margin
    )
    return SpacingPlan(first_span=first, repeat_span=repeat)


def _check_nonneg(**values: float) -> None:
    for name, value in values.items():
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
