"""Noise-aware wire segmentation (the paper's footnote-3 suggestion).

Uniform segmentation trades solution quality against DP size blindly; the
paper notes "it may be appropriate to develop a new wire segmenting
algorithm for the particular formulations we address".  This module does
exactly that for the noise-constrained formulations: it seeds candidate
buffer sites at the *exact maximal Theorem-1 positions* computed by
Algorithm 2 (plus, optionally, a coarse uniform grid for timing
flexibility).  A noise-feasible solution is then representable with very
few extra nodes — BuffOpt on the result reaches the continuous minimum
buffer count at a fraction of the uniform-grid DP cost, which
``benchmarks/bench_ablations.py`` quantifies.
"""

from __future__ import annotations

from typing import Optional, Union

from ..library.buffers import BufferLibrary, BufferType
from ..noise.coupling import CouplingModel
from ..tree.segmenting import segment_tree
from ..tree.topology import RoutingTree
from .noise_multi import insert_buffers_multi_sink
from .solution import ContinuousSolution


def noise_aware_segmentation(
    tree: RoutingTree,
    buffers: Union[BufferType, BufferLibrary],
    coupling: CouplingModel,
    driver_resistance: Optional[float] = None,
    uniform_extra: Optional[float] = None,
) -> RoutingTree:
    """Segment ``tree`` with sites at the Algorithm-2 optimal positions.

    Runs the continuous noise-avoidance algorithm, realizes its buffer
    positions as *empty* feasible internal nodes (the buffers themselves
    are not kept — they are DP candidates now), and optionally overlays a
    coarse uniform segmentation of ``uniform_extra`` meters for
    delay-driven placements away from the noise-critical spots.

    Raises :class:`~repro.errors.InfeasibleError` when no noise-feasible
    buffering exists at all (then no segmentation can help either).

    Note: the sites are *tight* for the library's smallest-resistance
    buffer.  When that buffer is inverting and the downstream DP enforces
    polarity, a site may be (just) infeasible for the non-inverting
    alternatives; pass ``buffers=library.non_inverting()`` for
    polarity-robust sites at a slightly higher count.
    """
    solution = insert_buffers_multi_sink(
        tree, buffers, coupling, driver_resistance=driver_resistance
    )
    sited, _ = ContinuousSolution(tree, solution.placements).realize()
    if uniform_extra is not None:
        sited = segment_tree(sited, uniform_extra)
    return sited
