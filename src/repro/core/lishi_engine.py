"""The Li–Shi engine: the genuine O(bn²) recurrence (``engine="lishi"``).

Where :mod:`repro.core.fast_engine` deliberately *rejected* the classic
Li & Shi shortcuts to stay bit-identical to the reference engine, this
module embraces them — and therefore trades bit-identity for *semantic*
equivalence (same selected outcomes within float tolerance,
certificate-clean, oracle-optimal; see ``tests/core/equivalence.py``
and ``docs/algorithms.md`` §9):

* **lazy wire offsets** — a wire of resistance ``R``, capacitance ``Cw``
  and noise current ``Iw`` updates a whole frontier in O(1) by folding
  into five per-frontier offsets ``(r, dq, dc, di, dns)`` instead of
  rewriting every candidate tuple.  A stored candidate
  ``(C0, q0, I0, NS0)`` decodes to actual values::

      C  = C0 + dc            q  = q0 - r*C0 - dq
      I  = I0 + di            NS = NS0 - r*I0 - dns

  and the wire update is ``dq += R*(Cw/2 + dc); dns += R*(Iw/2 + di);
  r += R; dc += Cw; di += Iw``.  The offsets re-associate the float
  sums, which is exactly the last-ulp drift the fast engine refused —
  hence the tolerance-based equivalence contract.  Power-active runs
  (:attr:`~repro.core.dp.DPOptions.power`) add a sixth offset ``dpw``:
  wire power is uniform across a frontier, so it too folds in O(1)
  (``dpw += wire_power(Cw)``) and a stored power ``P0`` decodes to
  ``P0 + dpw``.  Power also disables the eager-eviction/lone-merge/hull
  machinery below — with power as a third frontier axis a
  (load, slack)-dominated candidate may still be Pareto-optimal — so
  power runs use cross-product merges, donor-frontier buffering, and a
  materializing 3D prune instead.

* **single-sink merges in O(log F)** — merging a frontier with a
  one-candidate chainless group (every sink merge on a trunk topology)
  does not rebuild the frontier.  The merged slack is
  ``min(q_a, q_s)``: below the crossover the frontier passes through
  untouched (loads and currents shift by the *shared* sink constants,
  which fold into ``dc``/``di``), at the crossover one clamped
  candidate is materialized, and everything beyond it is dominated by
  the clamp and truncated.  One binary search, one new tuple, O(1)
  offset updates — the dominated merge outputs the eager engines build
  and then prune are never constructed at all (this is also why the
  engine's ``candidates_generated`` runs far below the fast engine's).

* **range-search buffering on a wire-invariant hull** — the per-buffer
  argmax of ``q − R·C`` equals the argmax of ``q0 − (r + R)·C0`` in
  stored coordinates, so the upper concave hull of the *stored*
  ``(C0, q0)`` points answers every buffer query at every later node:
  wires only shift the query slope.  The hull is maintained
  incrementally (buffered insertions and merge clamps are O(log H)
  inserts, merge truncation is a suffix cut) and queried with one
  monotone pointer walk per node over the resistance-sorted buffer
  menu: O(H + b) instead of O(b·F) scans.  Pruned candidates may leave
  stale hull references, but a candidate evicted at accumulated
  resistance ``r`` can never *strictly* win a query at slope ≥ ``r``
  (its dominator, or its dominator's replacement, is always present
  and at least ties), so stale entries are harmless: at worst they
  resolve an exact-value tie to a different equally-good source.

The lazy/merge/hull machinery runs exactly where the complexity lives:
timing-pruned delay-mode frontiers (``prune="timing"``,
``noise_aware=False``).  Noise-aware runs keep the reference's
concatenate/wire/prune order — the Step-5 dead-drop both collapses
their frontiers (so there is nothing to win) and makes eager eviction
unsound (a (C, q)-dominated candidate may outlive its dominator when
the next wire kills the dominator on noise) — and the
``prune="pareto"`` ablation and Lillis wire sizing fall back to
materialized fast-engine-shaped passes.

Candidate representation, chain cells, phase-method names
(``_merge_children`` / ``_insert_buffers`` / ``_apply_wire`` /
``_prune`` for :class:`~repro.obs.PhaseProfiler`), counters, budget
charging and the visit loop all mirror the fast engine.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from heapq import merge as _heap_merge
from operator import itemgetter
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..library.buffers import BufferLibrary
from ..library.cells import DriverCell
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree, Wire
from .dp import DPOptions, DPOutcome, DPResult, Insertion
from .fast_engine import _Cand, _chain_concat, _chain_payloads
from .stats import EngineStats
from .wire_sizing import WireChoice

_INF = math.inf
_LOAD = itemgetter(0)
_Key = Tuple[int, int]


class _Frontier:
    """A group dict plus the five lazy wire offsets it is stored under.

    ``groups`` maps ``(polarity, count)`` keys to load-sorted candidate
    lists exactly like the other engines; the offsets apply uniformly to
    every candidate of every group (they encode the wires applied since
    the frontier was last materialized, and every candidate of a node's
    frontier has seen the same wires).  ``hulls`` caches the per-group
    upper hull of the stored ``(C0, q0)`` points (delay-mode timing runs
    only); ``meta`` caches per-group ``(max_z, r_ref, min I0)`` bounds
    (``max_z`` is the maximum of ``NS0 − r_ref·I0``) used to skip
    noise-slack clamping on single-sink merges — both are conservative
    caches: a missing entry is rebuilt lazily, and removals only loosen
    a stored bound in the safe direction.
    """

    __slots__ = (
        "groups", "hulls", "meta", "r", "dq", "dc", "di", "dns", "dpw",
    )

    def __init__(self, groups: Dict[_Key, List[_Cand]]):
        self.groups = groups
        self.hulls: Dict[_Key, List[_Cand]] = {}
        self.meta: Dict[_Key, Tuple[float, float, float]] = {}
        self.r = 0.0
        self.dq = 0.0
        self.dc = 0.0
        self.di = 0.0
        self.dns = 0.0
        # Lazy power offset: wire power is uniform across a node's
        # candidates (the segment switches however the subtree is
        # buffered), so it accumulates here in O(1) per wire and a
        # stored power P0 decodes to P0 + dpw.  Stays 0.0 on power-off
        # runs.
        self.dpw = 0.0

    def pending(self) -> bool:
        return bool(
            self.r or self.dq or self.dc or self.di or self.dns or self.dpw
        )


class LiShiEngine:
    """Drop-in sibling of the reference/fast engines (``engine="lishi"``).

    Construction, counters, telemetry and budget charging mirror
    :class:`~repro.core.fast_engine.FastEngine`; results are
    semantically equivalent, not bit-identical (module docstring).
    """

    def __init__(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        coupling: CouplingModel,
        options: DPOptions,
        driver: DriverCell,
    ):
        self.tree = tree
        self.library = library
        self.coupling = coupling
        self.options = options
        self.driver = driver
        self.generated = 0
        self.kept_peak = 0
        self.dead = 0
        self.merge_forks = 0
        self.prune_presorted = 0
        self.prune_sorts = 0
        self.stats: Optional[EngineStats] = (
            EngineStats(engine="lishi") if options.collect_stats else None
        )
        # (buffer, R, Cin, D, NM, inv) rows like the fast engine, plus the
        # same rows sorted by descending resistance for the hull walk.
        self._buffers = [
            (
                b,
                b.resistance,
                b.input_capacitance,
                b.intrinsic_delay,
                b.noise_margin,
                1 if b.inverting else 0,
            )
            for b in library
        ]
        self._buffers_desc = sorted(self._buffers, key=lambda row: -row[1])
        self.power = options.power
        # The lazy/merge/hull shortcuts are only reference-equivalent
        # when the prune is the (load, slack) frontier and nothing can
        # die of noise between eviction and the node's prune.  Power
        # adds a third frontier axis, under which eager (load, slack)
        # eviction discards candidates that trade slack for power — so
        # power-active runs keep every merge output and prune on the
        # full 3D frontier instead.
        self._evict = (
            options.prune == "timing"
            and not options.noise_aware
            and options.power is None
        )

    # -- visit loop ----------------------------------------------------------

    def run(self) -> DPResult:
        if self.stats is not None:
            return self._run_instrumented()
        budget = self.options.budget
        lists: Dict[str, _Frontier] = {}
        for node in self.tree.postorder():
            if node.is_sink:
                frontier = self._sink_base(node)
            else:
                frontier = self._merge_children(node, lists)
                self._insert_buffers(node, frontier)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                self._apply_wire(node.parent_wire, frontier)
            self._prune(frontier)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = frontier
        return self._finalize(lists[self.tree.source.name])

    def _run_instrumented(self) -> DPResult:
        """:meth:`run` with per-phase telemetry (same arithmetic)."""
        stats = self.stats
        assert stats is not None
        budget = self.options.budget
        lists: Dict[str, _Frontier] = {}
        for node in self.tree.postorder():
            record = stats.open_node(node.name)
            generated_before = self.generated
            dead_before = self.dead
            forks_before = self.merge_forks
            if node.is_sink:
                frontier = self._sink_base(node)
            else:
                start = perf_counter()
                frontier = self._merge_children(node, lists)
                stats.add_phase("merge", perf_counter() - start)
                start = perf_counter()
                self._insert_buffers(node, frontier)
                stats.add_phase("buffering", perf_counter() - start)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                start = perf_counter()
                self._apply_wire(node.parent_wire, frontier)
                stats.add_phase("wire", perf_counter() - start)
            start = perf_counter()
            dropped, surviving = self._prune(frontier)
            stats.add_phase("prune", perf_counter() - start)
            record.generated = self.generated - generated_before
            record.dead = self.dead - dead_before
            record.merge_forks = self.merge_forks - forks_before
            record.pruned = dropped
            record.frontier = surviving
            stats.candidates_pruned += dropped
            stats.frontier_peak = max(stats.frontier_peak, surviving)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = frontier
        start = perf_counter()
        result = self._finalize(lists[self.tree.source.name])
        stats.add_phase("finalize", perf_counter() - start)
        stats.candidates_generated = self.generated
        stats.candidates_dead = self.dead
        stats.merge_forks = self.merge_forks
        stats.prune_presorted = self.prune_presorted
        stats.prune_sorts = self.prune_sorts
        if budget is not None:
            stats.budget_checks = budget.checks
            stats.budget_candidate_pressure = budget.candidate_pressure
            stats.budget_time_pressure = budget.time_pressure
        return result

    # -- phases --------------------------------------------------------------

    def _sink_base(self, node: Node) -> _Frontier:
        assert node.sink is not None
        self.generated += 1
        return _Frontier(
            {
                (0, 0): [
                    (
                        node.sink.capacitance,
                        node.sink.required_arrival,
                        0.0,
                        node.sink.noise_margin,
                        None,
                        None,
                        0.0,
                    )
                ]
            }
        )

    def _merge_children(
        self, node: Node, lists: Dict[str, _Frontier]
    ) -> _Frontier:
        children = node.children
        assert children, f"internal node {node.name!r} without children"
        # A single child passes its frontier through offsets-and-all;
        # only true merges touch candidates.
        frontier = lists[children[0].name]
        for child in children[1:]:
            frontier = self._merge_pair(frontier, lists[child.name])
        return frontier

    @staticmethod
    def _lone_chainless(frontier: _Frontier) -> Optional[_Cand]:
        """The frontier's only candidate, if it is one chainless candidate.

        Chainless (no insertions, no wire choices) means merging it onto
        another candidate leaves that candidate's chains untouched, and
        its group key is necessarily ``(0, 0)`` — the shape of every
        sink, which is what makes the O(log F) merge path hot.
        """
        groups = frontier.groups
        if len(groups) != 1:
            return None
        candidates = groups.get((0, 0))
        if candidates is None or len(candidates) != 1:
            return None
        cand = candidates[0]
        if cand[4] is not None or cand[5] is not None:
            return None
        return cand

    def _clean(self, frontier: _Frontier) -> None:
        """Drop entries that became dominated since the last prune.

        A wire leaves stored tuples untouched but tilts the decode by
        its resistance, so an entry whose slack lead over its left
        neighbour is smaller than ``R * (load gap)`` silently becomes
        dominated between prunes.  Both merge paths walk groups in
        *decoded slack order* (binary search in :meth:`_merge_lone`,
        the two-pointer in :meth:`_merge_general`), so they require
        strictly increasing slack; this pass restores it in place.  It
        only ever removes dominated entries, and hull references to
        those keep tying the survivors (see module docstring).
        """
        r = frontier.r
        dq = frontier.dq
        for candidates in frontier.groups.values():
            if len(candidates) < 2:
                continue
            best = -_INF
            last_load = None
            w = 0
            for c in candidates:
                q = c[1] - r * c[0] - dq
                if q <= best:
                    continue
                if c[0] == last_load:
                    candidates[w - 1] = c
                else:
                    candidates[w] = c
                    w += 1
                    last_load = c[0]
                best = q
            if w != len(candidates):
                del candidates[w:]

    def _merge_pair(self, left: _Frontier, right: _Frontier) -> _Frontier:
        if self.power is not None:
            return self._merge_cross(left, right)
        if self._evict:
            self._clean(left)
            self._clean(right)
            lone = self._lone_chainless(right)
            if lone is not None:
                return self._merge_lone(left, lone, right)
            lone = self._lone_chainless(left)
            if lone is not None:
                return self._merge_lone(right, lone, left)
        return self._merge_general(left, right)

    def _merge_cross(self, left: _Frontier, right: _Frontier) -> _Frontier:
        """Full |L|x|R| merge for power-active runs (zero-offset output).

        The staircase walk of :meth:`_merge_general` pairs each
        candidate with the single partner whose slack binds — exact for
        a 2D (load, slack) frontier, lossy once power is a third axis
        (the optimal partner may trade slack for power).  Every pairing
        is materialized out of both offset frames; the node's 3D prune
        keeps the frontier.
        """
        enforce = self.options.enforce_polarity
        track = self.options.track_counts
        max_buffers = self.options.max_buffers
        lr, ldq, ldc, ldi, ldns, ldpw = (
            left.r, left.dq, left.dc, left.di, left.dns, left.dpw,
        )
        rr, rdq, rdc, rdi, rdns, rdpw = (
            right.r, right.dq, right.dc, right.di, right.dns, right.dpw,
        )
        groups: Dict[_Key, List[_Cand]] = {}
        made = 0
        for (pol_l, count_l), list_l in left.groups.items():
            for (pol_r, count_r), list_r in right.groups.items():
                if enforce and pol_l != pol_r:
                    continue
                count = count_l + count_r
                if max_buffers is not None and track and count > max_buffers:
                    continue
                key = (pol_l if enforce else 0, count if track else 0)
                self.merge_forks += 1
                out = groups.setdefault(key, [])
                append = out.append
                rows_r = [
                    (
                        b[0] + rdc,
                        b[1] - rr * b[0] - rdq,
                        b[2] + rdi,
                        b[3] - rr * b[2] - rdns,
                        b[4],
                        b[5],
                        b[6] + rdpw,
                    )
                    for b in list_r
                ]
                for a in list_l:
                    a_load = a[0] + ldc
                    a_q = a[1] - lr * a[0] - ldq
                    a_i = a[2] + ldi
                    a_ns = a[3] - lr * a[2] - ldns
                    a_chain = a[4]
                    a_wires = a[5]
                    a_pw = a[6] + ldpw
                    for b in rows_r:
                        b_q = b[1]
                        b_ns = b[3]
                        append(
                            (
                                a_load + b[0],
                                a_q if a_q < b_q else b_q,
                                a_i + b[2],
                                a_ns if a_ns < b_ns else b_ns,
                                _chain_concat(a_chain, b[4]),
                                _chain_concat(a_wires, b[5]),
                                a_pw + b[6],
                            )
                        )
                        made += 1
        self.generated += made
        return _Frontier(groups)

    def _merge_lone(
        self, main: _Frontier, lone: _Cand, lone_frontier: _Frontier
    ) -> _Frontier:
        """Merge one chainless candidate into ``main`` without a rebuild.

        The merged slack is ``min(q_a, q_lone)`` over a slack-sorted
        frontier: the prefix strictly below ``q_lone`` passes through
        (its loads/currents shift by the lone candidate's, which fold
        into the shared ``dc``/``di`` offsets), the first candidate at
        or above the crossover is clamped to ``q_lone``, and everything
        after it is dominated by the clamp — the eager engines build
        and then prune those outputs; this path never constructs them.
        """
        s_load = lone[0] + lone_frontier.dc
        s_q = (
            lone[1] - lone_frontier.r * lone[0] - lone_frontier.dq
        )
        s_current = lone[2] + lone_frontier.di
        s_ns = (
            lone[3] - lone_frontier.r * lone[2] - lone_frontier.dns
        )
        enforce = self.options.enforce_polarity
        r = main.r
        dq = main.dq
        dns = main.dns
        groups = main.groups
        hulls = main.hulls
        meta = main.meta
        for key in list(groups):
            if enforce and key[0] != 0:
                # Polarity mismatch with the lone candidate: no merge
                # output, exactly as the two-sided merge would gate.
                del groups[key]
                hulls.pop(key, None)
                meta.pop(key, None)
                continue
            candidates = groups[key]
            self.merge_forks += 1
            # Clamp every NS at the lone candidate's; skipped when the
            # group's noise-slack bound proves it cannot bind.  The
            # bound is ``(max_z, r_ref, min_i0)`` with ``max_z`` the
            # maximum of ``NS0 − r_ref·I0`` over the group: every
            # actual NS at a later ``(r', dns')`` is at most
            # ``max_z − (r' − r_ref)·min_i0 − dns'``, and anchoring at
            # a recent ``r_ref`` keeps the cross-candidate slack tiny
            # (the naive max-NS0/min-I0 pairing fires spuriously).
            bounds = meta.get(key)
            if bounds is None:
                max_z = -_INF
                min_i = _INF
                for c in candidates:
                    z = c[3] - r * c[2]
                    if z > max_z:
                        max_z = z
                    if c[2] < min_i:
                        min_i = c[2]
                bounds = (max_z, r, min_i)
                meta[key] = bounds
            if s_ns < bounds[0] - (r - bounds[1]) * bounds[2] - dns:
                cap = s_ns + dns
                max_z = -_INF
                min_i = _INF
                new: List[_Cand] = []
                append = new.append
                for c in candidates:
                    ns0 = c[3]
                    lim = cap + r * c[2]
                    if ns0 > lim:
                        ns0 = lim
                        c = (c[0], c[1], c[2], ns0, c[4], c[5], c[6])
                    z = ns0 - r * c[2]
                    if z > max_z:
                        max_z = z
                    if c[2] < min_i:
                        min_i = c[2]
                    append(c)
                candidates = new
                groups[key] = candidates
                meta[key] = (max_z, r, min_i)
                # Hull entries now reference superseded tuples, but with
                # identical (C0, q0) they can only tie the live ones and
                # carry the same chains — harmless (module docstring).
            # Crossover: first index with decoded slack >= s_q.
            lo = 0
            hi = len(candidates)
            while lo < hi:
                mid = (lo + hi) // 2
                c = candidates[mid]
                if c[1] - r * c[0] - dq < s_q:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(candidates):
                a = candidates[lo]
                a_ns = a[3] - r * a[2] - dns
                ns = a_ns if a_ns < s_ns else s_ns
                clamp = (
                    a[0],
                    s_q + r * a[0] + dq,
                    a[2],
                    ns + r * a[2] + dns,
                    a[4],
                    a[5],
                    a[6] + lone[6],
                )
                del candidates[lo:]
                candidates.append(clamp)
                self.generated += 1
                hull = hulls.get(key)
                if hull is not None:
                    cut = bisect_left(hull, clamp[0], key=_LOAD)
                    del hull[cut:]
                    self._hull_insert(hull, clamp)
                bounds = meta.get(key)
                if bounds is not None:
                    z = clamp[3] - bounds[1] * clamp[2]
                    meta[key] = (
                        z if z > bounds[0] else bounds[0],
                        bounds[1],
                        clamp[2] if clamp[2] < bounds[2] else bounds[2],
                    )
        main.dc += s_load
        main.di += s_current
        return main

    def _merge_general(self, left: _Frontier, right: _Frontier) -> _Frontier:
        enforce = self.options.enforce_polarity
        track = self.options.track_counts
        max_buffers = self.options.max_buffers
        evict = self._evict
        lr, ldq, ldc, ldi, ldns = left.r, left.dq, left.dc, left.di, left.dns
        rr, rdq, rdc, rdi, rdns = (
            right.r, right.dq, right.dc, right.di, right.dns,
        )
        ldpw = left.dpw
        rdpw = right.dpw
        # Several (left key, right key) pairs can land on the same output
        # key (count splits, polarity-free mode); each pair yields one
        # load-sorted run, combined per key afterwards.
        runs: Dict[_Key, List[List[_Cand]]] = {}
        made = 0
        for (pol_l, count_l), list_l in left.groups.items():
            n_l = len(list_l)
            for (pol_r, count_r), list_r in right.groups.items():
                if enforce and pol_l != pol_r:
                    continue
                count = count_l + count_r
                if max_buffers is not None and track and count > max_buffers:
                    continue
                key = (pol_l if enforce else 0, count if track else 0)
                self.merge_forks += 1
                n_r = len(list_r)
                out: List[_Cand] = []
                append = out.append
                best = -_INF
                last_load = None
                i = j = 0
                a = list_l[0]
                a_load = a[0] + ldc
                a_q = a[1] - lr * a[0] - ldq
                b = list_r[0]
                b_load = b[0] + rdc
                b_q = b[1] - rr * b[0] - rdq
                # Van Ginneken's |L|+|R| merge, materializing each side's
                # actual values as its pointer advances.  With eviction
                # on, dominated outputs are skipped *before* the tuple
                # (and chain concatenation) is built.
                while True:
                    q = a_q if a_q < b_q else b_q
                    load = a_load + b_load
                    if not evict or q > best:
                        a_ns = a[3] - lr * a[2] - ldns
                        b_ns = b[3] - rr * b[2] - rdns
                        cand = (
                            load,
                            q,
                            (a[2] + ldi) + (b[2] + rdi),
                            a_ns if a_ns < b_ns else b_ns,
                            _chain_concat(a[4], b[4]),
                            _chain_concat(a[5], b[5]),
                            (a[6] + ldpw) + (b[6] + rdpw),
                        )
                        if evict and load == last_load:
                            out[-1] = cand
                        else:
                            append(cand)
                        made += 1
                        best = q
                        last_load = load
                    if a_q < b_q:
                        i += 1
                        if i == n_l:
                            break
                        a = list_l[i]
                        a_load = a[0] + ldc
                        a_q = a[1] - lr * a[0] - ldq
                    elif b_q < a_q:
                        j += 1
                        if j == n_r:
                            break
                        b = list_r[j]
                        b_load = b[0] + rdc
                        b_q = b[1] - rr * b[0] - rdq
                    else:
                        i += 1
                        j += 1
                        if i == n_l or j == n_r:
                            break
                        a = list_l[i]
                        a_load = a[0] + ldc
                        a_q = a[1] - lr * a[0] - ldq
                        b = list_r[j]
                        b_load = b[0] + rdc
                        b_q = b[1] - rr * b[0] - rdq
                runs.setdefault(key, []).append(out)
        self.generated += made
        groups: Dict[_Key, List[_Cand]] = {}
        for key, run_list in runs.items():
            if len(run_list) == 1:
                groups[key] = run_list[0]
            elif evict:
                groups[key] = self._combine_runs(run_list)
            else:
                # Concatenated like the reference; the node's prune puts
                # the list back in order (sort fallback).
                groups[key] = [cand for run in run_list for cand in run]
        return _Frontier(groups)

    @staticmethod
    def _combine_runs(run_list: List[List[_Cand]]) -> List[_Cand]:
        """k-way merge same-key runs, keeping the (load, slack) frontier.

        Runs come from :meth:`_merge_general` materialization, so they
        are in the zero-offset frame: stored values are actual values.
        """
        out: List[_Cand] = []
        append = out.append
        best = -_INF
        for cand in _heap_merge(*run_list, key=_LOAD):
            q = cand[1]
            if q <= best:
                continue
            if out and out[-1][0] == cand[0]:
                out[-1] = cand
            else:
                append(cand)
            best = q
        return out

    # -- hull maintenance ----------------------------------------------------

    @staticmethod
    def _build_hull(candidates: List[_Cand]) -> List[_Cand]:
        """Upper concave hull of the stored (C0, q0) points.

        The input is stored-load sorted (not necessarily a frontier —
        freshly insorted buffered candidates are welcome); dominated
        points are skipped, so hull slacks strictly increase and hull
        slopes strictly decrease.
        """
        hull: List[_Cand] = []
        for cand in candidates:
            x = cand[0]
            y = cand[1]
            if hull:
                last = hull[-1]
                if y <= last[1]:
                    # x >= last's load: dominated for every slope > 0.
                    continue
                if last[0] == x:
                    hull.pop()
            while len(hull) >= 2:
                c1 = hull[-1]
                c2 = hull[-2]
                if (y - c1[1]) * (c1[0] - c2[0]) >= (c1[1] - c2[1]) * (
                    x - c1[0]
                ):
                    hull.pop()
                else:
                    break
            hull.append(cand)
        return hull

    @staticmethod
    def _hull_insert(hull: List[_Cand], cand: _Cand) -> None:
        """Insert one point into the hull, repairing both sides."""
        x = cand[0]
        y = cand[1]
        pos = bisect_left(hull, x, key=_LOAD)
        if pos > 0 and hull[pos - 1][1] >= y:
            return  # a lighter-or-equal point with better slack wins all slopes
        if 0 < pos < len(hull):
            c1 = hull[pos - 1]
            c2 = hull[pos]
            if (y - c1[1]) * (c2[0] - c1[0]) <= (c2[1] - c1[1]) * (
                x - c1[0]
            ):
                return  # on/below the hull: never a strict winner
        # Heavier points with no better slack lose every slope to cand.
        while pos < len(hull) and hull[pos][1] <= y:
            del hull[pos]
        # Concavity repair rightward then leftward.  Rightward, the next
        # vertex dies when it sits on/below the cand->next-next chord:
        # slope(cand->c1) <= slope(cand->c2).
        while pos + 1 < len(hull):
            c1 = hull[pos]
            c2 = hull[pos + 1]
            if (c1[1] - y) * (c2[0] - x) <= (c2[1] - y) * (c1[0] - x):
                del hull[pos]
            else:
                break
        while pos >= 2:
            c1 = hull[pos - 1]
            c0 = hull[pos - 2]
            if (c1[1] - c0[1]) * (x - c1[0]) <= (y - c1[1]) * (
                c1[0] - c0[0]
            ):
                del hull[pos - 1]
                pos -= 1
            else:
                break
        hull.insert(pos, cand)

    # -- buffering -----------------------------------------------------------

    def _insert_buffers(self, node: Node, frontier: _Frontier) -> None:
        if not node.feasible or node.is_source:
            return
        if self._evict:
            self._insert_buffers_hull(node, frontier)
        else:
            self._insert_buffers_scan(node, frontier)

    def _insert_buffers_hull(self, node: Node, frontier: _Frontier) -> None:
        """Delay-mode buffering: hull queries plus sorted insertion.

        In stored coordinates the argmax of ``q − R·C`` is the argmax of
        ``q0 − (r + R)·C0``; one pointer walks the hull as the menu's
        resistance descends, so each group answers all b queries in
        O(H + b) instead of O(b·F).
        """
        options = self.options
        track = options.track_counts
        max_buffers = options.max_buffers
        enforce = options.enforce_polarity
        node_name = node.name
        prices = options.site_prices
        # Uniform per node: the hull walk's argmax of q - R*C is
        # price-independent, so only the stored buffered slack shifts.
        penalty = prices.get(node_name, 0.0) if prices else 0.0
        groups = frontier.groups
        hulls = frontier.hulls
        meta = frontier.meta
        r = frontier.r
        dq = frontier.dq
        dc = frontier.dc
        di = frontier.di
        dns = frontier.dns
        buffers_desc = self._buffers_desc
        additions: List[Tuple[_Key, _Cand]] = []
        add = additions.append
        for (polarity, group_count), candidates in groups.items():
            if track and max_buffers is not None and group_count + 1 > max_buffers:
                continue
            key = (polarity, group_count)
            hull = hulls.get(key)
            if hull is None:
                hull = self._build_hull(candidates)
                hulls[key] = hull
            k = 0
            top = len(hull) - 1
            h = hull[0]
            for row in buffers_desc:
                resistance = row[1]
                slope = r + resistance
                while k < top:
                    nxt = hull[k + 1]
                    if nxt[1] - h[1] >= slope * (nxt[0] - h[0]):
                        k += 1
                        h = nxt
                    else:
                        break
                # Decoded best slack of q − R·C over the group:
                # (q0 − slope·C0) − dq − R·dc.
                best_slack = h[1] - slope * h[0] - dq - resistance * dc
                buffer, _, in_cap, intrinsic, noise_margin, inv = row
                chain = h[4]
                tail_count = chain[2] if chain is not None else 0
                new_count = (group_count if track else tail_count) + 1
                # Stored pre-distorted into the shared offset frame so
                # decoding recovers (in_cap, best_slack − intrinsic, 0,
                # noise_margin) exactly.
                stored_load = in_cap - dc
                add(
                    (
                        (
                            (polarity ^ inv) if enforce else 0,
                            new_count if track else 0,
                        ),
                        (
                            stored_load,
                            (best_slack - intrinsic - penalty)
                            + r * stored_load + dq,
                            -di,
                            noise_margin - r * di + dns,
                            ((node_name, buffer), chain, tail_count + 1),
                            h[5],
                            h[6],
                        ),
                    )
                )
        self.generated += len(additions)
        for key, cand in additions:
            group = groups.get(key)
            if group is None:
                groups[key] = [cand]
                hulls[key] = [cand]
                meta[key] = (cand[3] - r * cand[2], r, cand[2])
                continue
            insort(group, cand, key=_LOAD)
            hull = hulls.get(key)
            if hull is not None:
                self._hull_insert(hull, cand)
            bounds = meta.get(key)
            if bounds is not None:
                z = cand[3] - bounds[1] * cand[2]
                meta[key] = (
                    z if z > bounds[0] else bounds[0],
                    bounds[1],
                    cand[2] if cand[2] < bounds[2] else bounds[2],
                )

    def _insert_buffers_scan(self, node: Node, frontier: _Frontier) -> None:
        """Noise/pareto buffering: materialized rows, filtered scans.

        The fast engine's discipline with the offsets decoded into the
        row extraction; Step 5's limit (the largest gate resistance a
        candidate tolerates, NS/I) filters exactly as in the reference.
        """
        options = self.options
        track = options.track_counts
        noise_aware = options.noise_aware
        max_buffers = options.max_buffers
        enforce = options.enforce_polarity
        node_name = node.name
        prices = options.site_prices
        penalty = prices.get(node_name, 0.0) if prices else 0.0
        groups = frontier.groups
        r, dq, dc, di, dns = (
            frontier.r, frontier.dq, frontier.dc, frontier.di, frontier.dns,
        )
        power_model = self.power
        additions: List[Tuple[_Key, _Cand]] = []
        add = additions.append
        for (polarity, group_count), candidates in groups.items():
            if track and max_buffers is not None and group_count + 1 > max_buffers:
                continue
            loads = [c[0] + dc for c in candidates]
            slacks = [c[1] - r * c[0] - dq for c in candidates]
            limits = (
                [
                    ((c[3] - r * c[2] - dns) / i_act)
                    if (i_act := c[2] + di) > 0
                    else _INF
                    for c in candidates
                ]
                if noise_aware
                else None
            )
            indices = range(len(candidates))
            for row in self._buffers:
                buffer, resistance, in_cap, intrinsic, noise_margin, inv = row
                if power_model is None:
                    best_slack = -_INF
                    best_idx = -1
                    if limits is None:
                        for idx in indices:
                            s = slacks[idx] - resistance * loads[idx]
                            if s > best_slack:
                                best_slack = s
                                best_idx = idx
                    else:
                        for idx in indices:
                            if limits[idx] < resistance:
                                continue  # Step 5: never noisy.
                            s = slacks[idx] - resistance * loads[idx]
                            if s > best_slack:
                                best_slack = s
                                best_idx = idx
                    if best_idx < 0:
                        continue
                    donors = [(best_slack, best_idx)]
                    buffer_power = 0.0
                else:
                    # Power-active: keep one buffered candidate per
                    # (drive-slack, power)-Pareto donor, as in the
                    # reference engine — the scalar argmax would
                    # discard donors that trade slack for power.  The
                    # shared dpw offset cancels across donors, so the
                    # stored power slot ranks them directly.
                    entries = []
                    for idx in indices:
                        if limits is not None and limits[idx] < resistance:
                            continue
                        entries.append(
                            (
                                slacks[idx] - resistance * loads[idx],
                                candidates[idx][6],
                                idx,
                            )
                        )
                    if not entries:
                        continue
                    entries.sort(key=lambda entry: (entry[1], -entry[0]))
                    donors = []
                    best_seen = -_INF
                    for drive_slack, _, idx in entries:
                        if drive_slack > best_seen:
                            donors.append((drive_slack, idx))
                            best_seen = drive_slack
                    buffer_power = power_model.buffer_power(buffer)
                new_pol = (polarity ^ inv) if enforce else 0
                for best_slack, best_idx in donors:
                    cand = candidates[best_idx]
                    chain = cand[4]
                    tail_count = chain[2] if chain is not None else 0
                    new_count = (group_count if track else tail_count) + 1
                    stored_load = in_cap - dc
                    add(
                        (
                            (
                                new_pol,
                                new_count if track else 0,
                            ),
                            (
                                stored_load,
                                (best_slack - intrinsic - penalty)
                                + r * stored_load + dq,
                                -di,
                                noise_margin - r * di + dns,
                                ((node_name, buffer), chain, tail_count + 1),
                                cand[5],
                                cand[6] + buffer_power,
                            ),
                        )
                    )
                    self.generated += 1
        for key, cand in additions:
            group = groups.get(key)
            if group is None:
                groups[key] = [cand]
            else:
                group.append(cand)

    # -- wire / prune / finalize --------------------------------------------

    def _apply_wire(self, wire: Wire, frontier: _Frontier) -> None:
        sizing = self.options.sizing
        if sizing is None:
            # The whole point: O(1) per frontier, not O(frontier).  The
            # noise dead-drop the eager engines do here is deferred to
            # the prune scan that immediately follows every wire.  The
            # stored-coordinate hulls are untouched: a wire only shifts
            # the query slope.
            base_i = self.coupling.wire_current(wire)
            resistance = wire.resistance
            frontier.dq += resistance * (wire.capacitance / 2.0 + frontier.dc)
            frontier.dns += resistance * (base_i / 2.0 + frontier.di)
            frontier.r += resistance
            frontier.dc += wire.capacitance
            frontier.di += base_i
            if self.power is not None:
                # Wire power is uniform across the frontier — one lazy
                # offset update, the power twin of dc/di.
                frontier.dpw += self.power.wire_power(wire.capacitance)
            return
        # Lillis sizing forks each candidate per menu width — widths
        # differ per candidate afterwards, which a shared offset frame
        # cannot express.  Materialize, then fork eagerly (fast-engine
        # shape).
        self._rebase(frontier)
        base_i = self.coupling.wire_current(wire)
        noise_aware = self.options.noise_aware
        groups = frontier.groups
        variants = []
        for width in sizing.widths:
            scale = sizing.capacitance_scale(width)
            variants.append(
                (
                    None if width == 1.0 else width,
                    sizing.resistance(wire.resistance, width),
                    sizing.capacitance(wire.capacitance, width),
                    base_i * scale,
                )
            )
        parent_name = wire.parent.name
        child_name = wire.child.name
        for key, candidates in list(groups.items()):
            updated = []
            for cand in candidates:
                for width, resistance, capacitance, wire_i in variants:
                    noise_slack = cand[3] - resistance * (
                        wire_i / 2.0 + cand[2]
                    )
                    if noise_aware and noise_slack < 0.0:
                        self.dead += 1
                        continue
                    wire_chain = cand[5]
                    if width is not None:
                        wire_chain = (
                            (parent_name, child_name, width),
                            wire_chain,
                            (wire_chain[2] if wire_chain is not None else 0)
                            + 1,
                        )
                    updated.append(
                        (
                            cand[0] + capacitance,
                            cand[1]
                            - resistance * (capacitance / 2.0 + cand[0]),
                            cand[2] + wire_i,
                            noise_slack,
                            cand[4],
                            wire_chain,
                            # power + sizing is rejected by DPOptions,
                            # so this slot only ever carries 0.0 here.
                            cand[6],
                        )
                    )
                    self.generated += 1
            if updated:
                groups[key] = updated
            else:
                del groups[key]

    def _rebase(self, frontier: _Frontier) -> None:
        """Fold the pending offsets into the stored tuples (and zero them)."""
        frontier.hulls.clear()
        frontier.meta.clear()
        if not frontier.pending():
            return
        r, dq, dc, di, dns = (
            frontier.r, frontier.dq, frontier.dc, frontier.di, frontier.dns,
        )
        dpw = frontier.dpw
        groups = frontier.groups
        for key, candidates in groups.items():
            groups[key] = [
                (
                    c[0] + dc,
                    c[1] - r * c[0] - dq,
                    c[2] + di,
                    c[3] - r * c[2] - dns,
                    c[4],
                    c[5],
                    c[6] + dpw,
                )
                for c in candidates
            ]
        frontier.r = frontier.dq = frontier.dc = frontier.di = frontier.dns = 0.0
        frontier.dpw = 0.0

    def _prune(self, frontier: _Frontier) -> Tuple[int, int]:
        """Prune every group in place; return (dropped, surviving) counts.

        Noise-dead candidates (deferred from the wire) are dropped here,
        so a fully-dead group deletes its key exactly as the eager
        engines' wire pass would have.  Hulls are left alone: a pruned
        candidate's stale hull entry can only tie, never strictly win,
        a later query (module docstring).
        """
        groups = frontier.groups
        timing = self.options.prune == "timing"
        power_active = self.power is not None
        total = 0
        dropped = 0
        for key, candidates in list(groups.items()):
            if power_active:
                # Power joins the dominance key only here — power-off
                # runs never reach these branches, preserving bit
                # identity and the presorted-scan fast path.
                self.prune_sorts += 1
                kept = (
                    self._prune_power_timing(candidates, frontier)
                    if timing
                    else self._prune_pareto_power(candidates, frontier)
                )
            elif timing:
                kept = self._prune_timing(candidates, frontier)
            else:
                kept = self._prune_pareto(candidates, frontier)
            dropped += len(candidates) - len(kept)
            if kept:
                groups[key] = kept
            else:
                del groups[key]
                frontier.hulls.pop(key, None)
                frontier.meta.pop(key, None)
            total += len(kept)
        if total > self.kept_peak:
            self.kept_peak = total
        return dropped, total

    def _prune_timing(
        self, candidates: List[_Cand], frontier: _Frontier
    ) -> List[_Cand]:
        """The (load, slack) frontier under the offset frame, sort-free.

        The shared ``dq`` offset cancels in comparisons, so the scan
        ranks candidates by ``q0 − r·C0``; only the noise dead-check
        needs the absolute value (``dns`` included).  An instance method
        so the fuzz harness can plant a broken override.
        """
        r = frontier.r
        dns = frontier.dns
        noise_aware = self.options.noise_aware
        kept: List[_Cand] = []
        append = kept.append
        best = -_INF
        prev_load = -_INF
        prev_q = _INF
        dead = 0
        for cand in candidates:
            load = cand[0]
            q = cand[1] - r * load
            if load < prev_load or (load == prev_load and q > prev_q):
                break  # out of order: fall back to the sort below
            prev_load = load
            prev_q = q
            if noise_aware and (cand[3] - r * cand[2] - dns) < 0.0:
                dead += 1
                continue
            if q > best:
                append(cand)
                best = q
        else:
            self.prune_presorted += 1
            self.dead += dead
            return kept
        self.prune_sorts += 1
        kept = []
        append = kept.append
        best = -_INF
        dead = 0
        for cand in sorted(
            candidates, key=lambda c: (c[0], r * c[0] - c[1])
        ):
            if noise_aware and (cand[3] - r * cand[2] - dns) < 0.0:
                dead += 1
                continue
            q = cand[1] - r * cand[0]
            if q > best:
                append(cand)
                best = q
        self.dead += dead
        return kept

    def _prune_pareto(
        self, candidates: List[_Cand], frontier: _Frontier
    ) -> List[_Cand]:
        """4-field dominance on materialized actual values — ablation."""
        r, dq, dc, di, dns = (
            frontier.r, frontier.dq, frontier.dc, frontier.di, frontier.dns,
        )
        noise_aware = self.options.noise_aware
        rows = []
        for cand in candidates:
            noise_slack = cand[3] - r * cand[2] - dns
            if noise_aware and noise_slack < 0.0:
                self.dead += 1
                continue
            rows.append(
                (
                    cand[0] + dc,
                    -(cand[1] - r * cand[0] - dq),
                    cand[2] + di,
                    -noise_slack,
                    cand,
                )
            )
        rows.sort(key=lambda row: row[:4])
        kept_rows: List[tuple] = []
        kept: List[_Cand] = []
        for row in rows:
            load, neg_slack, current, neg_ns = row[0], row[1], row[2], row[3]
            for other in kept_rows:
                if (
                    other[0] <= load
                    and other[1] <= neg_slack
                    and other[2] <= current
                    and other[3] <= neg_ns
                ):
                    break
            else:
                kept_rows.append(row)
                kept.append(row[4])
        return kept

    def _prune_power_timing(
        self, candidates: List[_Cand], frontier: _Frontier
    ) -> List[_Cand]:
        """(load, slack, power) dominance under the offset frame.

        Uniform offsets cancel in comparisons (``dq`` for slack, ``dc``
        for load, ``dpw`` for power), so the scan ranks by ``q0 − r·C0``
        and stored power directly; only the noise dead-check needs the
        absolute noise slack.  Mirrors the reference engine's
        ``_power_timing_frontier`` (first-seen wins exact ties).
        """
        r = frontier.r
        dns = frontier.dns
        noise_aware = self.options.noise_aware
        rows = []
        dead = 0
        for cand in candidates:
            if noise_aware and (cand[3] - r * cand[2] - dns) < 0.0:
                dead += 1
                continue
            rows.append((cand[0], cand[1] - r * cand[0], cand[6], cand))
        self.dead += dead
        rows.sort(key=lambda row: (row[0], -row[1], row[2]))
        kept_rows: List[tuple] = []
        kept: List[_Cand] = []
        for row in rows:
            q = row[1]
            power = row[2]
            for other in kept_rows:
                if other[1] >= q and other[2] <= power:
                    break
            else:
                kept_rows.append(row)
                kept.append(row[3])
        return kept

    def _prune_pareto_power(
        self, candidates: List[_Cand], frontier: _Frontier
    ) -> List[_Cand]:
        """5-field dominance: the pareto ablation plus the power axis."""
        r, dq, dc, di, dns = (
            frontier.r, frontier.dq, frontier.dc, frontier.di, frontier.dns,
        )
        noise_aware = self.options.noise_aware
        rows = []
        for cand in candidates:
            noise_slack = cand[3] - r * cand[2] - dns
            if noise_aware and noise_slack < 0.0:
                self.dead += 1
                continue
            rows.append(
                (
                    cand[0] + dc,
                    -(cand[1] - r * cand[0] - dq),
                    cand[2] + di,
                    -noise_slack,
                    cand[6],
                    cand,
                )
            )
        rows.sort(key=lambda row: row[:5])
        kept_rows: List[tuple] = []
        kept: List[_Cand] = []
        for row in rows:
            for other in kept_rows:
                if (
                    other[0] <= row[0]
                    and other[1] <= row[1]
                    and other[2] <= row[2]
                    and other[3] <= row[3]
                    and other[4] <= row[4]
                ):
                    break
            else:
                kept_rows.append(row)
                kept.append(row[5])
        return kept

    def _finalize(self, frontier: _Frontier) -> DPResult:
        r, dq, dc, di, dns = (
            frontier.r, frontier.dq, frontier.dc, frontier.di, frontier.dns,
        )
        dpw = frontier.dpw
        power_active = self.power is not None
        has_inverters = any(b.inverting for b in self.library)
        enforce = self.options.enforce_polarity
        noise_aware = self.options.noise_aware
        gate_delay = self.driver.gate_delay
        driver_resistance = self.driver.resistance
        if power_active:
            # Per-count (slack, power) frontier, ordered by rising
            # power (and hence rising slack) within each count —
            # mirroring the reference engine's power finalize.
            per_count: Dict[int, List[Tuple[float, float, bool, _Cand]]] = {}
            for (polarity, _), candidates in frontier.groups.items():
                if enforce and has_inverters and polarity != 0:
                    continue
                for cand in candidates:
                    load = cand[0] + dc
                    q = cand[1] - r * cand[0] - dq
                    current = cand[2] + di
                    noise_slack = cand[3] - r * cand[2] - dns
                    slack = q - gate_delay(load)
                    noise_ok = driver_resistance * current <= noise_slack
                    if noise_aware and not noise_ok:
                        continue
                    chain = cand[4]
                    count = chain[2] if chain is not None else 0
                    per_count.setdefault(count, []).append(
                        (cand[6] + dpw, slack, noise_ok, cand)
                    )
            outcomes: List[DPOutcome] = []
            for count in sorted(per_count):
                best_seen = -_INF
                for power, slack, noise_ok, cand in sorted(
                    per_count[count],
                    key=lambda entry: (entry[0], -entry[1]),
                ):
                    if slack > best_seen:
                        outcomes.append(
                            self._materialize(
                                count, slack, noise_ok, cand, power
                            )
                        )
                        best_seen = slack
            ordered = tuple(outcomes)
        else:
            winners: Dict[int, Tuple[float, bool, _Cand]] = {}
            for (polarity, _), candidates in frontier.groups.items():
                if enforce and has_inverters and polarity != 0:
                    continue
                for cand in candidates:
                    load = cand[0] + dc
                    q = cand[1] - r * cand[0] - dq
                    current = cand[2] + di
                    noise_slack = cand[3] - r * cand[2] - dns
                    slack = q - gate_delay(load)
                    noise_ok = driver_resistance * current <= noise_slack
                    if noise_aware and not noise_ok:
                        continue  # Step 3/4 of Fig. 10: reject noisy finals.
                    chain = cand[4]
                    count = chain[2] if chain is not None else 0
                    kept = winners.get(count)
                    if kept is not None and not slack > kept[0]:
                        continue
                    winners[count] = (slack, noise_ok, cand)
            ordered = tuple(
                self._materialize(count, slack, noise_ok, cand, cand[6] + dpw)
                for count, (slack, noise_ok, cand) in sorted(winners.items())
            )
        return DPResult(
            tree=self.tree,
            outcomes=ordered,
            options=self.options,
            candidates_generated=self.generated,
            candidates_kept_peak=self.kept_peak,
            stats=self.stats,
        )

    @staticmethod
    def _materialize(
        count: int, slack: float, noise_ok: bool, cand: _Cand, power: float
    ) -> DPOutcome:
        """Expand a raw winning candidate into a full :class:`DPOutcome`."""
        return DPOutcome(
            buffer_count=count,
            slack=slack,
            noise_feasible=noise_ok,
            insertions=tuple(
                Insertion(name, buffer)
                for name, buffer in _chain_payloads(cand[4])
            ),
            wire_choices=tuple(
                WireChoice(parent, child, width)
                for parent, child, width in _chain_payloads(cand[5])
            ),
            power=power,
        )
