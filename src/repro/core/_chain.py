"""Persistent (shared-tail) linked list for candidate solution bookkeeping.

Van Ginneken-style algorithms create thousands of candidates that mostly
share their solution prefixes; a cons list makes "append one insertion"
O(1) and "merge two branches" O(size of one side), instead of copying
tuples around (the paper's footnote 7 makes the same point with pointers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Chain(Generic[T]):
    """One cons cell; ``None`` is the empty chain."""

    head: T
    tail: Optional["Chain[T]"]
    count: int

    @staticmethod
    def push(tail: Optional["Chain[T]"], item: T) -> "Chain[T]":
        return Chain(item, tail, 1 + (tail.count if tail else 0))

    @staticmethod
    def concat(
        left: Optional["Chain[T]"], right: Optional["Chain[T]"]
    ) -> Optional["Chain[T]"]:
        """All of ``left``'s items pushed (in order) onto ``right``."""
        if left is None:
            return right
        items = []
        node: Optional[Chain[T]] = left
        while node is not None:
            items.append(node.head)
            node = node.tail
        out = right
        for item in reversed(items):
            out = Chain.push(out, item)
        return out

    @staticmethod
    def size(chain: Optional["Chain[T]"]) -> int:
        return chain.count if chain else 0

    @staticmethod
    def to_tuple(chain: Optional["Chain[T]"]) -> Tuple[T, ...]:
        """Items in insertion (push) order."""
        items = []
        node: Optional[Chain[T]] = chain
        while node is not None:
            items.append(node.head)
            node = node.tail
        items.reverse()
        return tuple(items)
