"""DelayOpt: delay-driven buffer insertion (Van Ginneken [31] + Lillis [18]).

This is the paper's comparison baseline — "the same as Algorithm 3 …
without the boldface modifications".  The public entry points wrap the
shared DP engine with ``noise_aware=False``:

* :func:`optimize_delay` — maximize the source slack ``q(so)``;
* :func:`optimize_delay_per_count` — the DelayOpt(k) family: the best
  solution for *every* buffer count up to ``max_buffers`` from a single
  count-tracking DP run (Lillis's indexed candidate lists).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from ..library.buffers import BufferLibrary
from ..library.cells import DriverCell
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from .budget import RunBudget
from .dp import DPOptions, DPResult, run_dp
from .solution import BufferSolution


def optimize_delay(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[DriverCell] = None,
    enforce_polarity: bool = True,
) -> BufferSolution:
    """Maximum-slack buffer insertion, no noise constraints.

    The tree should already be segmented (buffer sites are its feasible
    internal nodes).  Returns the slack-optimal assignment.
    """
    result = run_dp(
        tree,
        library,
        coupling=CouplingModel.silent(),
        options=DPOptions(noise_aware=False, enforce_polarity=enforce_polarity),
        driver=driver,
    )
    return result.solution(result._best())


def delay_opt_result(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[DriverCell] = None,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
    prune: str = "timing",
    collect_stats: bool = False,
    budget: Optional[RunBudget] = None,
    engine: str = "reference",
) -> DPResult:
    """Count-tracking DelayOpt run exposing the per-count outcomes.

    .. deprecated:: 1.1
        Use :func:`repro.api.dp_result` with ``mode="delay"`` (or the
        :class:`repro.api.Session` facade).  This shim forwards there
        and returns bit-identical results — pinned by the parity tests.
    """
    warnings.warn(
        "delay_opt_result is deprecated; use repro.api.dp_result("
        "mode='delay') or repro.api.Session instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import dp_result

    return dp_result(
        tree,
        library,
        mode="delay",
        driver=driver,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
        prune=prune,
        collect_stats=collect_stats,
        budget=budget,
        engine=engine,
    )


def optimize_delay_per_count(
    tree: RoutingTree,
    library: BufferLibrary,
    driver: Optional[DriverCell] = None,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
) -> Dict[int, BufferSolution]:
    """Best solution for each buffer count: ``{k: DelayOpt-best with k}``.

    ``DelayOpt(k)`` in the paper's tables is the max-slack entry among
    counts ``<= k`` — see :func:`best_within_count`.
    """
    from ..api import dp_result

    result = dp_result(
        tree,
        library,
        mode="delay",
        driver=driver,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
    )
    return {
        outcome.buffer_count: result.solution(outcome)
        for outcome in result.outcomes
    }


def best_within_count(result: DPResult, k: int) -> BufferSolution:
    """DelayOpt(k): the max-slack outcome using at most ``k`` buffers."""
    pool = [o for o in result.outcomes if o.buffer_count <= k]
    if not pool:
        raise ValueError(
            f"no outcomes with <= {k} buffers (have counts "
            f"{[o.buffer_count for o in result.outcomes]})"
        )
    best = max(pool, key=lambda o: (o.slack, -o.buffer_count))
    return result.solution(best)
