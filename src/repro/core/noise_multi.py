"""Algorithm 2: optimal noise avoidance for multi-sink trees (Section III-C).

Bottom-up candidate propagation in the spirit of Van Ginneken: a candidate
at a node ``v`` is ``(I(v), NS(v), M)`` — downstream current, noise slack,
and the buffers placed so far in the subtree.  Along wires every candidate
evolves deterministically (buffers at maximal Theorem-1 positions, exactly
like Algorithm 1).  The interesting point is a two-child merge:

* if ``Rb * (I_l + I_r) <= min(NS_l, NS_r)`` the branches merge without a
  buffer;
* otherwise a buffer must go *immediately below the branch node* on one of
  the two branches, and since the correct choice depends on the yet-unseen
  upstream, **both** options become candidates (paper Step 6).

Candidate ``a`` is *inferior* to ``b`` iff ``I_a >= I_b`` and
``NS_a <= NS_b`` (paper) — we additionally require ``|M_a| >= |M_b|`` so
that pruning provably never discards a fewest-buffer optimum when
candidates with different buffer counts coexist.

The walker's invariant (a buffer placed at the candidate's node is
noise-feasible) holds for every candidate, which is what makes the forks
at merges legal and the final driver fix-up (one buffer right after the
source) always available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import InfeasibleError
from ..library.buffers import BufferLibrary, BufferType
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree
from ._chain import Chain
from ._trim import trim_redundant
from ._walk import walk_wire
from .noise_single import select_noise_buffer
from .solution import ContinuousSolution, PlacedBuffer


_Chain = Chain  # placements chain; see repro.core._chain


@dataclass(frozen=True)
class NoiseCandidate:
    """``(I, NS, M)`` with the buffer count cached for pruning."""

    current: float
    slack: float
    chain: Optional[Chain[PlacedBuffer]]

    @property
    def count(self) -> int:
        return Chain.size(self.chain)

    def placements(self) -> Tuple[PlacedBuffer, ...]:
        return Chain.to_tuple(self.chain)


def prune_noise_candidates(
    candidates: List[NoiseCandidate],
) -> List[NoiseCandidate]:
    """Drop candidates inferior in (current, slack, count).

    Output is sorted by increasing current; on the kept frontier slack is
    strictly increasing with current within each count level.
    """
    # Sort so better candidates come first at equal current.
    ordered = sorted(
        candidates, key=lambda c: (c.current, -c.slack, c.count)
    )
    kept: List[NoiseCandidate] = []
    for cand in ordered:
        dominated = any(
            other.current <= cand.current
            and other.slack >= cand.slack
            and other.count <= cand.count
            for other in kept
        )
        if not dominated:
            kept.append(cand)
    return kept


def insert_buffers_multi_sink(
    tree: RoutingTree,
    buffers: Union[BufferType, BufferLibrary],
    coupling: CouplingModel,
    driver_resistance: Optional[float] = None,
) -> ContinuousSolution:
    """Minimum-buffer noise avoidance on an arbitrary tree (Problem 1).

    Accepts single-sink trees too (it then reduces to Algorithm 1, which
    the test suite verifies).  Returns the fewest-buffer solution; ties
    break toward larger final noise slack, then smaller current.

    Raises
    ------
    InfeasibleError
        If no buffering of some wire can satisfy the noise constraints.
    """
    if driver_resistance is None:
        if tree.driver is None:
            raise InfeasibleError(
                f"tree {tree.name!r} has no driver; pass driver_resistance"
            )
        driver_resistance = tree.driver.resistance
    buffer = select_noise_buffer(buffers)

    lists: Dict[str, List[NoiseCandidate]] = {}
    for node in tree.postorder():
        if node.is_sink:
            assert node.sink is not None
            lists[node.name] = [NoiseCandidate(0.0, node.sink.noise_margin, None)]
            continue
        child_lists = []
        for child in node.children:
            wire = child.parent_wire
            assert wire is not None
            walked: List[NoiseCandidate] = []
            for cand in lists.pop(child.name):
                current, slack, placed = walk_wire(
                    wire, buffer, coupling, cand.current, cand.slack
                )
                chain = cand.chain
                for item in placed:
                    chain = _Chain.push(chain, item)
                walked.append(NoiseCandidate(current, slack, chain))
            child_lists.append((child, prune_noise_candidates(walked)))
        if node.is_source and not child_lists:
            raise InfeasibleError(f"source of {tree.name!r} has no subtree")
        if len(child_lists) == 1:
            lists[node.name] = child_lists[0][1]
        else:
            lists[node.name] = _merge(node, child_lists, buffer)

    final = lists[tree.source.name]
    best: Optional[Tuple[int, float, float, NoiseCandidate, bool]] = None
    for cand in final:
        needs_buffer = driver_resistance * cand.current > cand.slack
        cost = cand.count + (1 if needs_buffer else 0)
        slack = buffer.noise_margin if needs_buffer else cand.slack
        current = 0.0 if needs_buffer else cand.current
        key = (cost, -slack, current)
        if best is None or key < (best[0], -best[1], best[2]):
            best = (cost, slack, current, cand, needs_buffer)
    assert best is not None, "candidate lists are never empty"
    _, _, _, cand, needs_buffer = best

    placements = list(cand.placements())
    if needs_buffer:
        top_wire = tree.source.children[0].parent_wire
        assert top_wire is not None
        placements.append(
            PlacedBuffer(
                parent=top_wire.parent.name,
                child=top_wire.child.name,
                distance_from_child=top_wire.length,
                buffer=buffer,
            )
        )
    result = tuple(placements)
    if driver_resistance < buffer.resistance:
        # Footnote 8: a driver stronger than the buffer can make the
        # topmost placements redundant; trim to a 1-minimal solution.
        result = trim_redundant(tree, result, coupling, driver_resistance)
    return ContinuousSolution(tree=tree, placements=result)


def _merge(
    node: Node,
    child_lists: List[Tuple[Node, List[NoiseCandidate]]],
    buffer: BufferType,
) -> List[NoiseCandidate]:
    """Merge the two branch candidate lists at ``node`` (Steps 4–7)."""
    (left_child, left), (right_child, right) = child_lists
    left_wire = left_child.parent_wire
    right_wire = right_child.parent_wire
    assert left_wire is not None and right_wire is not None

    merged: List[NoiseCandidate] = []
    for a in left:
        for b in right:
            current = a.current + b.current
            slack = min(a.slack, b.slack)
            if buffer.resistance * current <= slack:
                # Step 7: no violation — plain merge.
                merged.append(
                    NoiseCandidate(current, slack, _Chain.concat(a.chain, b.chain))
                )
                continue
            # Step 6: buffer immediately below the branch, on one side.
            forks = []
            buffered_left = NoiseCandidate(
                b.current,
                min(buffer.noise_margin, b.slack),
                _Chain.push(
                    _Chain.concat(a.chain, b.chain),
                    PlacedBuffer(
                        left_wire.parent.name,
                        left_wire.child.name,
                        left_wire.length,
                        buffer,
                    ),
                ),
            )
            buffered_right = NoiseCandidate(
                a.current,
                min(buffer.noise_margin, a.slack),
                _Chain.push(
                    _Chain.concat(a.chain, b.chain),
                    PlacedBuffer(
                        right_wire.parent.name,
                        right_wire.child.name,
                        right_wire.length,
                        buffer,
                    ),
                ),
            )
            for fork in (buffered_left, buffered_right):
                if buffer.resistance * fork.current <= fork.slack:
                    forks.append(fork)
            if not forks:
                # Both single-side forks break the invariant (possible only
                # when the buffer margin is unusually small): buffer both.
                forks.append(
                    NoiseCandidate(
                        0.0,
                        buffer.noise_margin,
                        _Chain.push(
                            buffered_left.chain,
                            PlacedBuffer(
                                right_wire.parent.name,
                                right_wire.child.name,
                                right_wire.length,
                                buffer,
                            ),
                        ),
                    )
                )
            merged.extend(forks)
    return prune_noise_candidates(merged)
