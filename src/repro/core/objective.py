"""Structured optimization objective: mode + selection rule + constraints.

``dp_result`` historically took a ``mode=`` string and callers then
picked an outcome by hand with one of three ad-hoc ``DPResult``
selection methods (``best``, ``fewest_buffers``, ``minimize_cost``).
Adding power as a third objective axis would have pushed that surface
past maintainability, so selection is now a *value*: an
:class:`Objective` names the DP mode (which recurrence runs), the
selection rule (which outcome wins), and the constraints the rule
applies (slack floor, power cap, noise requirement).  One objective
travels unchanged through the Python API, batch configs, the service
protocol, and the CLI ``--objective`` grammar.

The legacy surfaces remain as parity-pinned :class:`DeprecationWarning`
shims (same treatment as the PR 5 facade): ``mode="buffopt"`` maps to
``Objective(mode="buffopt", selection="fewest-buffers")`` and
``mode="delay"`` to ``Objective(mode="delay", selection="max-slack",
require_noise=False)`` — bit-identical by construction, enforced by
tests.

This module lives in ``repro.core`` (not ``repro.api``) because
``DPResult.select`` consumes objectives; ``repro.api`` re-exports
:class:`Objective` as its public home.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "Objective",
    "OBJECTIVE_MODES",
    "SELECTION_RULES",
]

#: DP recurrences an objective can request (``noise`` is not a DP mode;
#: the noise-only heuristic keeps its dedicated CLI surface).
OBJECTIVE_MODES = ("buffopt", "delay")

#: outcome-selection rules over a DP result's outcome frontier.
SELECTION_RULES = (
    "fewest-buffers",
    "max-slack",
    "min-power",
    "power-capped",
    "pareto",
)

#: selection rules that require the DP to run with a power model.
POWER_SELECTIONS = frozenset({"min-power", "power-capped", "pareto"})


def _want_float(value: Any, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"objective {key} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class Objective:
    """What to optimize and how to pick the winning outcome.

    ``mode`` selects the DP recurrence (``buffopt`` = noise-aware
    Algorithm 3, ``delay`` = plain van Ginneken).  ``selection`` picks
    from the resulting outcome frontier:

    * ``fewest-buffers`` — fewest buffers meeting ``min_slack``
      (max-slack fallback when nothing meets it), the classic
      post-timing objective;
    * ``max-slack`` — the best achievable slack, ties to fewer buffers;
    * ``min-power`` — least power among outcomes meeting ``min_slack``
      (max-slack fallback when nothing meets it);
    * ``power-capped`` — best slack among outcomes within
      ``power_cap`` watts (infeasible when none fit the cap);
    * ``pareto`` — the full nondominated (slack, power, count)
      frontier; ``DPResult.select`` returns a tuple of outcomes for
      this rule, so single-outcome consumers (``Session``, batch, the
      service) reject it.

    ``require_noise`` overrides the default noise filter (which is
    "noise-aware iff mode is buffopt"); the legacy delay path pinned
    ``require_noise=False`` and its shim preserves that.  Tie-breaks
    are fixed per rule and documented on the ``DPResult`` methods.
    """

    mode: str = "buffopt"
    selection: str = "fewest-buffers"
    min_slack: float = 0.0
    power_cap: Optional[float] = None
    require_noise: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.mode not in OBJECTIVE_MODES:
            raise ValueError(
                f"objective mode must be one of {OBJECTIVE_MODES}, "
                f"got {self.mode!r}"
            )
        if self.selection not in SELECTION_RULES:
            raise ValueError(
                f"objective selection must be one of {SELECTION_RULES}, "
                f"got {self.selection!r}"
            )
        if isinstance(self.min_slack, bool) or not isinstance(
            self.min_slack, (int, float)
        ):
            raise ValueError(
                f"objective min_slack must be a number, got {self.min_slack!r}"
            )
        if self.power_cap is not None:
            if isinstance(self.power_cap, bool) or not isinstance(
                self.power_cap, (int, float)
            ):
                raise ValueError(
                    "objective power_cap must be a number, got "
                    f"{self.power_cap!r}"
                )
            if self.power_cap < 0.0:
                raise ValueError(
                    f"objective power_cap must be >= 0, got {self.power_cap}"
                )
            if self.selection != "power-capped":
                raise ValueError(
                    "power_cap only applies to the power-capped selection, "
                    f"not {self.selection!r}"
                )
        elif self.selection == "power-capped":
            raise ValueError("power-capped selection requires a power_cap")
        if self.require_noise is not None and not isinstance(
            self.require_noise, bool
        ):
            raise ValueError(
                "objective require_noise must be a bool or None, got "
                f"{self.require_noise!r}"
            )

    # -- derived properties -------------------------------------------------

    @property
    def noise_aware(self) -> bool:
        """Whether the DP recurrence tracks noise (Algorithm 3)."""
        return self.mode == "buffopt"

    @property
    def power_aware(self) -> bool:
        """Whether the DP must carry the power accumulator."""
        return self.selection in POWER_SELECTIONS

    def is_legacy(self) -> bool:
        """True when this objective is exactly a legacy ``mode=`` shim.

        Legacy-shaped objectives serialize to the *old* request/config
        fingerprint schema so caches and checkpoints written before the
        objective block existed still hit — see
        ``BatchConfig`` and ``repro.service.protocol``.
        """
        return self == Objective.legacy(self.mode, min_slack=self.min_slack)

    # -- legacy mapping -----------------------------------------------------

    @classmethod
    def legacy(cls, mode: str, min_slack: float = 0.0) -> "Objective":
        """The objective the legacy ``mode=`` string stood for."""
        if mode == "buffopt":
            return cls(
                mode="buffopt",
                selection="fewest-buffers",
                min_slack=min_slack,
            )
        if mode == "delay":
            return cls(
                mode="delay",
                selection="max-slack",
                min_slack=min_slack,
                require_noise=False,
            )
        raise ValueError(
            f"legacy mode must be one of {OBJECTIVE_MODES}, got {mode!r}"
        )

    # -- serialization ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON block (omits defaulted optional fields)."""
        block: Dict[str, Any] = {
            "mode": self.mode,
            "selection": self.selection,
        }
        if self.min_slack != 0.0:
            block["min_slack"] = self.min_slack
        if self.power_cap is not None:
            block["power_cap"] = self.power_cap
        if self.require_noise is not None:
            block["require_noise"] = self.require_noise
        return block

    @classmethod
    def from_json(cls, block: Mapping[str, Any]) -> "Objective":
        """Parse a JSON block, rejecting unknown keys."""
        if not isinstance(block, Mapping):
            raise ValueError(
                f"objective block must be an object, got {type(block).__name__}"
            )
        known = {"mode", "selection", "min_slack", "power_cap", "require_noise"}
        unknown = sorted(set(block) - known)
        if unknown:
            raise ValueError(
                f"unknown objective key(s): {', '.join(unknown)}"
            )
        kwargs: Dict[str, Any] = {}
        if "mode" in block:
            kwargs["mode"] = block["mode"]
        if "selection" in block:
            kwargs["selection"] = block["selection"]
        if "min_slack" in block:
            kwargs["min_slack"] = _want_float(block["min_slack"], "min_slack")
        if "power_cap" in block and block["power_cap"] is not None:
            kwargs["power_cap"] = _want_float(block["power_cap"], "power_cap")
        if "require_noise" in block and block["require_noise"] is not None:
            value = block["require_noise"]
            if not isinstance(value, bool):
                raise ValueError(
                    f"objective require_noise must be a bool, got {value!r}"
                )
            kwargs["require_noise"] = value
        return cls(**kwargs)

    # -- CLI grammar --------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "Objective":
        """Parse the CLI grammar ``mode[/selection][/key=value...]``.

        Examples::

            buffopt
            delay
            buffopt/min-power
            buffopt/power-capped/power_cap=2e-4
            delay/max-slack/min_slack=0.1/require_noise=false

        A bare mode maps to its legacy default selection so
        ``--objective buffopt`` means exactly what ``--mode buffopt``
        meant.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ValueError("objective spec must be a non-empty string")
        parts = [p.strip() for p in spec.strip().split("/")]
        mode = parts[0]
        if mode not in OBJECTIVE_MODES:
            raise ValueError(
                f"objective mode must be one of {OBJECTIVE_MODES}, "
                f"got {mode!r}"
            )
        rest = parts[1:]
        if not rest:
            return cls.legacy(mode)
        selection: Optional[str] = None
        kwargs: Dict[str, Any] = {}
        for part in rest:
            if "=" not in part:
                if selection is not None:
                    raise ValueError(
                        f"objective spec has two selections: "
                        f"{selection!r} and {part!r}"
                    )
                selection = part
                continue
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key in ("min_slack", "power_cap"):
                try:
                    kwargs[key] = float(raw)
                except ValueError:
                    raise ValueError(
                        f"objective {key} must be a number, got {raw!r}"
                    ) from None
            elif key == "require_noise":
                lowered = raw.lower()
                if lowered in ("true", "1", "yes"):
                    kwargs[key] = True
                elif lowered in ("false", "0", "no"):
                    kwargs[key] = False
                else:
                    raise ValueError(
                        f"objective require_noise must be true/false, "
                        f"got {raw!r}"
                    )
            else:
                raise ValueError(f"unknown objective key {key!r}")
        if selection is None:
            base = cls.legacy(mode)
            return replace(base, **kwargs)
        return cls(mode=mode, selection=selection, **kwargs)

    def describe(self) -> str:
        """The spec string :meth:`parse` would accept back."""
        parts = [self.mode, self.selection]
        if self.min_slack != 0.0:
            parts.append(f"min_slack={self.min_slack!r}")
        if self.power_cap is not None:
            parts.append(f"power_cap={self.power_cap!r}")
        if self.require_noise is not None:
            parts.append(
                f"require_noise={'true' if self.require_noise else 'false'}"
            )
        return "/".join(parts)
