"""Shared bottom-up wire walker for Algorithms 1 and 2.

Processes one wire from its child end to its parent end, maintaining the
``(downstream current, noise slack)`` state and inserting buffers at their
maximal Theorem-1 positions whenever deferral would break the invariant:

    **invariant** — at every state the walker hands back, a buffer placed
    at that point satisfies the noise constraint (``Rb * I <= NS``).

Both noise-avoidance algorithms reduce their per-wire work to this walker;
Algorithm 2 additionally forks candidates at branch merges.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import InfeasibleError
from ..library.buffers import BufferType
from ..noise.coupling import CouplingModel
from ..tree.topology import Wire
from .solution import PlacedBuffer
from .wire_length import max_safe_length

#: sanity cap on buffers per wire (paper nets need at most a handful).
_MAX_BUFFERS_PER_WIRE = 1000


def walk_wire(
    wire: Wire,
    buffer: BufferType,
    coupling: CouplingModel,
    current: float,
    slack: float,
) -> Tuple[float, float, List[PlacedBuffer]]:
    """Walk ``wire`` bottom-up from state ``(current, slack)``.

    Returns the state at the wire's upstream end plus any buffers placed
    on this wire (ordered bottom-to-top).  Requires — and re-establishes —
    the module invariant.  Raises :class:`InfeasibleError` when no buffer
    position can satisfy the constraint.
    """
    placements: List[PlacedBuffer] = []
    if wire.length <= 0.0:
        return _walk_lumped(wire, buffer, coupling, current, slack, placements)

    unit_r = wire.resistance / wire.length
    unit_i = coupling.wire_current(wire) / wire.length
    remaining = wire.length

    # Progress guard: the steady-state Theorem-1 span with a fresh buffer
    # state bounds how many buffers this wire can possibly need.  A span
    # so small that thousands of buffers would be required means the
    # buffer type cannot realistically fix this wire.
    if unit_r > 0 and unit_i > 0:
        steady_span = max_safe_length(
            buffer.resistance, unit_r, unit_i, 0.0, buffer.noise_margin
        )
        if steady_span * _MAX_BUFFERS_PER_WIRE < wire.length:
            raise InfeasibleError(
                f"wire {wire.name}: buffer {buffer.name!r} sustains only "
                f"{steady_span:.3g} m spans ({wire.length / steady_span:.0f} "
                "buffers would be needed); treat as infeasible"
            )

    while True:
        span_current = unit_i * remaining
        span_resistance = unit_r * remaining
        top_current = current + span_current
        top_noise = span_resistance * (span_current / 2.0 + current)
        if buffer.resistance * top_current <= slack - top_noise:
            return top_current, slack - top_noise, placements
        try:
            distance = max_safe_length(
                driver_resistance=buffer.resistance,
                unit_resistance=unit_r,
                unit_current=unit_i,
                downstream_current=current,
                noise_slack=slack,
            )
        except InfeasibleError as exc:
            raise InfeasibleError(f"wire {wire.name}: {exc}") from exc
        # Back off by 0.1 ppb so the realized placement never rounds to
        # "noise > margin" when re-analyzed with differently-associated
        # float arithmetic; the optimality tests tolerate this epsilon.
        distance *= 1.0 - 1e-10
        # The deferral test failed, so Theorem 1 cannot really allow the
        # whole remaining span; equality can slip through in float math.
        distance = min(distance, remaining)
        consumed = wire.length - remaining
        placements.append(
            PlacedBuffer(
                parent=wire.parent.name,
                child=wire.child.name,
                distance_from_child=consumed + distance,
                buffer=buffer,
            )
        )
        remaining -= distance
        current, slack = 0.0, buffer.noise_margin
        if remaining <= 0.0:
            return current, slack, placements


def _walk_lumped(
    wire: Wire,
    buffer: BufferType,
    coupling: CouplingModel,
    current: float,
    slack: float,
    placements: List[PlacedBuffer],
) -> Tuple[float, float, List[PlacedBuffer]]:
    """Zero-length wires: lumped R and current, no interior positions."""
    wire_i = coupling.wire_current(wire)
    noise = wire.resistance * (wire_i / 2.0 + current)
    if buffer.resistance * (current + wire_i) <= slack - noise:
        return current + wire_i, slack - noise, placements
    # Buffer at the child end (legal by the entry invariant), then retry.
    placements.append(
        PlacedBuffer(
            parent=wire.parent.name,
            child=wire.child.name,
            distance_from_child=0.0,
            buffer=buffer,
        )
    )
    current, slack = 0.0, buffer.noise_margin
    noise = wire.resistance * (wire_i / 2.0 + current)
    if buffer.resistance * (current + wire_i) > slack - noise:
        raise InfeasibleError(
            f"lumped wire {wire.name} is too noisy for buffer "
            f"{buffer.name!r} even when buffered at both ends"
        )
    return current + wire_i, slack - noise, placements
