"""The Van Ginneken dynamic-programming engine (paper Sections II-D and IV).

One engine implements both algorithms:

* **DelayOpt** — the classic Van Ginneken/Lillis DP (``noise_aware=False``):
  candidates ``(C, q, M)`` propagate bottom-up; buffers maximize slack.
* **BuffOpt / Algorithm 3** — the paper's extension (``noise_aware=True``):
  candidates grow to ``(C, q, I, NS, M)`` and a buffer (or the final
  driver) is only accepted when its output noise ``R * I`` fits within the
  downstream noise slack ``NS``.  Candidates whose ``NS`` falls below zero
  are dead (no gate could ever legally drive them) and are dropped, which
  is why BuffOpt generates *fewer* candidates than DelayOpt (Section V-B).

Supported extensions, all from the paper's toolbox:

* **buffer-count tracking** (Lillis [18]) — keep one candidate frontier per
  inserted-buffer count, enabling DelayOpt(k) and Problem 3;
* **polarity tracking** (Lillis [18]) — inverting buffers flip a polarity
  bit; merges require equal polarity and the source must see parity 0;
* **pruning rules** — the paper prunes on ``(C, q)`` only (``prune=
  "timing"``, the Theorem-5 setting); ``prune="pareto"`` keeps the full
  4-field Pareto frontier (ablation).

The noise state uses exactly the update rules of the Devgan metric module,
so an engine result re-analyzed by :mod:`repro.noise.devgan` agrees with
the candidate arithmetic (tested).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import InfeasibleError
from ..library.buffers import BufferLibrary, BufferType
from ..library.cells import DriverCell
from ..library.power import PowerModel
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree, Wire
from ._chain import Chain
from .budget import RunBudget
from .objective import Objective
from .solution import BufferSolution
from .stats import EngineStats
from .wire_sizing import WireChoice, WireSizingSpec, apply_wire_widths


@dataclass(frozen=True)
class Insertion:
    """One buffer assigned to one (existing, feasible) tree node."""

    node: str
    buffer: BufferType


@dataclass(frozen=True)
class DPCandidate:
    """The paper's candidate tuple ``(C, q, I, NS, M)`` plus polarity.

    ``wire_chain`` records wire-width decisions when the engine runs with
    a :class:`~repro.core.wire_sizing.WireSizingSpec` (Lillis-style
    simultaneous sizing); only non-default widths are recorded.
    """

    load: float
    slack: float
    current: float
    noise_slack: float
    polarity: int
    chain: Optional[Chain[Insertion]]
    wire_chain: Optional[Chain[WireChoice]] = None
    #: monotone power accumulator: summed buffer + wire switching power
    #: of the decisions this candidate committed.  Stays exactly ``0.0``
    #: when the run carries no :class:`~repro.library.PowerModel`, so
    #: power-off runs are bit-identical to the pre-power engine (the
    #: ``site_prices`` zero-cost-identity discipline).
    power: float = 0.0

    @property
    def count(self) -> int:
        return Chain.size(self.chain)

    def insertions(self) -> Tuple[Insertion, ...]:
        return Chain.to_tuple(self.chain)

    def wire_choices(self) -> Tuple[WireChoice, ...]:
        return Chain.to_tuple(self.wire_chain)


#: the concrete DP implementations, in the order they landed.
ENGINES = ("reference", "fast", "lishi")
#: everything :class:`DPOptions.engine` accepts — the concrete engines
#: plus the per-net ``"auto"`` heuristic.
ENGINE_CHOICES = ENGINES + ("auto",)

#: ``engine="auto"`` switches from "fast" to "lishi" when sink count ×
#: buffer-library size reaches this product.  Below it the frontier is
#: small enough that the fast engine's lower constants (and its
#: bit-identity to the reference) win; above it the lishi engine's
#: O(1) wire updates and hull-walk buffering dominate.  Chosen from the
#: bench_engines crossover: a 60-sink × 8-buffer smoke net (product
#: 480) still favors "fast", the 500-sink × 8-buffer gate point
#: (product 4000) favors "lishi" by well over 2x.
AUTO_LISHI_THRESHOLD = 512


@dataclass(frozen=True)
class DPOptions:
    """Engine configuration; defaults give the plain Van Ginneken setup."""

    noise_aware: bool = False
    track_counts: bool = False
    max_buffers: Optional[int] = None
    prune: str = "timing"  # "timing" (paper) or "pareto" (4-field ablation)
    enforce_polarity: bool = True
    #: which DP implementation runs the recurrence: ``"reference"`` (this
    #: module, the readable dataclass-per-candidate engine), ``"fast"``
    #: (:mod:`repro.core.fast_engine`, Li–Shi-style data layout with
    #: bit-identical outcomes), ``"lishi"``
    #: (:mod:`repro.core.lishi_engine`, the genuine O(bn²) algorithm —
    #: semantically equivalent within float tolerance, *not*
    #: bit-identical), or ``"auto"`` (:func:`resolve_auto_engine` picks
    #: between "fast" and "lishi" per net by sink count × library size).
    engine: str = "reference"
    #: enable Lillis-style simultaneous wire sizing with this width menu.
    sizing: Optional[WireSizingSpec] = None
    #: collect an :class:`~repro.core.stats.EngineStats` telemetry record
    #: on the result (never changes the candidate arithmetic).
    collect_stats: bool = False
    #: cooperative deadline / candidate budget, checked once per node
    #: visit; ``None`` runs unguarded.  Budgets are stateful — pass a
    #: fresh (or restarted) one per run.
    budget: Optional[RunBudget] = None
    #: opt-in phase profiler (any object with an ``install(engine)``
    #: method, canonically :class:`~repro.obs.PhaseProfiler`) wrapping
    #: the engine's phase methods.  ``None`` — the default — leaves the
    #: engine byte-for-byte uninstrumented: the only cost of the hook
    #: is one ``is None`` check per :func:`run_dp` call (the bench
    #: overhead gate pins this).  Profiling never changes candidate
    #: arithmetic, so profiled runs stay bit-identical.
    profile: Optional[object] = None
    #: opt-in ECO frontier cache (:class:`~repro.core.eco.FrontierCache`).
    #: The engine restores whole unchanged subtrees from it and stores a
    #: snapshot at every node it does visit, making incremental re-runs
    #: after a local edit bit-identical to cold runs at a fraction of
    #: the work.  Reference engine only: the fast and lishi engines use
    #: incompatible internal frontier representations.
    frontier_cache: Optional[object] = None
    #: per-node Lagrangian buffer-site prices (node name -> nonnegative
    #: finite price, in slack units).  A buffer inserted at a priced node
    #: pays the price as extra slack cost — exactly like an added
    #: intrinsic delay — which is how the fleet coordinator
    #: (:mod:`repro.fleet`) threads shared-site congestion costs into the
    #: per-net DP.  Because the price is uniform across all candidates
    #: and buffer types at one node, the per-buffer argmax (and the lishi
    #: engine's hull walk) is unchanged; only the *buffered* candidate's
    #: slack shifts, steering competition between buffering at different
    #: nodes.  ``None``/empty, or a price of exactly ``0.0``, takes the
    #: original arithmetic path bit-for-bit (``x - 0.0 == x`` in IEEE
    #: round-to-nearest), so unpriced runs stay bit-identical across all
    #: three engines.
    #:
    #: Semantics caveat: penalties ride the *slack* recurrence, so a
    #: branch merge (min over children) absorbs penalties paid on the
    #: non-critical branch.  The engine therefore maximizes the
    #: min-over-sinks *path-priced* slack ``v(x)``, which satisfies
    #: ``slack(x) - sum(prices over all buffers) <= v(x) <= slack(x)``
    #: — enough for valid Lagrangian bounds (see
    #: :mod:`repro.fleet.pricing`), but the root slack of a priced run
    #: is *not* simply the physical slack minus the total penalty.
    site_prices: Optional[Mapping[str, float]] = None
    #: opt-in power accumulator (:class:`~repro.library.PowerModel`).
    #: When set, every candidate carries its committed switching +
    #: short-circuit power, the merge generates the full cross product
    #: (the staircase walk is 2-D-only), buffering keeps one candidate
    #: per (drive-slack, power)-Pareto donor instead of the scalar
    #: argmax, pruning extends dominance with the power axis, and the
    #: result keeps a per-count (slack, power) frontier — everything
    #: :meth:`DPResult.min_power` / :meth:`DPResult.power_capped` /
    #: :meth:`DPResult.pareto_outcomes` need.  ``None`` — the default —
    #: carries ``0.0`` through arithmetic that is bit-identical to the
    #: pre-power engine on all three implementations (tested).
    #: Incompatible with ``sizing``: without sizing the wire power of a
    #: net is assignment-independent, which is what keeps the
    #: certificate re-derivation exact.
    power: Optional[PowerModel] = None

    def __post_init__(self) -> None:
        if self.prune not in ("timing", "pareto"):
            raise ValueError(f"unknown prune rule {self.prune!r}")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {', '.join(map(repr, ENGINE_CHOICES))})"
            )
        if self.budget is not None and not isinstance(self.budget, RunBudget):
            raise ValueError(
                f"budget must be a RunBudget or None, got {self.budget!r}"
            )
        if self.max_buffers is not None and self.max_buffers < 0:
            raise ValueError(f"max_buffers must be >= 0, got {self.max_buffers}")
        if self.max_buffers is not None and not self.track_counts:
            raise ValueError(
                "max_buffers requires track_counts=True (candidate counts "
                "must be part of the frontier to cap them soundly)"
            )
        if self.profile is not None and not callable(
            getattr(self.profile, "install", None)
        ):
            raise ValueError(
                "profile must expose an install(engine) method (use "
                f"repro.obs.PhaseProfiler), got {self.profile!r}"
            )
        if self.frontier_cache is not None:
            if self.engine != "reference":
                raise ValueError(
                    "frontier_cache requires engine='reference' (the fast "
                    "and lishi engines cannot snapshot/restore reference "
                    f"frontiers), got engine={self.engine!r}"
                )
            if self.collect_stats:
                raise ValueError(
                    "frontier_cache is incompatible with collect_stats "
                    "(per-node telemetry cannot be recorded for skipped "
                    "subtrees)"
                )
            if not callable(
                getattr(self.frontier_cache, "lookup", None)
            ) or not callable(getattr(self.frontier_cache, "store", None)):
                raise ValueError(
                    "frontier_cache must expose lookup(fingerprint) and "
                    "store(fingerprint, snapshot) (use "
                    f"repro.core.eco.FrontierCache), got "
                    f"{self.frontier_cache!r}"
                )
        if self.site_prices is not None:
            if not isinstance(self.site_prices, Mapping):
                raise ValueError(
                    "site_prices must be a mapping of node name -> price "
                    f"or None, got {self.site_prices!r}"
                )
            for name, price in self.site_prices.items():
                if not isinstance(name, str):
                    raise ValueError(
                        f"site_prices keys must be node names, got {name!r}"
                    )
                if not isinstance(price, (int, float)) or isinstance(
                    price, bool
                ):
                    raise ValueError(
                        f"site_prices[{name!r}] must be a number, "
                        f"got {price!r}"
                    )
                if not math.isfinite(price) or price < 0.0:
                    raise ValueError(
                        f"site_prices[{name!r}] must be finite and >= 0, "
                        f"got {price!r}"
                    )
        if self.power is not None:
            if not callable(
                getattr(self.power, "buffer_power", None)
            ) or not callable(getattr(self.power, "wire_power", None)):
                raise ValueError(
                    "power must expose buffer_power(buffer) and "
                    "wire_power(capacitance) (use repro.library.PowerModel), "
                    f"got {self.power!r}"
                )
            if self.sizing is not None:
                raise ValueError(
                    "power is incompatible with wire sizing: the power "
                    "certificate re-derives wire power from the drawn "
                    "widths, which sizing makes assignment-dependent"
                )


@dataclass(frozen=True)
class DPOutcome:
    """One finalized source candidate (driver delay and noise applied)."""

    buffer_count: int
    slack: float
    noise_feasible: bool
    insertions: Tuple[Insertion, ...]
    wire_choices: Tuple[WireChoice, ...] = ()
    #: accumulated buffer + wire power of the inserted solution; exactly
    #: ``0.0`` when the run carried no power model.
    power: float = 0.0


@dataclass(frozen=True)
class DPResult:
    """All finalized outcomes.

    Without a power model: the best outcome per buffer count.  With one
    (``options.power``): the per-count *(slack, power)* frontier —
    several outcomes may share a count, ordered by rising power (and
    hence rising slack) within it.

    Outcome selection is unified behind :meth:`select`, which consumes a
    structured :class:`~repro.core.objective.Objective`; the historical
    per-rule methods (:meth:`best`, :meth:`fewest_buffers`,
    :meth:`minimize_cost`) remain as parity-pinned deprecation shims.
    """

    tree: RoutingTree
    outcomes: Tuple[DPOutcome, ...]
    options: DPOptions
    #: total candidates generated / surviving prunes (for the ablations).
    candidates_generated: int
    candidates_kept_peak: int
    #: telemetry record, present when run with ``collect_stats=True``.
    stats: Optional[EngineStats] = None

    def select(self, objective: Objective):
        """Pick the outcome(s) the objective asks for.

        Returns one :class:`DPOutcome` for every selection rule except
        ``"pareto"``, which returns the nondominated tuple from
        :meth:`pareto_outcomes`.  This is the non-deprecated selection
        surface; the rule-specific methods below document each rule's
        exact tie-breaks.
        """
        if objective.selection == "max-slack":
            return self._best(objective.require_noise)
        if objective.selection == "fewest-buffers":
            return self._fewest_buffers(
                objective.min_slack, objective.require_noise
            )
        if objective.selection == "min-power":
            return self.min_power(
                objective.min_slack, objective.require_noise
            )
        if objective.selection == "power-capped":
            return self.power_capped(
                objective.power_cap, objective.require_noise
            )
        if objective.selection == "pareto":
            return self.pareto_outcomes(objective.require_noise)
        raise ValueError(
            f"unknown objective selection {objective.selection!r}"
        )

    def best(self, require_noise: Optional[bool] = None) -> DPOutcome:
        """Deprecated shim for ``select(Objective(selection="max-slack"))``."""
        warnings.warn(
            "DPResult.best is deprecated; use DPResult.select with an "
            "Objective(selection='max-slack')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._best(require_noise)

    def _best(self, require_noise: Optional[bool] = None) -> DPOutcome:
        """Maximum-slack outcome (Problem 2 when ``require_noise``).

        ``require_noise`` defaults to the engine's ``noise_aware`` flag.
        Ties go to fewer buffers, then (power runs) to less power.
        """
        pool = self._noise_pool(require_noise)
        return max(pool, key=lambda o: (o.slack, -o.buffer_count, -o.power))

    def fewest_buffers(
        self, min_slack: float = 0.0, require_noise: Optional[bool] = None
    ) -> DPOutcome:
        """Deprecated shim for ``select(Objective(selection="fewest-buffers"))``."""
        warnings.warn(
            "DPResult.fewest_buffers is deprecated; use DPResult.select "
            "with an Objective(selection='fewest-buffers')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._fewest_buffers(min_slack, require_noise)

    def _fewest_buffers(
        self, min_slack: float = 0.0, require_noise: Optional[bool] = None
    ) -> DPOutcome:
        """Problem 3: fewest buffers with noise met and slack >= min_slack.

        Falls back to the maximum-slack outcome when no outcome reaches
        ``min_slack`` (timing-infeasible nets still get their best fix,
        mirroring how BuffOpt is deployed in Section IV-C).
        """
        pool = self._noise_pool(require_noise)
        meeting = [o for o in pool if o.slack >= min_slack]
        if meeting:
            return min(meeting, key=lambda o: (o.buffer_count, -o.slack))
        return max(pool, key=lambda o: (o.slack, -o.buffer_count))

    def minimize_cost(
        self,
        cost,
        min_slack: float = 0.0,
        require_noise: Optional[bool] = None,
    ) -> DPOutcome:
        """Deprecated shim for the Lillis weighted-cost selection.

        The physical-power successor is ``select`` with a ``min-power``
        objective on a power-model run; this shim keeps the arbitrary
        per-buffer weight callback for parity.
        """
        warnings.warn(
            "DPResult.minimize_cost is deprecated; run the DP with "
            "DPOptions(power=...) and use DPResult.select with an "
            "Objective(selection='min-power')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._minimize_cost(cost, min_slack, require_noise)

    def _minimize_cost(
        self,
        cost,
        min_slack: float = 0.0,
        require_noise: Optional[bool] = None,
    ) -> DPOutcome:
        """Lillis-style cost objective over the per-count frontier.

        ``cost`` maps a :class:`~repro.library.BufferType` to a
        non-negative weight (area, leakage, ...); the outcome minimizing
        the summed weight of its insertions is returned, among outcomes
        meeting ``min_slack`` (falling back to the max-slack outcome when
        none does, like :meth:`_fewest_buffers`).  With ``cost = lambda b:
        1`` this reduces to Problem 3 exactly.

        Note the search runs over the count-indexed best-slack frontier —
        the DP optimizes slack per count, so a same-count solution with
        lower cost but worse (still sufficient) slack is not represented;
        for uniform costs this is exact, for non-uniform costs it is the
        standard frontier heuristic.  The ``min-power`` selection over a
        power-model run does not share this caveat: the engine keeps the
        per-count (slack, power) frontier.
        """
        require = self.options.noise_aware if require_noise is None else require_noise
        pool = [o for o in self.outcomes if o.noise_feasible or not require]
        if not pool:
            raise InfeasibleError(
                f"net {self.tree.name!r}: no noise-feasible solution exists"
            )
        meeting = [o for o in pool if o.slack >= min_slack]
        if not meeting:
            return max(pool, key=lambda o: (o.slack, -o.buffer_count))

        def total(outcome: DPOutcome) -> float:
            return sum(cost(ins.buffer) for ins in outcome.insertions)

        return min(meeting, key=lambda o: (total(o), -o.slack))

    def min_power(
        self, min_slack: float = 0.0, require_noise: Optional[bool] = None
    ) -> DPOutcome:
        """Least-power outcome meeting ``min_slack`` (power-model runs).

        Ties go to more slack, then fewer buffers.  Falls back to the
        maximum-slack outcome (ties to less power) when nothing reaches
        ``min_slack``, mirroring :meth:`_fewest_buffers` — a
        timing-infeasible net still gets its best fix.
        """
        self._require_power_model("min-power")
        pool = self._noise_pool(require_noise)
        meeting = [o for o in pool if o.slack >= min_slack]
        if meeting:
            return min(
                meeting, key=lambda o: (o.power, -o.slack, o.buffer_count)
            )
        return max(pool, key=lambda o: (o.slack, -o.power, -o.buffer_count))

    def power_capped(
        self, power_cap: float, require_noise: Optional[bool] = None
    ) -> DPOutcome:
        """Best-slack outcome within ``power_cap`` watts (power-model runs).

        Ties go to less power, then fewer buffers.  Unlike the slack
        floor of the other rules, the cap is hard: when no outcome fits
        it the net is infeasible under this objective and
        :class:`~repro.errors.InfeasibleError` is raised.
        """
        self._require_power_model("power-capped")
        pool = self._noise_pool(require_noise)
        meeting = [o for o in pool if o.power <= power_cap]
        if not meeting:
            raise InfeasibleError(
                f"net {self.tree.name!r}: no solution within power cap "
                f"{power_cap!r} (least-power outcome needs "
                f"{min(o.power for o in pool)!r})"
            )
        return max(meeting, key=lambda o: (o.slack, -o.power, -o.buffer_count))

    def pareto_outcomes(
        self, require_noise: Optional[bool] = None
    ) -> Tuple[DPOutcome, ...]:
        """The nondominated (slack, power, buffer-count) frontier.

        An outcome survives unless another has >= slack, <= power and
        <= buffers (one strictly better).  Returned best-slack-first.
        """
        self._require_power_model("pareto")
        pool = self._noise_pool(require_noise)
        ordered = sorted(
            pool, key=lambda o: (-o.slack, o.power, o.buffer_count)
        )
        kept: List[DPOutcome] = []
        for outcome in ordered:
            dominated = any(
                other.slack >= outcome.slack
                and other.power <= outcome.power
                and other.buffer_count <= outcome.buffer_count
                and (
                    other.slack > outcome.slack
                    or other.power < outcome.power
                    or other.buffer_count < outcome.buffer_count
                )
                for other in kept
            )
            if not dominated:
                kept.append(outcome)
        return tuple(kept)

    def _noise_pool(
        self, require_noise: Optional[bool]
    ) -> List[DPOutcome]:
        require = (
            self.options.noise_aware if require_noise is None else require_noise
        )
        pool = [o for o in self.outcomes if o.noise_feasible or not require]
        if not pool:
            raise InfeasibleError(
                f"net {self.tree.name!r}: no noise-feasible solution exists "
                "for this buffer library and segmentation"
            )
        return pool

    def _require_power_model(self, selection: str) -> None:
        if self.options.power is None:
            raise ValueError(
                f"the {selection!r} selection needs a power-model run: "
                "pass DPOptions(power=repro.library.default_power_model())"
            )

    def solution(self, outcome: DPOutcome) -> BufferSolution:
        """Materialize an outcome as a :class:`BufferSolution`.

        For sizing-enabled runs the assignment refers to the *drawn-width*
        tree; use :meth:`sized_solution` to also realize the wire widths.
        """
        return BufferSolution(
            self.tree, {ins.node: ins.buffer for ins in outcome.insertions}
        )

    def sized_solution(
        self, outcome: DPOutcome
    ) -> Tuple[RoutingTree, BufferSolution]:
        """Realize an outcome's wire widths and buffers as a new tree.

        Returns ``(resized tree, buffer solution on it)``; for runs
        without sizing this is just a copy plus :meth:`solution`.
        """
        spec = self.options.sizing or WireSizingSpec(widths=(1.0,))
        widths = {
            (choice.parent, choice.child): choice.width
            for choice in outcome.wire_choices
        }
        resized = apply_wire_widths(self.tree, widths, spec)
        return resized, BufferSolution(
            resized, {ins.node: ins.buffer for ins in outcome.insertions}
        )


# groups: (polarity, count_key) -> candidate list sorted by load ascending.
_Groups = Dict[Tuple[int, int], List[DPCandidate]]


def _presorted_timing_frontier(
    candidates: List[DPCandidate],
) -> Optional[List[DPCandidate]]:
    """The (load, slack) frontier of an already-sorted candidate list.

    Merge outputs and wire updates keep frontiers load-sorted, so most
    prune passes see a list already ordered by ``(load, -slack)`` — this
    scans it once, pruning on the fly, and returns ``None`` the moment
    an out-of-order pair shows up (the caller then falls back to the
    full sort).  The returned frontier is exactly what sort-then-scan
    would keep: ``sorted`` is stable, so a list already ordered by the
    key comes back unchanged.
    """
    kept: List[DPCandidate] = []
    append = kept.append
    best_slack = -math.inf
    prev_load = -math.inf
    prev_slack = math.inf
    for cand in candidates:
        load = cand.load
        slack = cand.slack
        if load < prev_load or (load == prev_load and slack > prev_slack):
            return None
        prev_load = load
        prev_slack = slack
        if slack > best_slack:
            append(cand)
            best_slack = slack
    return kept


class _Engine:
    def __init__(
        self,
        tree: RoutingTree,
        library: BufferLibrary,
        coupling: CouplingModel,
        options: DPOptions,
        driver: DriverCell,
    ):
        self.tree = tree
        self.library = library
        self.coupling = coupling
        self.options = options
        self.driver = driver
        self.power = options.power
        self.generated = 0
        self.kept_peak = 0
        self.dead = 0
        self.merge_forks = 0
        self.prune_presorted = 0
        self.prune_sorts = 0
        self.stats: Optional[EngineStats] = (
            EngineStats(engine="reference") if options.collect_stats else None
        )

    # -- candidate algebra ---------------------------------------------------

    def _count_key(self, count: int) -> int:
        return count if self.options.track_counts else 0

    def run(self) -> DPResult:
        if self.options.frontier_cache is not None:
            return self._run_with_cache(self.options.frontier_cache)
        if self.stats is not None:
            return self._run_instrumented()
        budget = self.options.budget
        lists: Dict[str, _Groups] = {}
        for node in self.tree.postorder():
            if node.is_sink:
                groups = self._sink_base(node)
            else:
                groups = self._merge_children(node, lists)
                self._insert_buffers(node, groups)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                self._apply_wire(node.parent_wire, groups)
            self._prune(groups)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = groups
        return self._finalize(lists[self.tree.source.name])

    def _counter_state(self) -> Tuple[int, int, int, int, int]:
        return (
            self.generated, self.dead, self.merge_forks,
            self.prune_presorted, self.prune_sorts,
        )

    def _run_with_cache(self, cache) -> DPResult:
        """The :meth:`run` visit loop with ECO subtree reuse.

        An explicit DFS stack (deep trees must not recurse) skips whole
        subtrees whose fingerprint the cache answers, restoring their
        frontier *and* their candidate-accounting deltas so the result —
        outcomes, ``candidates_generated``, ``candidates_kept_peak`` —
        is bit-identical to a cold run.  Every node computed the long
        way is stored back, so a cold run with an empty cache doubles as
        the populate pass.
        """
        from .eco import FrontierSnapshot, context_key, subtree_fingerprints

        budget = self.options.budget
        fingerprints = subtree_fingerprints(
            self.tree,
            context_key(self.library, self.coupling, self.options),
        )
        lists: Dict[str, _Groups] = {}
        counters_at_start: Dict[str, Tuple[int, int, int, int, int]] = {}
        subtree_nodes: Dict[str, int] = {}
        subtree_peak: Dict[str, int] = {}
        stack: List[Tuple[Node, bool]] = [(self.tree.source, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                snapshot = cache.lookup(fingerprints[node.name])
                if snapshot is not None:
                    lists[node.name] = snapshot.restore_groups()
                    self.generated += snapshot.generated
                    self.dead += snapshot.dead
                    self.merge_forks += snapshot.merge_forks
                    self.prune_presorted += snapshot.prune_presorted
                    self.prune_sorts += snapshot.prune_sorts
                    self.kept_peak = max(self.kept_peak, snapshot.kept_peak)
                    subtree_nodes[node.name] = snapshot.node_count
                    subtree_peak[node.name] = snapshot.kept_peak
                    if budget is not None:
                        budget.charge(
                            self.generated, self.tree.name, node.name
                        )
                    continue
                counters_at_start[node.name] = self._counter_state()
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))
                continue
            if node.is_sink:
                groups = self._sink_base(node)
                child_nodes = 0
                child_peak = 0
            else:
                groups = self._merge_children(node, lists)
                self._insert_buffers(node, groups)
                child_nodes = 0
                child_peak = 0
                for child in node.children:
                    del lists[child.name]
                    child_nodes += subtree_nodes.pop(child.name)
                    child_peak = max(
                        child_peak, subtree_peak.pop(child.name)
                    )
            if node.parent_wire is not None:
                self._apply_wire(node.parent_wire, groups)
            _, frontier_total = self._prune(groups)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = groups
            node_count = child_nodes + 1
            peak = max(child_peak, frontier_total)
            subtree_nodes[node.name] = node_count
            subtree_peak[node.name] = peak
            before = counters_at_start.pop(node.name)
            # The tuples freeze the list *contents*; the candidates and
            # their chains are immutable and shared, never copied.
            cache.store(fingerprints[node.name], FrontierSnapshot(
                groups=tuple(
                    (key, tuple(candidates))
                    for key, candidates in groups.items()
                ),
                node_count=node_count,
                generated=self.generated - before[0],
                dead=self.dead - before[1],
                merge_forks=self.merge_forks - before[2],
                prune_presorted=self.prune_presorted - before[3],
                prune_sorts=self.prune_sorts - before[4],
                kept_peak=peak,
            ))
        return self._finalize(lists[self.tree.source.name])

    def _run_instrumented(self) -> DPResult:
        """The same visit loop as :meth:`run`, with telemetry around each
        phase.  Kept separate so plain runs pay zero instrumentation cost;
        candidate arithmetic is shared, so both paths return identical
        solutions (asserted by the differential harness)."""
        stats = self.stats
        assert stats is not None
        budget = self.options.budget
        lists: Dict[str, _Groups] = {}
        for node in self.tree.postorder():
            record = stats.open_node(node.name)
            generated_before = self.generated
            dead_before = self.dead
            forks_before = self.merge_forks
            if node.is_sink:
                groups = self._sink_base(node)
            else:
                start = perf_counter()
                groups = self._merge_children(node, lists)
                stats.add_phase("merge", perf_counter() - start)
                start = perf_counter()
                self._insert_buffers(node, groups)
                stats.add_phase("buffering", perf_counter() - start)
                for child in node.children:
                    del lists[child.name]
            if node.parent_wire is not None:
                start = perf_counter()
                self._apply_wire(node.parent_wire, groups)
                stats.add_phase("wire", perf_counter() - start)
            start = perf_counter()
            dropped, frontier = self._prune(groups)
            stats.add_phase("prune", perf_counter() - start)
            record.generated = self.generated - generated_before
            record.dead = self.dead - dead_before
            record.merge_forks = self.merge_forks - forks_before
            record.pruned = dropped
            record.frontier = frontier
            stats.candidates_pruned += dropped
            stats.frontier_peak = max(stats.frontier_peak, frontier)
            if budget is not None:
                budget.charge(self.generated, self.tree.name, node.name)
            lists[node.name] = groups
        start = perf_counter()
        result = self._finalize(lists[self.tree.source.name])
        stats.add_phase("finalize", perf_counter() - start)
        stats.candidates_generated = self.generated
        stats.candidates_dead = self.dead
        stats.merge_forks = self.merge_forks
        stats.prune_presorted = self.prune_presorted
        stats.prune_sorts = self.prune_sorts
        if budget is not None:
            stats.budget_checks = budget.checks
            stats.budget_candidate_pressure = budget.candidate_pressure
            stats.budget_time_pressure = budget.time_pressure
        return result

    def _sink_base(self, node: Node) -> _Groups:
        assert node.sink is not None
        cand = DPCandidate(
            load=node.sink.capacitance,
            slack=node.sink.required_arrival,
            current=0.0,
            noise_slack=node.sink.noise_margin,
            polarity=0,
            chain=None,
        )
        self.generated += 1
        return {(0, 0): [cand]}

    def _merge_children(
        self, node: Node, lists: Mapping[str, _Groups]
    ) -> _Groups:
        children = node.children
        assert children, f"internal node {node.name!r} without children"
        groups = lists[children[0].name]
        for child in children[1:]:
            groups = self._merge_pair(groups, lists[child.name])
        return groups

    def _merge_pair(self, left: _Groups, right: _Groups) -> _Groups:
        merged: _Groups = {}
        merge = self._cross_merge if self.power is not None else self._linear_merge
        for (pol_l, count_l), list_l in left.items():
            for (pol_r, count_r), list_r in right.items():
                if self.options.enforce_polarity and pol_l != pol_r:
                    continue
                count = count_l + count_r
                if (
                    self.options.max_buffers is not None
                    and self.options.track_counts
                    and count > self.options.max_buffers
                ):
                    continue
                polarity = pol_l if self.options.enforce_polarity else 0
                key = (polarity, self._count_key(count))
                self.merge_forks += 1
                merged.setdefault(key, []).extend(merge(list_l, list_r))
        return merged

    def _linear_merge(
        self, left: List[DPCandidate], right: List[DPCandidate]
    ) -> List[DPCandidate]:
        """Van Ginneken's |L|+|R| merge over two load-sorted frontiers."""
        out: List[DPCandidate] = []
        i = j = 0
        while i < len(left) and j < len(right):
            a, b = left[i], right[j]
            out.append(
                DPCandidate(
                    load=a.load + b.load,
                    slack=min(a.slack, b.slack),
                    current=a.current + b.current,
                    noise_slack=min(a.noise_slack, b.noise_slack),
                    polarity=a.polarity,
                    chain=Chain.concat(a.chain, b.chain),
                    wire_chain=Chain.concat(a.wire_chain, b.wire_chain),
                )
            )
            self.generated += 1
            # Advance the side whose slack binds; it can only improve by
            # paying more load.  Advancing the other side cannot help.
            if a.slack < b.slack:
                i += 1
            elif b.slack < a.slack:
                j += 1
            else:
                i += 1
                j += 1
        return out

    def _cross_merge(
        self, left: List[DPCandidate], right: List[DPCandidate]
    ) -> List[DPCandidate]:
        """Full |L|x|R| merge, used when the power accumulator is live.

        The staircase walk of :meth:`_linear_merge` is only exact for a
        two-dimensional (load, slack) frontier: it pairs each candidate
        with the single partner whose slack binds.  With power as a
        third axis the optimal partner may instead trade slack for
        power, so every pairing is generated and the following prune
        pass keeps the three-dimensional frontier.
        """
        out: List[DPCandidate] = []
        for a in left:
            for b in right:
                out.append(
                    DPCandidate(
                        load=a.load + b.load,
                        slack=min(a.slack, b.slack),
                        current=a.current + b.current,
                        noise_slack=min(a.noise_slack, b.noise_slack),
                        polarity=a.polarity,
                        chain=Chain.concat(a.chain, b.chain),
                        wire_chain=Chain.concat(a.wire_chain, b.wire_chain),
                        power=a.power + b.power,
                    )
                )
                self.generated += 1
        return out

    def _insert_buffers(self, node: Node, groups: _Groups) -> None:
        if not node.feasible or node.is_source:
            return
        track = self.options.track_counts
        noise_aware = self.options.noise_aware
        max_buffers = self.options.max_buffers
        prices = self.options.site_prices
        power_model = self.power
        # Uniform across candidates and buffer types at this node, so the
        # argmax below is unaffected; subtracting 0.0 is bit-identical.
        penalty = prices.get(node.name, 0.0) if prices else 0.0
        inf = math.inf
        additions: List[Tuple[Tuple[int, int], DPCandidate]] = []
        for (polarity, group_count), candidates in groups.items():
            if track and max_buffers is not None and group_count + 1 > max_buffers:
                continue
            # Per-candidate scalars, hoisted out of the per-buffer loop.
            loads = [c.load for c in candidates]
            slacks = [c.slack for c in candidates]
            # Largest gate resistance each candidate tolerates: NS / I.
            if noise_aware:
                limits = [
                    (c.noise_slack / c.current) if c.current > 0 else inf
                    for c in candidates
                ]
            else:
                limits = None
            counts = None if track else [c.count for c in candidates]
            powers = (
                [c.power for c in candidates]
                if power_model is not None
                else None
            )
            for buffer in self.library:
                resistance = buffer.resistance
                if powers is None:
                    best_slack = -inf
                    best_index = -1
                    for index in range(len(candidates)):
                        if limits is not None and resistance > limits[index]:
                            continue  # Step 5: never create a noisy candidate.
                        slack = slacks[index] - resistance * loads[index]
                        if slack > best_slack:
                            best_slack = slack
                            best_index = index
                    if best_index < 0:
                        continue
                    donors: List[Tuple[float, int]] = [(best_slack, best_index)]
                    buffer_power = 0.0
                else:
                    # Power-active: the scalar argmax would discard donors
                    # that trade slack for power, so keep one buffered
                    # candidate per (drive-slack, power)-Pareto donor.
                    entries = []
                    for index in range(len(candidates)):
                        if limits is not None and resistance > limits[index]:
                            continue
                        entries.append(
                            (
                                slacks[index] - resistance * loads[index],
                                powers[index],
                                index,
                            )
                        )
                    if not entries:
                        continue
                    entries.sort(key=lambda entry: (entry[1], -entry[0]))
                    donors = []
                    best_seen = -inf
                    for drive_slack, _, index in entries:
                        if drive_slack > best_seen:
                            donors.append((drive_slack, index))
                            best_seen = drive_slack
                    buffer_power = power_model.buffer_power(buffer)
                new_pol = (
                    polarity ^ (1 if buffer.inverting else 0)
                    if self.options.enforce_polarity
                    else 0
                )
                for best_slack, best_index in donors:
                    cand = candidates[best_index]
                    new_count = (
                        group_count if track else counts[best_index]
                    ) + 1
                    new = DPCandidate(
                        load=buffer.input_capacitance,
                        slack=best_slack - buffer.intrinsic_delay - penalty,
                        current=0.0,
                        noise_slack=buffer.noise_margin,
                        polarity=new_pol,
                        chain=Chain.push(
                            cand.chain, Insertion(node.name, buffer)
                        ),
                        wire_chain=cand.wire_chain,
                        power=cand.power + buffer_power,
                    )
                    self.generated += 1
                    additions.append(
                        ((new_pol, self._count_key(new_count)), new)
                    )
        for key, cand in additions:
            groups.setdefault(key, []).append(cand)

    def _apply_wire(self, wire: Wire, groups: _Groups) -> None:
        base_i = self.coupling.wire_current(wire)
        sizing = self.options.sizing
        power_model = self.power
        if sizing is None:
            variants = [(None, wire.resistance, wire.capacitance, base_i)]
        else:
            # Lillis: realize the wire at every menu width; the pruning
            # pass keeps the (load, slack) frontier of the variants.
            variants = []
            for width in sizing.widths:
                scale = sizing.capacitance_scale(width)
                variants.append(
                    (
                        None if width == 1.0 else width,
                        sizing.resistance(wire.resistance, width),
                        sizing.capacitance(wire.capacitance, width),
                        base_i * scale,
                    )
                )
        # The segment switches no matter how the subtree is buffered, so
        # its power is uniform across the node's candidates; it still
        # rides each accumulator so branch totals merge by addition.
        variants = [
            (
                width,
                resistance,
                capacitance,
                wire_i,
                power_model.wire_power(capacitance)
                if power_model is not None
                else 0.0,
            )
            for width, resistance, capacitance, wire_i in variants
        ]
        for key, candidates in list(groups.items()):
            updated: List[DPCandidate] = []
            for cand in candidates:
                for width, resistance, capacitance, wire_i, wire_power in variants:
                    noise_slack = cand.noise_slack - resistance * (
                        wire_i / 2.0 + cand.current
                    )
                    if self.options.noise_aware and noise_slack < 0.0:
                        self.dead += 1
                        continue  # dead: no gate can ever drive it
                    wire_chain = cand.wire_chain
                    if width is not None:
                        wire_chain = Chain.push(
                            wire_chain,
                            WireChoice(wire.parent.name, wire.child.name, width),
                        )
                    updated.append(
                        DPCandidate(
                            load=cand.load + capacitance,
                            slack=cand.slack
                            - resistance * (capacitance / 2.0 + cand.load),
                            current=cand.current + wire_i,
                            noise_slack=noise_slack,
                            polarity=cand.polarity,
                            chain=cand.chain,
                            wire_chain=wire_chain,
                            power=cand.power + wire_power,
                        )
                    )
                    if sizing is not None:
                        self.generated += 1
            if updated:
                groups[key] = updated
            else:
                del groups[key]

    def _prune(self, groups: _Groups) -> Tuple[int, int]:
        """Prune every group in place; return (dropped, surviving) counts."""
        total = 0
        dropped = 0
        timing = self.options.prune == "timing"
        power_active = self.power is not None
        for key, candidates in list(groups.items()):
            if power_active:
                # Power joins the dominance key only here — power-off
                # runs never reach these branches, preserving bit
                # identity and the presorted-scan fast path.
                self.prune_sorts += 1
                kept = (
                    self._power_timing_frontier(candidates)
                    if timing
                    else self._prune_pareto_power(candidates)
                )
            elif timing:
                kept = _presorted_timing_frontier(candidates)
                if kept is None:
                    self.prune_sorts += 1
                    kept = self._sorted_timing_frontier(candidates)
                else:
                    self.prune_presorted += 1
            else:
                kept = self._prune_pareto(candidates)
            dropped += len(candidates) - len(kept)
            groups[key] = kept
            total += len(kept)
        self.kept_peak = max(self.kept_peak, total)
        return dropped, total

    @staticmethod
    def _prune_timing(candidates: List[DPCandidate]) -> List[DPCandidate]:
        """Keep the (load, slack) frontier: rising load must buy rising slack.

        Frontiers are maintained load-sorted by the merge and wire
        passes, so the common case is a single pruning scan with no sort
        at all (:func:`_presorted_timing_frontier`); only lists thrown
        out of order — buffered candidates appended at the tail, or
        equal-load ties reordered by a wire update — pay the sort.
        """
        kept = _presorted_timing_frontier(candidates)
        if kept is not None:
            return kept
        return _Engine._sorted_timing_frontier(candidates)

    @staticmethod
    def _sorted_timing_frontier(
        candidates: List[DPCandidate],
    ) -> List[DPCandidate]:
        """The sort-then-scan fallback for out-of-order candidate lists."""
        ordered = sorted(candidates, key=lambda c: (c.load, -c.slack))
        kept: List[DPCandidate] = []
        best_slack = -math.inf
        for cand in ordered:
            if cand.slack > best_slack:
                kept.append(cand)
                best_slack = cand.slack
        return kept

    @staticmethod
    def _power_timing_frontier(
        candidates: List[DPCandidate],
    ) -> List[DPCandidate]:
        """(load, slack, power) dominance — the timing rule's power axis.

        Sorted by load ascending, every kept candidate already has load
        <= the scanned one, so dominance reduces to finding a kept
        candidate with slack >= and power <= (first-seen wins exact
        ties).  The kept list is scanned linearly: power frontiers stay
        small enough that this beats fancier structures, mirroring the
        pareto ablation's shape.
        """
        ordered = sorted(
            candidates, key=lambda c: (c.load, -c.slack, c.power)
        )
        kept: List[DPCandidate] = []
        for cand in ordered:
            dominated = any(
                other.slack >= cand.slack and other.power <= cand.power
                for other in kept
            )
            if not dominated:
                kept.append(cand)
        return kept

    @staticmethod
    def _prune_pareto_power(
        candidates: List[DPCandidate],
    ) -> List[DPCandidate]:
        """5-field dominance: the pareto ablation plus the power axis."""
        ordered = sorted(
            candidates,
            key=lambda c: (c.load, -c.slack, c.current, -c.noise_slack, c.power),
        )
        kept: List[DPCandidate] = []
        for cand in ordered:
            dominated = any(
                other.load <= cand.load
                and other.slack >= cand.slack
                and other.current <= cand.current
                and other.noise_slack >= cand.noise_slack
                and other.power <= cand.power
                for other in kept
            )
            if not dominated:
                kept.append(cand)
        return kept

    @staticmethod
    def _prune_pareto(candidates: List[DPCandidate]) -> List[DPCandidate]:
        """4-field dominance (load, slack, current, noise slack) — ablation."""
        ordered = sorted(
            candidates,
            key=lambda c: (c.load, -c.slack, c.current, -c.noise_slack),
        )
        kept: List[DPCandidate] = []
        for cand in ordered:
            dominated = any(
                other.load <= cand.load
                and other.slack >= cand.slack
                and other.current <= cand.current
                and other.noise_slack >= cand.noise_slack
                for other in kept
            )
            if not dominated:
                kept.append(cand)
        return kept

    def _finalize(self, groups: _Groups) -> DPResult:
        has_inverters = any(b.inverting for b in self.library)
        finalized: List[DPOutcome] = []
        for (polarity, _), candidates in groups.items():
            if self.options.enforce_polarity and has_inverters and polarity != 0:
                continue
            for cand in candidates:
                slack = cand.slack - self.driver.gate_delay(cand.load)
                noise_ok = (
                    self.driver.resistance * cand.current <= cand.noise_slack
                )
                if self.options.noise_aware and not noise_ok:
                    continue  # Step 3/4 of Fig. 10: reject noisy finals.
                finalized.append(
                    DPOutcome(
                        buffer_count=cand.count,
                        slack=slack,
                        noise_feasible=noise_ok,
                        insertions=cand.insertions(),
                        wire_choices=cand.wire_choices(),
                        power=cand.power,
                    )
                )
        if self.power is not None:
            # Per-count (slack, power) frontier, ordered by rising power
            # (and hence rising slack) within each count.
            per_count: Dict[int, List[DPOutcome]] = {}
            for outcome in finalized:
                per_count.setdefault(outcome.buffer_count, []).append(outcome)
            frontier: List[DPOutcome] = []
            for count in sorted(per_count):
                best_seen = -math.inf
                for outcome in sorted(
                    per_count[count], key=lambda o: (o.power, -o.slack)
                ):
                    if outcome.slack > best_seen:
                        frontier.append(outcome)
                        best_seen = outcome.slack
            ordered = tuple(frontier)
        else:
            outcomes: Dict[int, DPOutcome] = {}
            for outcome in finalized:
                kept = outcomes.get(outcome.buffer_count)
                if kept is None or outcome.slack > kept.slack:
                    outcomes[outcome.buffer_count] = outcome
            ordered = tuple(outcomes[k] for k in sorted(outcomes))
        return DPResult(
            tree=self.tree,
            outcomes=ordered,
            options=self.options,
            candidates_generated=self.generated,
            candidates_kept_peak=self.kept_peak,
            stats=self.stats,
        )


def run_dp(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: Optional[CouplingModel] = None,
    options: Optional[DPOptions] = None,
    driver: Optional[DriverCell] = None,
) -> DPResult:
    """Run the DP over ``tree`` and return per-count best outcomes.

    ``coupling`` defaults to the silent model (all noise currents zero),
    which is the right setting for pure DelayOpt; ``driver`` defaults to
    ``tree.driver``.  ``options.engine`` selects the implementation:
    ``"reference"`` (this module), ``"fast"``
    (:mod:`repro.core.fast_engine`, bit-identical to the reference),
    ``"lishi"`` (:mod:`repro.core.lishi_engine`, semantically equivalent
    within float tolerance), or ``"auto"``
    (:func:`resolve_auto_engine` picks "fast" or "lishi" per net).
    """
    options = options or DPOptions()
    coupling = coupling or CouplingModel.silent()
    if driver is None:
        if tree.driver is None:
            raise InfeasibleError(
                f"tree {tree.name!r} has no driver cell; pass driver="
            )
        driver = tree.driver
    engine_name = options.engine
    if engine_name == "auto":
        engine_name = resolve_auto_engine(tree, library)
    if engine_name == "fast":
        from .fast_engine import FastEngine

        engine = FastEngine(tree, library, coupling, options, driver)
    elif engine_name == "lishi":
        from .lishi_engine import LiShiEngine

        engine = LiShiEngine(tree, library, coupling, options, driver)
    else:
        engine = _Engine(tree, library, coupling, options, driver)
    if options.profile is not None:
        # Wraps this instance's phase methods only; unprofiled runs skip
        # the whole branch (the no-overhead-when-off contract).
        options.profile.install(engine)
    return engine.run()


def resolve_auto_engine(tree: RoutingTree, library: BufferLibrary) -> str:
    """Resolve ``engine="auto"`` for one net: ``"fast"`` or ``"lishi"``.

    The heuristic is the product *sink count × buffer-library size* —
    the factors that size the per-node frontier and the per-node
    buffering scan — against :data:`AUTO_LISHI_THRESHOLD`.  The
    resolution is deliberately per-net state-free (no timing, no
    feedback), so a batch run's checkpoint fingerprint stays independent
    of it: resuming a journal under a different engine (or a different
    auto resolution) is always legal, because every engine answers
    semantically alike.
    """
    return (
        "lishi"
        if len(tree.sinks) * len(library) >= AUTO_LISHI_THRESHOLD
        else "fast"
    )
