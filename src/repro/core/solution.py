"""Buffer-insertion solution objects.

Two flavors match the paper's two algorithm families:

* :class:`BufferSolution` — *discrete*: buffers sit on existing internal
  nodes of a (usually pre-segmented) tree.  Produced by Van Ginneken-style
  algorithms (DelayOpt, BuffOpt); consumed directly by the timing/noise
  analyses via :meth:`BufferSolution.buffer_map`.
* :class:`ContinuousSolution` — buffers sit at computed distances along
  wires (Algorithms 1 and 2 place each buffer at its exact maximal
  Theorem-1 position).  :meth:`ContinuousSolution.realize` splits the
  wires and returns an equivalent ``(tree, BufferSolution)`` pair so the
  same analyses apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..errors import TreeStructureError
from ..library.buffers import BufferType
from ..tree.topology import Node, RoutingTree, Wire
from ..tree.transform import copy_node, copy_wire, fresh_name


@dataclass(frozen=True)
class BufferSolution:
    """Buffers assigned to named internal nodes of ``tree``."""

    tree: RoutingTree
    assignment: Mapping[str, BufferType]

    def __post_init__(self) -> None:
        for name in self.assignment:
            node = self.tree.node(name)
            if not node.is_internal:
                raise TreeStructureError(
                    f"buffer assigned to non-internal node {name!r}"
                )
            if not node.feasible:
                raise TreeStructureError(
                    f"buffer assigned to infeasible node {name!r}"
                )

    @property
    def buffer_count(self) -> int:
        """The paper's |M| — number of inserted buffers."""
        return len(self.assignment)

    def buffer_map(self) -> Mapping[str, BufferType]:
        """The mapping consumed by the timing/noise analyses."""
        return self.assignment

    def sink_inversions(self) -> Dict[str, int]:
        """Number of inverting buffers on the source-to-sink path, per sink.

        Even parity means the sink sees the source polarity (relevant when
        the library mixes inverting and non-inverting repeaters).
        """
        out: Dict[str, int] = {}
        for sink in self.tree.sinks:
            inversions = 0
            for wire in self.tree.path_to_source(sink):
                buffer = self.assignment.get(wire.child.name)
                if buffer is not None and buffer.inverting:
                    inversions += 1
            out[sink.name] = inversions
        return out

    def describe(self) -> str:
        if not self.assignment:
            return f"net {self.tree.name}: no buffers"
        parts = ", ".join(
            f"{name}:{buf.name}" for name, buf in sorted(self.assignment.items())
        )
        return f"net {self.tree.name}: {self.buffer_count} buffers ({parts})"


@dataclass(frozen=True)
class PlacedBuffer:
    """A buffer at ``distance_from_child`` meters up a specific wire.

    ``0`` puts the buffer right at the wire's child end (just above a sink
    or branch node); ``wire length`` puts it at the parent end ("right
    after the source" in Algorithm 1 Step 5).
    """

    parent: str
    child: str
    distance_from_child: float
    buffer: BufferType

    def __post_init__(self) -> None:
        if self.distance_from_child < 0:
            raise TreeStructureError(
                f"distance_from_child must be >= 0, got {self.distance_from_child}"
            )


@dataclass(frozen=True)
class ContinuousSolution:
    """Buffers at exact positions along wires of ``tree``."""

    tree: RoutingTree
    placements: Tuple[PlacedBuffer, ...]

    @property
    def buffer_count(self) -> int:
        return len(self.placements)

    def realize(self) -> Tuple[RoutingTree, BufferSolution]:
        """Split wires at the placement points; return the buffered tree.

        The returned tree is a copy with one new feasible internal node per
        placement (named ``<parent>__buf<k>__<child>``); the accompanying
        :class:`BufferSolution` assigns the buffers to those nodes.
        """
        by_wire: Dict[Tuple[str, str], List[PlacedBuffer]] = {}
        for placement in self.placements:
            key = (placement.parent, placement.child)
            by_wire.setdefault(key, []).append(placement)

        copies: Dict[str, Node] = {n.name: copy_node(n) for n in self.tree.nodes()}
        taken = set(copies)
        new_nodes: List[Node] = list(copies.values())
        new_wires: List[Wire] = []
        assignment: Dict[str, BufferType] = {}

        for wire in self.tree.wires():
            key = (wire.parent.name, wire.child.name)
            placements = by_wire.pop(key, [])
            parent_copy = copies[wire.parent.name]
            child_copy = copies[wire.child.name]
            if not placements:
                new_wires.append(copy_wire(wire, parent_copy, child_copy))
                continue
            placements.sort(key=lambda p: p.distance_from_child, reverse=True)
            for placement in placements:
                if placement.distance_from_child > wire.length + 1e-12:
                    raise TreeStructureError(
                        f"placement {placement} beyond wire length {wire.length}"
                    )
            # Walk parent -> child, cutting at each placement.
            cursor = parent_copy
            consumed = 0.0
            for index, placement in enumerate(placements, start=1):
                span = (wire.length - placement.distance_from_child) - consumed
                if span < -1e-12:
                    raise TreeStructureError(
                        f"placements on wire {wire.name} out of order"
                    )
                span = max(span, 0.0)
                name = fresh_name(
                    f"{wire.parent.name}__buf{index}__{wire.child.name}", taken
                )
                taken.add(name)
                site = Node(name=name, feasible=True,
                            position=_interp(wire, consumed + span))
                new_nodes.append(site)
                new_wires.append(_piece(wire, cursor, site, span))
                assignment[name] = placement.buffer
                cursor = site
                consumed += span
            new_wires.append(
                _piece(wire, cursor, child_copy, wire.length - consumed)
            )
        if by_wire:
            missing = sorted(by_wire)
            raise TreeStructureError(f"placements on unknown wires: {missing}")

        buffered = RoutingTree(
            new_nodes, new_wires, driver=self.tree.driver, name=self.tree.name
        )
        return buffered, BufferSolution(buffered, assignment)

    def describe(self) -> str:
        if not self.placements:
            return f"net {self.tree.name}: no buffers"
        parts = ", ".join(
            f"{p.buffer.name}@{p.parent}->{p.child}+{p.distance_from_child:.3g}m"
            for p in self.placements
        )
        return f"net {self.tree.name}: {self.buffer_count} buffers ({parts})"


def _piece(wire: Wire, parent: Node, child: Node, length: float) -> Wire:
    """A proportional slice of ``wire`` between two (new) endpoints."""
    length = max(length, 0.0)
    share = 0.0 if wire.length == 0 else length / wire.length
    return Wire(
        parent=parent,
        child=child,
        length=length,
        resistance=wire.resistance * share,
        capacitance=wire.capacitance * share,
        current=None if wire.current is None else wire.current * share,
        coupling_ratio=wire.coupling_ratio,
        slope=wire.slope,
    )


def _interp(wire: Wire, distance_from_parent: float):
    if wire.parent.position is None or wire.child.position is None or wire.length == 0:
        return None
    fraction = distance_from_parent / wire.length
    (x0, y0), (x1, y1) = wire.parent.position, wire.child.position
    return (x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction)
