"""Incremental re-optimization (ECO): reuse frontiers of unchanged subtrees.

An engineering change order touches one corner of a net — a resized
wire, a moved sink, a re-routed branch — yet a cold DP run recomputes
every frontier from the leaves up.  The Van Ginneken recurrence makes
the waste precise: the candidate frontier the engine stores at a node
(the groups *after* the node's parent wire has been applied) is a pure
function of (a) the subtree hanging below that node, (b) the node's
parent wire, and (c) the run context — buffer library, coupling model,
and the solution-relevant :class:`~repro.core.dp.DPOptions` fields.  The
driver only enters at finalize, so it is deliberately *not* part of the
key.

:func:`subtree_fingerprints` canonicalizes exactly those inputs into one
SHA-256 per node, bottom-up; :class:`FrontierCache` maps fingerprints to
frontier snapshots.  A reference-engine run handed a cache
(``DPOptions(frontier_cache=...)``) stores a snapshot at every node it
visits and, on later runs, restores whole unchanged subtrees without
descending into them — bit-identically, counters included, because each
snapshot carries the subtree's candidate-accounting deltas alongside its
(immutable, structurally shared) candidate lists.

Cache effectiveness is observable: :meth:`FrontierCache.bind_metrics`
wires hit/miss counting onto ``buffopt_eco_hits_total`` /
``buffopt_eco_misses_total`` of a :class:`~repro.obs.MetricsRegistry`,
and :attr:`FrontierCache.reused_nodes` / :attr:`FrontierCache.computed_nodes`
give the frontier-reuse fraction the ECO acceptance gate asserts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..library.buffers import BufferLibrary
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree

#: obs counter names for cache effectiveness (rows in docs/observability.md).
ECO_HITS_COUNTER = "buffopt_eco_hits_total"
ECO_MISSES_COUNTER = "buffopt_eco_misses_total"


def _f(value: Optional[float]) -> str:
    """Exact, canonical float token (``repr`` round-trips doubles)."""
    return "~" if value is None else repr(float(value))


def context_key(
    library: BufferLibrary,
    coupling: CouplingModel,
    options,
) -> str:
    """Canonical digest of everything that shapes frontiers besides the tree.

    ``options`` is a :class:`~repro.core.dp.DPOptions`; only its
    solution-relevant fields participate (``collect_stats`` / ``budget``
    / ``profile`` never change candidate arithmetic, and the engine is
    pinned to ``"reference"`` by :func:`~repro.core.dp.run_dp` anyway).
    """
    parts: List[str] = []
    for buffer in library:
        parts.append(
            f"b:{buffer.name}:{_f(buffer.resistance)}:"
            f"{_f(buffer.input_capacitance)}:{_f(buffer.intrinsic_delay)}:"
            f"{_f(buffer.noise_margin)}:{int(buffer.inverting)}"
        )
    parts.append(
        f"c:{_f(coupling.coupling_ratio)}:{_f(coupling.slope)}"
    )
    sizing = "~" if options.sizing is None else ",".join(
        _f(width) for width in options.sizing.widths
    )
    parts.append(
        f"o:{int(options.noise_aware)}:{int(options.track_counts)}:"
        f"{'~' if options.max_buffers is None else options.max_buffers}:"
        f"{options.prune}:{int(options.enforce_polarity)}:{sizing}"
    )
    # Site prices shift buffered-candidate slacks, so a priced run must
    # never reuse frontiers cached under different (or no) prices.  Only
    # nonzero entries participate: zero prices are bit-identical to
    # absent ones, so their cache contexts may legitimately coincide.
    prices = getattr(options, "site_prices", None)
    if prices:
        priced = ",".join(
            f"{name}={_f(price)}"
            for name, price in sorted(prices.items())
            if price != 0.0
        )
        if priced:
            parts.append(f"p:{priced}")
    # A live power model changes merge/prune behavior and the stored
    # power accumulators, so power runs never share frontiers with
    # power-off runs (or with runs under different model parameters).
    power = getattr(options, "power", None)
    if power is not None:
        parts.append(
            f"w:{_f(power.activity)}:{_f(power.frequency)}:"
            f"{_f(power.short_circuit_fraction)}:"
            f"{_f(power.technology.vdd)}"
        )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


def subtree_fingerprints(
    tree: RoutingTree, context: str
) -> Dict[str, str]:
    """One canonical SHA-256 per node, keyed by node name, bottom-up.

    A node's fingerprint covers its subtree's full physical content —
    names (they appear in insertion records), feasibility flags, sink
    electricals, every wire's parameters *including the node's own
    parent wire* (the stored frontier is post-wire) — plus ``context``.
    Children hash in child order, because merge order is part of the
    recurrence.
    """
    fingerprints: Dict[str, str] = {}
    for node in tree.postorder():
        hasher = hashlib.sha256()
        hasher.update(context.encode("utf-8"))
        hasher.update(f"|n:{node.name}:{int(node.feasible)}".encode("utf-8"))
        if node.sink is not None:
            hasher.update(
                f"|s:{_f(node.sink.capacitance)}:"
                f"{_f(node.sink.noise_margin)}:"
                f"{_f(node.sink.required_arrival)}".encode("utf-8")
            )
        if node.is_source:
            hasher.update(b"|src")
        wire = node.parent_wire
        if wire is not None:
            hasher.update(
                f"|w:{_f(wire.length)}:{_f(wire.resistance)}:"
                f"{_f(wire.capacitance)}:{_f(wire.current)}:"
                f"{_f(wire.coupling_ratio)}:{_f(wire.slope)}".encode("utf-8")
            )
        for child in node.children:
            hasher.update(b"|k:")
            hasher.update(fingerprints[child.name].encode("utf-8"))
        fingerprints[node.name] = hasher.hexdigest()
    return fingerprints


@dataclass(frozen=True)
class FrontierSnapshot:
    """One node's stored frontier plus its subtree's accounting deltas.

    ``groups`` holds the engine's post-wire, post-prune candidate lists
    as immutable tuples; the :class:`~repro.core.dp.DPCandidate` objects
    themselves (and their persistent chains) are shared, never copied —
    they are frozen, and the engine never mutates a candidate in place.
    The counter deltas make a cache-hit run *bit-identical* to the cold
    run, telemetry included: restoring adds back exactly what the
    skipped subtree would have generated, killed, and pruned.
    """

    groups: Tuple[Tuple[Tuple[int, int], Tuple], ...]
    #: nodes in the subtree (the reuse-fraction currency).
    node_count: int
    generated: int
    dead: int
    merge_forks: int
    prune_presorted: int
    prune_sorts: int
    #: max post-prune frontier total over the subtree's nodes.
    kept_peak: int

    def restore_groups(self):
        """Fresh mutable groups for the engine.

        The *containers* must be new on every restore: ``_merge_children``
        aliases a lone child's groups dict and ``_insert_buffers`` /
        ``_prune`` mutate the lists, so sharing them across runs would
        let one run corrupt another's cache.
        """
        return {key: list(candidates) for key, candidates in self.groups}


@dataclass
class FrontierCache:
    """Fingerprint -> :class:`FrontierSnapshot` store with hit accounting.

    One cache serves one net across edits (fingerprints are
    content-addressed, so stale entries are unreachable rather than
    wrong); sharing a cache across *different* nets is safe for the same
    reason but grows it without bound — callers managing fleets should
    key caches per net and drop them with the net.
    """

    snapshots: Dict[str, FrontierSnapshot] = field(default_factory=dict)
    #: subtree restores / nodes computed the long way, across all runs.
    hits: int = 0
    misses: int = 0
    #: nodes covered by restored subtrees vs. visited individually.
    reused_nodes: int = 0
    computed_nodes: int = 0
    _metrics: Optional[object] = None

    def bind_metrics(self, metrics) -> "FrontierCache":
        """Mirror hit/miss counts onto ``metrics`` (a
        :class:`~repro.obs.MetricsRegistry`); returns ``self``."""
        self._metrics = metrics
        return self

    def lookup(self, fingerprint: str) -> Optional[FrontierSnapshot]:
        """The snapshot for ``fingerprint``, counting a hit (or nothing —
        misses are counted per *computed node* via :meth:`store`, so the
        hit/miss ratio reflects work saved, not probe traffic)."""
        snapshot = self.snapshots.get(fingerprint)
        if snapshot is not None:
            self.hits += 1
            self.reused_nodes += snapshot.node_count
            if self._metrics is not None:
                self._metrics.counter(
                    ECO_HITS_COUNTER,
                    "ECO frontier-cache subtree restores",
                ).inc()
        return snapshot

    def store(self, fingerprint: str, snapshot: FrontierSnapshot) -> None:
        self.misses += 1
        self.computed_nodes += 1
        if self._metrics is not None:
            self._metrics.counter(
                ECO_MISSES_COUNTER,
                "ECO frontier-cache nodes computed the long way",
            ).inc()
        self.snapshots[fingerprint] = snapshot

    def __len__(self) -> int:
        return len(self.snapshots)

    def reuse_fraction(self) -> float:
        """Fraction of this cache's lifetime node visits answered by
        restores (0.0 before any run)."""
        total = self.reused_nodes + self.computed_nodes
        return 0.0 if total == 0 else self.reused_nodes / total

    def describe(self) -> str:
        return (
            f"eco cache: {len(self.snapshots)} snapshots, "
            f"{self.hits} subtree hits, {self.misses} computed nodes, "
            f"{self.reuse_fraction():.0%} of node visits reused"
        )
