"""Cooperative per-run resource guards for the DP engine.

The Li & Shi O(bn^2) analysis bounds the DP's worst case, but a
pathological net — a huge candidate frontier, an adversarial topology —
can still make one run arbitrarily expensive in practice.  At fleet
scale (the :mod:`repro.batch` subsystem) a single such net must not take
the whole population run down, so the engine accepts an optional
:class:`RunBudget` and *checks it cooperatively* between node visits:

* **wall-clock deadline** — raises :class:`~repro.errors.TimeoutError`
  once the run has been live longer than ``deadline_seconds``;
* **candidate budget** — raises
  :class:`~repro.errors.BudgetExceededError` once the run has generated
  more than ``max_candidates`` candidates.  Candidate count is the
  engine's memory proxy: every live candidate is a constant-size tuple,
  so capping generation caps the resident set.

Checks run once per tree node (plus once before finalization), so the
engine overshoots a budget by at most one node's work — bounded, because
pruning also runs per node.  The happy-path cost is one comparison and
one ``perf_counter`` call per node, which the batch benchmark pins
under a few percent of end-to-end runtime.

A budget is *stateful* (it remembers when it started and the peak charge
seen) and must not be shared between concurrent runs; batch workers
build a fresh one per net from the plain numbers in
:class:`~repro.batch.BatchConfig`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from ..errors import BudgetExceededError, TimeoutError


class RunBudget:
    """Deadline + candidate-count guard, charged cooperatively by the DP.

    Either limit may be ``None`` (unlimited).  The engine calls
    :meth:`charge` with its running generated-candidate total; the first
    charge starts the clock unless :meth:`start` was called earlier (the
    batch layer starts it before segmentation so the deadline covers the
    whole per-net pipeline, not just the DP).
    """

    __slots__ = (
        "deadline_seconds",
        "max_candidates",
        "_started_at",
        "_checks",
        "_peak_candidates",
        "_peak_elapsed",
    )

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ):
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive or None, got "
                f"{deadline_seconds}"
            )
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1 or None, got {max_candidates}"
            )
        self.deadline_seconds = deadline_seconds
        self.max_candidates = max_candidates
        self._started_at: Optional[float] = None
        self._checks = 0
        self._peak_candidates = 0
        self._peak_elapsed = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "RunBudget":
        """Start (or restart) the deadline clock; returns self."""
        self._started_at = perf_counter()
        self._checks = 0
        self._peak_candidates = 0
        self._peak_elapsed = 0.0
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return perf_counter() - self._started_at

    @property
    def checks(self) -> int:
        """How many times :meth:`charge` ran (telemetry)."""
        return self._checks

    # -- enforcement -------------------------------------------------------

    def charge(
        self, candidates: int, net: str = "?", node: str = "?"
    ) -> None:
        """Account ``candidates`` generated so far; raise when over budget.

        ``net`` / ``node`` only feed the error message — they are not
        formatted on the happy path.
        """
        if self._started_at is None:
            self.start()
        self._checks += 1
        if candidates > self._peak_candidates:
            self._peak_candidates = candidates
        if (
            self.max_candidates is not None
            and candidates > self.max_candidates
        ):
            raise BudgetExceededError(
                f"net {net!r}: DP generated {candidates} candidates at node "
                f"{node!r}, exceeding the budget of {self.max_candidates}"
            )
        if self.deadline_seconds is not None:
            elapsed = perf_counter() - self._started_at
            if elapsed > self._peak_elapsed:
                self._peak_elapsed = elapsed
            if elapsed > self.deadline_seconds:
                raise TimeoutError(
                    f"net {net!r}: optimization ran {elapsed:.3f} s at node "
                    f"{node!r}, past the {self.deadline_seconds:.3f} s "
                    "deadline"
                )

    # -- pressure telemetry ------------------------------------------------

    @property
    def candidate_pressure(self) -> float:
        """Peak charged candidates as a fraction of the budget (0 if
        uncapped)."""
        if self.max_candidates is None or self.max_candidates == 0:
            return 0.0
        return self._peak_candidates / self.max_candidates

    @property
    def time_pressure(self) -> float:
        """Peak observed elapsed time as a fraction of the deadline (0 if
        no deadline)."""
        if self.deadline_seconds is None:
            return 0.0
        return self._peak_elapsed / self.deadline_seconds

    def describe(self) -> str:
        deadline = (
            "no deadline"
            if self.deadline_seconds is None
            else f"deadline {self.deadline_seconds:g} s"
        )
        cap = (
            "uncapped candidates"
            if self.max_candidates is None
            else f"<= {self.max_candidates} candidates"
        )
        return f"budget({deadline}, {cap})"
