"""Unit conventions and helpers.

Everything inside :mod:`repro` is stored as plain SI floats:

===========  ======  =================================
Quantity     Unit    Typical magnitude in this domain
===========  ======  =================================
resistance   ohm     1e1 .. 1e4   (drivers, buffers)
capacitance  farad   1e-15 .. 1e-12
time         second  1e-12 .. 1e-8
length       meter   1e-6 .. 1e-2
voltage      volt    0 .. 2
current      ampere  1e-6 .. 1e-2
slope        V/s     ~1e9 .. 1e10 (aggressor slew slope)
===========  ======  =================================

The constants below exist so that call sites read like the paper
(``25 * PS``, ``0.2 * FF / UM``) instead of bare exponents, and the
``format_*`` helpers render engineering-friendly strings in reports.
"""

from __future__ import annotations

# --- scale constants -------------------------------------------------------

#: one femtofarad, in farads.
FF = 1e-15
#: one picofarad, in farads.
PF = 1e-12
#: one nanofarad, in farads.
NF = 1e-9

#: one picosecond, in seconds.
PS = 1e-12
#: one nanosecond, in seconds.
NS = 1e-9
#: one microsecond, in seconds.
US = 1e-6

#: one micrometer, in meters.
UM = 1e-6
#: one millimeter, in meters.
MM = 1e-3

#: one milliampere, in amperes.
MA = 1e-3
#: one microampere, in amperes.
UA = 1e-6

#: one ohm / one kiloohm, in ohms.
OHM = 1.0
KOHM = 1e3

#: one millivolt, in volts.
MV = 1e-3


_PREFIXES = (
    (1e0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
)


def _engineering(value: float, unit: str, digits: int = 3) -> str:
    """Render *value* with an SI prefix, e.g. ``2.37e-13 F -> '237 fF'``."""
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}"
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}"


def format_time(seconds: float, digits: int = 3) -> str:
    """Format a time in engineering notation (``'336 ps'``)."""
    return _engineering(seconds, "s", digits)


def format_capacitance(farads: float, digits: int = 3) -> str:
    """Format a capacitance in engineering notation (``'800 fF'``)."""
    return _engineering(farads, "F", digits)


def format_resistance(ohms: float, digits: int = 3) -> str:
    """Format a resistance; uses kilo-ohms above 1e3 (``'1.2 kOhm'``)."""
    if abs(ohms) >= 1e3:
        return f"{ohms / 1e3:.{digits}g} kOhm"
    return f"{ohms:.{digits}g} Ohm"


def format_voltage(volts: float, digits: int = 3) -> str:
    """Format a voltage in engineering notation (``'800 mV'``)."""
    return _engineering(volts, "V", digits)


def format_current(amps: float, digits: int = 3) -> str:
    """Format a current in engineering notation (``'4.03 mA'``)."""
    return _engineering(amps, "A", digits)


def format_length(meters: float, digits: int = 3) -> str:
    """Format a length; global-net scale prefers micrometers/millimeters."""
    if abs(meters) >= 1e-3:
        return f"{meters / MM:.{digits}g} mm"
    return f"{meters / UM:.{digits}g} um"


def slope_from_slew(vdd: float, rise_time: float) -> float:
    """Aggressor *slope* sigma = Vdd / rise-time (paper Section II-B).

    With the paper's evaluation numbers (Vdd = 1.8 V, rise time = 0.25 ns)
    this yields 7.2e9 V/s, quoted in the paper as "7.2" (V/ns).
    """
    if rise_time <= 0:
        raise ValueError(f"rise_time must be positive, got {rise_time!r}")
    return vdd / rise_time
