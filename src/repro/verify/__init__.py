"""Independent verification: certificates, exhaustive oracles, fuzzing.

Everything in this package re-derives results from the paper's
recurrences without touching the DP engine's internals — it is the
independent witness for :mod:`repro.core`.  Three layers:

* :mod:`.certificate` — recompute ``(C, q, I, NS)`` bottom-up and check
  a solution's claims (slack, noise feasibility, buffer count,
  structure, polarity, frontier shape);
* :mod:`.oracle` — exhaustively enumerate every buffer assignment on a
  small net and compare the DP's selections against the true optimum;
* :mod:`.fuzz` — seeded random-net campaigns running both checks, with
  counterexample shrinking and replayable JSON repro files
  (``buffopt fuzz`` on the command line).

:mod:`.mutations` corrupts known-good solutions to prove the certifier
itself has no blind spots, and :mod:`.treegen` is the seeded random-net
generator shared with the property-test suite.
"""

from .certificate import (
    CertificateViolation,
    NodeCertificate,
    ResultCertificate,
    SolutionCertificate,
    certify_claim,
    certify_or_raise,
    certify_result,
    evaluate_assignment,
    recompute_power,
)
from .fuzz import (
    FUZZ_MODES,
    Counterexample,
    FuzzConfig,
    FuzzReport,
    default_engine,
    engine_for,
    planted_buggy_engine,
    planted_buggy_fast_engine,
    planted_buggy_lishi_engine,
    planted_buggy_power_engine,
    replay_file,
    run_fuzz,
    shrink_tree,
)
from .mutations import (
    MUTATION_CLASSES,
    MutatedClaim,
    certificate_for_mutation,
    mutate_claims,
    surviving_mutations,
)
from .oracle import (
    OracleBoundError,
    OracleDisagreement,
    OracleOutcome,
    OracleResult,
    compare_result_to_oracle,
    exhaustive_oracle,
)
from .treegen import random_chain, random_tree, seeded_tree

__all__ = [
    "CertificateViolation",
    "NodeCertificate",
    "SolutionCertificate",
    "ResultCertificate",
    "certify_claim",
    "certify_or_raise",
    "certify_result",
    "evaluate_assignment",
    "recompute_power",
    "OracleBoundError",
    "OracleDisagreement",
    "OracleOutcome",
    "OracleResult",
    "compare_result_to_oracle",
    "exhaustive_oracle",
    "FUZZ_MODES",
    "FuzzConfig",
    "FuzzReport",
    "Counterexample",
    "default_engine",
    "engine_for",
    "planted_buggy_engine",
    "planted_buggy_fast_engine",
    "planted_buggy_lishi_engine",
    "planted_buggy_power_engine",
    "replay_file",
    "run_fuzz",
    "shrink_tree",
    "MUTATION_CLASSES",
    "MutatedClaim",
    "certificate_for_mutation",
    "mutate_claims",
    "surviving_mutations",
    "random_tree",
    "random_chain",
    "seeded_tree",
]
