"""Mutation-style self-tests for the certificate checker.

A certifier is only trustworthy if it *fails* when it should.  This
module takes a known-good solution (an assignment plus the claims the
engine made about it) and produces systematically corrupted variants —
moved buffers, dropped buffers, swapped cells, inflated slack claims,
false noise claims, buffers on illegal nodes.  The self-test suite
asserts the certificate checker flags **every** mutation class; a
mutation that sails through certification means the checker has a blind
spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..library.buffers import BufferLibrary, BufferType
from ..library.power import PowerModel
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from .certificate import (
    SolutionCertificate,
    certify_claim,
    evaluate_assignment,
    recompute_power,
)

#: every mutation class this module can generate.  ``understate-power``
#: is generated only when a power model is supplied.
MUTATION_CLASSES = (
    "move-buffer",
    "drop-buffer",
    "swap-buffer",
    "inflate-slack",
    "flip-noise-claim",
    "illegal-site",
    "understate-power",
)


@dataclass(frozen=True)
class MutatedClaim:
    """One corrupted (assignment, claims) pair."""

    mutation: str
    description: str
    assignment: Mapping[str, BufferType]
    claimed_slack: float
    claimed_noise_feasible: bool
    claimed_buffer_count: int
    #: power the mutated claim asserts; ``None`` means no power claim
    #: (the certifier then skips the power re-derivation).
    claimed_power: Optional[float] = None


def mutate_claims(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    library: BufferLibrary,
    driver=None,
    power_model: Optional[PowerModel] = None,
) -> List[MutatedClaim]:
    """All applicable mutations of a known-good solution.

    The truth (claims) is recomputed first via
    :func:`~repro.verify.certificate.evaluate_assignment`, so the
    mutations corrupt *verified* claims — each mutated pair keeps the
    original claims while silently changing the assignment (stale-claim
    bugs), or keeps the assignment while lying about the claims.  With
    ``power_model``, the ``understate-power`` class (an accumulator that
    silently dropped contributions) is generated as well.
    """
    truth = evaluate_assignment(tree, assignment, coupling, driver=driver)
    slack = truth.slack
    noise_feasible = truth.noise_feasible
    count = len(assignment)
    mutations: List[MutatedClaim] = []

    sites = sorted(
        node.name for node in tree.nodes()
        if node.is_internal and node.feasible
    )
    occupied = sorted(assignment)
    empty = [s for s in sites if s not in assignment]

    if occupied and empty:
        victim = occupied[0]
        target = empty[0]
        moved: Dict[str, BufferType] = dict(assignment)
        moved[target] = moved.pop(victim)
        mutations.append(MutatedClaim(
            mutation="move-buffer",
            description=f"buffer moved from {victim!r} to {target!r}, "
                        "claims unchanged",
            assignment=moved,
            claimed_slack=slack,
            claimed_noise_feasible=noise_feasible,
            claimed_buffer_count=count,
        ))

    if occupied:
        victim = occupied[0]
        dropped = dict(assignment)
        del dropped[victim]
        mutations.append(MutatedClaim(
            mutation="drop-buffer",
            description=f"buffer at {victim!r} dropped, claims unchanged",
            assignment=dropped,
            claimed_slack=slack,
            claimed_noise_feasible=noise_feasible,
            claimed_buffer_count=count,
        ))

    if occupied:
        victim = occupied[0]
        current = assignment[victim]
        replacement = next(
            (b for b in library
             if b.name != current.name and b.inverting == current.inverting),
            None,
        )
        if replacement is not None:
            swapped = dict(assignment)
            swapped[victim] = replacement
            mutations.append(MutatedClaim(
                mutation="swap-buffer",
                description=(
                    f"buffer at {victim!r} swapped {current.name!r} -> "
                    f"{replacement.name!r}, claims unchanged"
                ),
                assignment=swapped,
                claimed_slack=slack,
                claimed_noise_feasible=noise_feasible,
                claimed_buffer_count=count,
            ))

    inflated = slack + max(abs(slack) * 0.05, 1e-12)
    mutations.append(MutatedClaim(
        mutation="inflate-slack",
        description=f"claimed slack inflated {slack!r} -> {inflated!r}",
        assignment=dict(assignment),
        claimed_slack=inflated,
        claimed_noise_feasible=noise_feasible,
        claimed_buffer_count=count,
    ))

    mutations.append(MutatedClaim(
        mutation="flip-noise-claim",
        description=(
            f"noise_feasible claim flipped to {not noise_feasible} "
            "(a noise-margin lie)"
        ),
        assignment=dict(assignment),
        claimed_slack=slack,
        claimed_noise_feasible=not noise_feasible,
        claimed_buffer_count=count,
    ))

    illegal_site = tree.sinks[0].name
    buffer = assignment[occupied[0]] if occupied else next(iter(library))
    on_sink = dict(assignment)
    on_sink[illegal_site] = buffer
    mutations.append(MutatedClaim(
        mutation="illegal-site",
        description=f"buffer added on sink node {illegal_site!r}",
        assignment=on_sink,
        claimed_slack=slack,
        claimed_noise_feasible=noise_feasible,
        claimed_buffer_count=count,
    ))

    if power_model is not None:
        true_power = recompute_power(tree, dict(assignment), power_model)
        understated = true_power * 0.5
        mutations.append(MutatedClaim(
            mutation="understate-power",
            description=(
                f"claimed power understated {true_power!r} -> "
                f"{understated!r} (dropped accumulator contributions)"
            ),
            assignment=dict(assignment),
            claimed_slack=slack,
            claimed_noise_feasible=noise_feasible,
            claimed_buffer_count=count,
            claimed_power=understated,
        ))
    return mutations


def certificate_for_mutation(
    tree: RoutingTree,
    mutated: MutatedClaim,
    coupling: CouplingModel,
    driver=None,
    power_model: Optional[PowerModel] = None,
) -> SolutionCertificate:
    """Certify one mutated claim (violations expected)."""
    return certify_claim(
        tree,
        mutated.assignment,
        coupling,
        claimed_slack=mutated.claimed_slack,
        claimed_noise_feasible=mutated.claimed_noise_feasible,
        claimed_buffer_count=mutated.claimed_buffer_count,
        driver=driver,
        claimed_power=mutated.claimed_power,
        power_model=power_model if mutated.claimed_power is not None else None,
    )


def surviving_mutations(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    library: BufferLibrary,
    driver=None,
    power_model: Optional[PowerModel] = None,
) -> Tuple[List[MutatedClaim], List[MutatedClaim]]:
    """Partition mutations into ``(caught, escaped)`` by the certifier.

    A healthy certifier returns an empty ``escaped`` list.
    """
    caught: List[MutatedClaim] = []
    escaped: List[MutatedClaim] = []
    for mutated in mutate_claims(tree, assignment, coupling, library,
                                 driver=driver, power_model=power_model):
        certificate = certificate_for_mutation(
            tree, mutated, coupling, driver=driver, power_model=power_model
        )
        (caught if not certificate.ok else escaped).append(mutated)
    return caught, escaped
