"""Seeded random routing-tree generation for fuzzing and oracles.

Promoted from ``tests/properties/treegen.py`` so the ``buffopt fuzz``
CLI (and any batch self-audit) can generate the same family of nets
without depending on hypothesis.  The hypothesis strategies in the test
tree now import the range constants from here, keeping the two
generators drawing from one distribution.

Everything is driven by a caller-supplied :class:`random.Random`, so a
single integer seed reproduces a whole fuzz campaign.
"""

from __future__ import annotations

import random
from typing import Optional

from ..library.cells import DriverCell
from ..library.technology import default_technology
from ..tree.builder import TreeBuilder
from ..tree.topology import RoutingTree
from ..units import FF, MM, NS

#: parameter ranges shared with the hypothesis strategies.
RESISTANCE_RANGE = (30.0, 2000.0)
MARGIN_RANGE = (0.2, 1.5)
SINK_CAP_RANGE = (1 * FF, 80 * FF)
WIRE_LENGTH_RANGE = (0.05 * MM, 6 * MM)
RAT_RANGE = (0.1 * NS, 5 * NS)


def random_tree(
    rng: random.Random,
    max_internal: int = 5,
    with_rats: bool = False,
    name: str = "random",
    tech=None,
) -> RoutingTree:
    """A random valid binary routing tree with a driver.

    Grows from the source: each step attaches a new internal node under
    a random node that still has room, then every remaining open slot is
    closed with a sink.  Guarantees at least one sink and that every
    internal node has a child — the same construction as the hypothesis
    strategy ``random_trees``.
    """
    if tech is None:
        tech = default_technology()
    driver = DriverCell("drv", rng.uniform(*RESISTANCE_RANGE), 0.0)
    builder = TreeBuilder(tech)
    builder.add_source("so", driver=driver)

    open_slots = {"so": 1}  # node -> children it may still take
    internal_budget = rng.randint(0, max_internal)

    count = 0
    while internal_budget > 0 and open_slots:
        parent = rng.choice(sorted(open_slots))
        node = f"i{count}"
        count += 1
        builder.add_internal(node)
        builder.add_wire(parent, node, length=rng.uniform(*WIRE_LENGTH_RANGE))
        open_slots[parent] -= 1
        if open_slots[parent] == 0:
            del open_slots[parent]
        open_slots[node] = 2
        internal_budget -= 1

    sink_index = 0
    for parent in sorted(open_slots):
        sink = f"s{sink_index}"
        builder.add_sink(
            sink,
            capacitance=rng.uniform(*SINK_CAP_RANGE),
            noise_margin=rng.uniform(*MARGIN_RANGE),
            required_arrival=(
                rng.uniform(*RAT_RANGE) if with_rats else float("inf")
            ),
        )
        builder.add_wire(parent, sink, length=rng.uniform(*WIRE_LENGTH_RANGE))
        sink_index += 1
    return builder.build(name)


def random_chain(
    rng: random.Random,
    max_hops: int = 4,
    name: str = "chain",
    tech=None,
) -> RoutingTree:
    """A random single-sink chain (for Algorithm 1/2 agreement checks)."""
    if tech is None:
        tech = default_technology()
    driver = DriverCell("drv", rng.uniform(*RESISTANCE_RANGE), 0.0)
    builder = TreeBuilder(tech)
    builder.add_source("so", driver=driver)
    previous = "so"
    for index in range(rng.randint(0, max_hops)):
        node = f"m{index}"
        builder.add_internal(node)
        builder.add_wire(
            previous, node, length=rng.uniform(*WIRE_LENGTH_RANGE)
        )
        previous = node
    builder.add_sink(
        "s",
        capacitance=rng.uniform(*SINK_CAP_RANGE),
        noise_margin=rng.uniform(*MARGIN_RANGE),
    )
    builder.add_wire(previous, "s", length=rng.uniform(*WIRE_LENGTH_RANGE))
    return builder.build(name)


def seeded_tree(
    seed: int,
    max_internal: int = 5,
    with_rats: bool = False,
    name: Optional[str] = None,
) -> RoutingTree:
    """Convenience: the tree a fresh ``Random(seed)`` would generate."""
    return random_tree(
        random.Random(seed),
        max_internal=max_internal,
        with_rats=with_rats,
        name=name or f"seed{seed}",
    )
