"""Exhaustive small-net oracle for the buffer-insertion DP.

On nets with few feasible buffer sites, the *whole* solution space can
be enumerated: every assignment of (no buffer | one of ``b`` library
buffers) to each of ``s`` sites is ``(b+1)^s`` cases, each evaluated by
the independent certificate recursion (:mod:`.certificate`), never by
the engine under test.  The resulting :class:`OracleResult` mirrors
:class:`~repro.core.dp.DPResult`'s selection API (``best`` /
``fewest_buffers`` / ``minimize_cost``) so the DP's answers can be
checked for *optimality*, not mere feasibility.

What may be asserted, and when:

* **Delay mode** (``noise_aware=False``): the DP is exact (van
  Ginneken's optimality), so every selection must *equal* the oracle's.
* **Noise-aware mode**: BuffOpt's linear merge and timing-first pruning
  make it a heuristic on multi-buffer libraries (the paper reports a
  <2% gap); the sound direction always holds — the DP can never *beat*
  the exhaustive optimum, and any solution it claims must be legal.
  :func:`compare_result_to_oracle` asserts equality when ``exact=True``
  and soundness otherwise.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.wire_sizing import WireSizingSpec, apply_wire_widths
from ..errors import InfeasibleError, ReproError
from ..library.buffers import BufferLibrary, BufferType
from ..library.cells import DriverCell
from ..library.power import PowerModel
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from .certificate import evaluate_assignment, recompute_power

#: hard ceiling on enumerated assignments before the oracle refuses.
DEFAULT_MAX_ASSIGNMENTS = 500_000


class OracleBoundError(ReproError):
    """The net is too large for exhaustive enumeration.

    Raised before any work happens when the site count or the implied
    assignment count exceeds the configured bounds — the oracle never
    silently samples; it either enumerates everything or refuses.
    """


@dataclass(frozen=True)
class OracleOutcome:
    """One fully-evaluated legal buffer assignment."""

    assignment: Tuple[Tuple[str, str], ...]  # (node, buffer name), sorted
    buffer_count: int
    slack: float
    noise_feasible: bool
    #: wire width choices ((parent, child), width) when sizing enumerated.
    wire_widths: Tuple[Tuple[Tuple[str, str], float], ...] = ()
    #: certificate-recomputed power; None when no power model was given.
    power: Optional[float] = None

    def assignment_dict(self, library: BufferLibrary) -> Dict[str, BufferType]:
        by_name = {b.name: b for b in library}
        return {node: by_name[buf] for node, buf in self.assignment}


@dataclass(frozen=True)
class OracleResult:
    """Every legal outcome on a net, with DP-mirroring selection."""

    tree_name: str
    outcomes: Tuple[OracleOutcome, ...]
    noise_aware: bool
    sites: Tuple[str, ...]
    enumerated: int
    max_buffers: Optional[int]
    enforce_polarity: bool
    library_names: Tuple[str, ...]

    def _pool(self, require_noise: Optional[bool]) -> List[OracleOutcome]:
        require = self.noise_aware if require_noise is None else require_noise
        return [o for o in self.outcomes if o.noise_feasible or not require]

    def best(self, require_noise: Optional[bool] = None) -> OracleOutcome:
        """Maximum-slack legal outcome (ties: fewest buffers)."""
        pool = self._pool(require_noise)
        if not pool:
            raise InfeasibleError(
                f"oracle for {self.tree_name!r}: no noise-feasible "
                "assignment exists in the enumerated space"
            )
        return max(pool, key=lambda o: (o.slack, -o.buffer_count))

    def fewest_buffers(
        self, min_slack: float = 0.0, require_noise: Optional[bool] = None
    ) -> OracleOutcome:
        """Fewest buffers meeting ``min_slack`` (fallback: max slack)."""
        pool = self._pool(require_noise)
        if not pool:
            raise InfeasibleError(
                f"oracle for {self.tree_name!r}: no noise-feasible "
                "assignment exists in the enumerated space"
            )
        meeting = [o for o in pool if o.slack >= min_slack]
        if meeting:
            return min(meeting, key=lambda o: (o.buffer_count, -o.slack))
        return max(pool, key=lambda o: (o.slack, -o.buffer_count))

    def minimize_cost(
        self,
        cost,
        library: BufferLibrary,
        min_slack: float = 0.0,
        require_noise: Optional[bool] = None,
    ) -> OracleOutcome:
        """Minimum summed buffer cost meeting ``min_slack``.

        Unlike :meth:`DPResult.minimize_cost`, which searches the
        count-indexed best-slack frontier, this searches *all* legal
        assignments — it is the true optimum the frontier heuristic
        approximates.
        """
        pool = self._pool(require_noise)
        if not pool:
            raise InfeasibleError(
                f"oracle for {self.tree_name!r}: no noise-feasible "
                "assignment exists in the enumerated space"
            )
        meeting = [o for o in pool if o.slack >= min_slack]
        if not meeting:
            return max(pool, key=lambda o: (o.slack, -o.buffer_count))
        by_name = {b.name: b for b in library}

        def total(outcome: OracleOutcome) -> float:
            return sum(cost(by_name[buf]) for _, buf in outcome.assignment)

        return min(meeting, key=lambda o: (total(o), -o.slack))

    def min_power(
        self, min_slack: float = 0.0, require_noise: Optional[bool] = None
    ) -> OracleOutcome:
        """Least-power legal outcome meeting ``min_slack``.

        Mirrors :meth:`DPResult.min_power`'s tie-breaks (more slack,
        then fewer buffers) and its max-slack fallback when nothing
        reaches the threshold.  Requires the oracle to have been
        enumerated with a ``power_model``.
        """
        pool = self._power_pool(require_noise, "min_power")
        meeting = [o for o in pool if o.slack >= min_slack]
        if meeting:
            return min(
                meeting, key=lambda o: (o.power, -o.slack, o.buffer_count)
            )
        return max(pool, key=lambda o: (o.slack, -o.power, -o.buffer_count))

    def power_capped(
        self, power_cap: float, require_noise: Optional[bool] = None
    ) -> OracleOutcome:
        """Best-slack legal outcome within ``power_cap`` watts.

        Mirrors :meth:`DPResult.power_capped`: the cap is hard — when no
        enumerated assignment fits it, :class:`InfeasibleError` is
        raised rather than falling back.
        """
        pool = self._power_pool(require_noise, "power_capped")
        meeting = [o for o in pool if o.power <= power_cap]
        if not meeting:
            raise InfeasibleError(
                f"oracle for {self.tree_name!r}: no assignment within "
                f"power cap {power_cap!r} (minimum is "
                f"{min(o.power for o in pool)!r})"
            )
        return max(meeting, key=lambda o: (o.slack, -o.power, -o.buffer_count))

    def _power_pool(
        self, require_noise: Optional[bool], selection: str
    ) -> List[OracleOutcome]:
        pool = self._pool(require_noise)
        if not pool:
            raise InfeasibleError(
                f"oracle for {self.tree_name!r}: no noise-feasible "
                "assignment exists in the enumerated space"
            )
        if any(o.power is None for o in pool):
            raise ValueError(
                f"the {selection!r} selection needs the oracle enumerated "
                "with a power_model"
            )
        return pool

    def best_slack_within(
        self, buffer_count: int, require_noise: bool = False
    ) -> float:
        """Best achievable slack using at most ``buffer_count`` buffers.

        ``-inf`` when nothing qualifies (e.g. no noise-feasible
        assignment at that count).
        """
        pool = [
            o for o in self._pool(require_noise)
            if o.buffer_count <= buffer_count
        ]
        if not pool:
            return -math.inf
        return max(o.slack for o in pool)


def exhaustive_oracle(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: Optional[CouplingModel] = None,
    driver: Optional[DriverCell] = None,
    noise_aware: bool = True,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
    sizing: Optional[WireSizingSpec] = None,
    max_sites: int = 8,
    max_assignments: int = DEFAULT_MAX_ASSIGNMENTS,
    power_model: Optional[PowerModel] = None,
) -> OracleResult:
    """Enumerate and evaluate every legal buffer assignment on a net.

    Sites are the tree's feasible internal nodes; each independently
    takes no buffer or any library buffer.  Assignments exceeding
    ``max_buffers`` are skipped; with ``enforce_polarity``, assignments
    leaving any sink with odd inversion parity are illegal and excluded.
    With ``sizing``, every wire-width combination from the spec's menu
    is enumerated as well (multiplying the space by ``|widths|^wires``).

    Raises :class:`OracleBoundError` when the space exceeds
    ``max_sites`` sites or ``max_assignments`` total cases.
    """
    if coupling is None:
        coupling = CouplingModel.silent()
    sites = tuple(sorted(
        node.name for node in tree.nodes()
        if node.is_internal and node.feasible
    ))
    if len(sites) > max_sites:
        raise OracleBoundError(
            f"net {tree.name!r} has {len(sites)} buffer sites, above the "
            f"oracle bound of {max_sites}"
        )
    buffers: Tuple[Optional[BufferType], ...] = (None, *library)
    total = len(buffers) ** len(sites)
    wire_keys: Tuple[Tuple[str, str], ...] = ()
    width_menu: Tuple[float, ...] = ()
    if sizing is not None:
        wire_keys = tuple(
            (w.parent.name, w.child.name) for w in tree.wires()
        )
        width_menu = sizing.widths
        total *= len(width_menu) ** len(wire_keys)
    if total > max_assignments:
        raise OracleBoundError(
            f"net {tree.name!r} implies {total} assignments, above the "
            f"oracle bound of {max_assignments}"
        )

    outcomes: List[OracleOutcome] = []
    enumerated = 0
    width_combos: Sequence[Tuple[float, ...]] = (
        [()] if sizing is None
        else list(itertools.product(width_menu, repeat=len(wire_keys)))
    )
    for widths in width_combos:
        if sizing is None:
            work_tree = tree
            width_record: Tuple[Tuple[Tuple[str, str], float], ...] = ()
        else:
            choices = dict(zip(wire_keys, widths))
            work_tree = apply_wire_widths(tree, choices, sizing)
            width_record = tuple(zip(wire_keys, widths))
        for combo in itertools.product(buffers, repeat=len(sites)):
            enumerated += 1
            assignment = {
                site: buffer
                for site, buffer in zip(sites, combo)
                if buffer is not None
            }
            if max_buffers is not None and len(assignment) > max_buffers:
                continue
            certificate = evaluate_assignment(
                work_tree, assignment, coupling, driver=driver,
                check_polarity=enforce_polarity,
            )
            if enforce_polarity and any(
                v.kind == "polarity" for v in certificate.violations
            ):
                continue  # illegal, not merely bad
            power = (
                None if power_model is None
                else recompute_power(work_tree, assignment, power_model)
            )
            outcomes.append(OracleOutcome(
                assignment=tuple(sorted(
                    (node, buffer.name)
                    for node, buffer in assignment.items()
                )),
                buffer_count=len(assignment),
                slack=certificate.slack,
                noise_feasible=certificate.noise_feasible,
                wire_widths=width_record,
                power=power,
            ))
    return OracleResult(
        tree_name=tree.name,
        outcomes=tuple(outcomes),
        noise_aware=noise_aware,
        sites=sites,
        enumerated=enumerated,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
        library_names=tuple(b.name for b in library),
    )


@dataclass(frozen=True)
class OracleDisagreement:
    """One way the DP's answer differs from the exhaustive optimum."""

    check: str
    message: str

    def describe(self) -> str:
        return f"[{self.check}] {self.message}"


def compare_result_to_oracle(
    result,
    oracle: OracleResult,
    exact: Optional[bool] = None,
    min_slacks: Sequence[float] = (0.0,),
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-15,
    cost=None,
    cost_library: Optional[BufferLibrary] = None,
    cost_exact: bool = False,
) -> List[OracleDisagreement]:
    """Check a :class:`~repro.core.dp.DPResult` against the oracle.

    ``exact`` defaults to ``not result.options.noise_aware``: the
    delay-mode DP is provably optimal, while the noise-aware mode is a
    heuristic whose claims are only required to be *sound* (never better
    than the exhaustive optimum, never claiming feasibility the oracle
    refutes by absence).

    Always checked (soundness):

    * no DP outcome's slack exceeds the oracle's best within its count;
    * a noise-feasible DP claim implies the oracle found a
      noise-feasible assignment at that count;
    * if the DP reports a feasible ``best()``, so does the oracle.

    Additionally with ``exact``:

    * ``best()`` slacks match;
    * ``fewest_buffers(min_slack)`` counts match for every requested
      ``min_slack`` (and slacks match when both meet the threshold);
    * the oracle cannot be feasible while the DP claims infeasibility.

    With ``cost`` (and ``cost_library``), ``minimize_cost`` is compared
    too: the DP's total can never undercut the exhaustive minimum
    (soundness); with ``cost_exact`` the totals must be equal — only
    assert that for uniform costs, where the frontier search is exact.

    When the DP ran with a power model (``result.options.power``) and
    the oracle enumerated one, the power selections are compared too:
    ``min_power`` totals can never undercut the exhaustive minimum and
    ``power_capped`` slacks can never beat the capped optimum
    (soundness); with ``exact`` both must match, and cap feasibility
    must agree in both directions.
    """
    options = result.options
    if exact is None:
        exact = not options.noise_aware
    disagreements: List[OracleDisagreement] = []

    def close(a: float, b: float) -> bool:
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)

    def at_most(a: float, b: float) -> bool:
        return a <= b or close(a, b)

    if options.max_buffers != oracle.max_buffers:
        disagreements.append(OracleDisagreement(
            "config",
            f"DP max_buffers={options.max_buffers} but oracle enumerated "
            f"with max_buffers={oracle.max_buffers}",
        ))
    if options.enforce_polarity != oracle.enforce_polarity:
        disagreements.append(OracleDisagreement(
            "config",
            "DP and oracle disagree on polarity enforcement",
        ))

    # -- soundness: the DP can never beat the exhaustive optimum --------
    for outcome in result.outcomes:
        bound = oracle.best_slack_within(
            outcome.buffer_count, require_noise=False
        )
        if not at_most(outcome.slack, bound):
            disagreements.append(OracleDisagreement(
                "soundness",
                f"DP outcome with {outcome.buffer_count} buffers claims "
                f"slack {outcome.slack!r}, above the exhaustive optimum "
                f"{bound!r}",
            ))
        if outcome.noise_feasible:
            noise_bound = oracle.best_slack_within(
                outcome.buffer_count, require_noise=True
            )
            if noise_bound == -math.inf:
                disagreements.append(OracleDisagreement(
                    "soundness",
                    f"DP claims a noise-feasible outcome with "
                    f"{outcome.buffer_count} buffers; the oracle found no "
                    "noise-feasible assignment at that count",
                ))
            elif not at_most(outcome.slack, noise_bound):
                disagreements.append(OracleDisagreement(
                    "soundness",
                    f"DP noise-feasible outcome with {outcome.buffer_count} "
                    f"buffers claims slack {outcome.slack!r}, above the "
                    f"noise-feasible exhaustive optimum {noise_bound!r}",
                ))

    def dp_select(method, *args, **kwargs):
        try:
            return method(*args, **kwargs)
        except InfeasibleError:
            return None

    def oracle_select(method, *args, **kwargs):
        try:
            return method(*args, **kwargs)
        except InfeasibleError:
            return None

    # -- best() ---------------------------------------------------------
    dp_best = dp_select(result.best)
    oracle_best = oracle_select(oracle.best, options.noise_aware)
    if dp_best is not None and oracle_best is None:
        disagreements.append(OracleDisagreement(
            "best",
            "DP reports a feasible best() but the oracle's pool is empty",
        ))
    elif dp_best is None and oracle_best is not None and exact:
        disagreements.append(OracleDisagreement(
            "best",
            "DP raises InfeasibleError but the oracle found a feasible "
            f"assignment with slack {oracle_best.slack!r}",
        ))
    elif dp_best is not None and oracle_best is not None:
        if exact and not close(dp_best.slack, oracle_best.slack):
            disagreements.append(OracleDisagreement(
                "best",
                f"DP best slack {dp_best.slack!r} != exhaustive optimum "
                f"{oracle_best.slack!r}",
            ))
        elif not at_most(dp_best.slack, oracle_best.slack):
            disagreements.append(OracleDisagreement(
                "best",
                f"DP best slack {dp_best.slack!r} exceeds the exhaustive "
                f"optimum {oracle_best.slack!r}",
            ))

    # -- fewest_buffers(min_slack) --------------------------------------
    for min_slack in min_slacks:
        dp_few = dp_select(result.fewest_buffers, min_slack)
        oracle_few = oracle_select(oracle.fewest_buffers, min_slack,
                                   options.noise_aware)
        if dp_few is None or oracle_few is None:
            continue  # pool emptiness already handled via best()
        dp_meets = dp_few.slack >= min_slack
        oracle_meets = oracle_few.slack >= min_slack
        if dp_meets and not oracle_meets:
            disagreements.append(OracleDisagreement(
                "fewest",
                f"DP meets min_slack={min_slack!r} with {dp_few.buffer_count} "
                "buffers but the oracle says the threshold is unreachable",
            ))
        elif dp_meets and oracle_meets:
            if oracle_few.buffer_count > dp_few.buffer_count:
                disagreements.append(OracleDisagreement(
                    "fewest",
                    f"DP meets min_slack={min_slack!r} with "
                    f"{dp_few.buffer_count} buffers, fewer than the "
                    f"exhaustive minimum {oracle_few.buffer_count}",
                ))
            elif exact and oracle_few.buffer_count < dp_few.buffer_count:
                disagreements.append(OracleDisagreement(
                    "fewest",
                    f"DP needs {dp_few.buffer_count} buffers for "
                    f"min_slack={min_slack!r}; the exhaustive minimum is "
                    f"{oracle_few.buffer_count}",
                ))
        elif exact and not dp_meets and oracle_meets:
            disagreements.append(OracleDisagreement(
                "fewest",
                f"DP falls back below min_slack={min_slack!r} but the "
                f"oracle meets it with {oracle_few.buffer_count} buffers",
            ))

    # -- minimize_cost(cost, min_slack) ---------------------------------
    if cost is not None and cost_library is not None:
        for min_slack in min_slacks:
            dp_cheap = dp_select(result.minimize_cost, cost, min_slack)
            oracle_cheap = oracle_select(
                oracle.minimize_cost, cost, cost_library, min_slack,
                options.noise_aware,
            )
            if dp_cheap is None or oracle_cheap is None:
                continue
            if not (dp_cheap.slack >= min_slack
                    and oracle_cheap.slack >= min_slack):
                continue  # fallback semantics already covered by fewest
            dp_total = sum(cost(ins.buffer) for ins in dp_cheap.insertions)
            by_name = {b.name: b for b in cost_library}
            oracle_total = sum(
                cost(by_name[buf]) for _, buf in oracle_cheap.assignment
            )
            if dp_total < oracle_total and not close(dp_total, oracle_total):
                disagreements.append(OracleDisagreement(
                    "cost",
                    f"DP minimize_cost total {dp_total!r} undercuts the "
                    f"exhaustive minimum {oracle_total!r} at "
                    f"min_slack={min_slack!r}",
                ))
            elif cost_exact and not close(dp_total, oracle_total):
                disagreements.append(OracleDisagreement(
                    "cost",
                    f"DP minimize_cost total {dp_total!r} != exhaustive "
                    f"minimum {oracle_total!r} at min_slack={min_slack!r}",
                ))

    # -- power selections (power-model runs only) -----------------------
    power_active = (
        getattr(options, "power", None) is not None
        and any(o.power is not None for o in oracle.outcomes)
    )
    if power_active:
        # min_power(min_slack): the DP can never spend less power than
        # the exhaustive minimum at the same threshold.
        for min_slack in min_slacks:
            dp_mp = dp_select(result.min_power, min_slack)
            oracle_mp = oracle_select(oracle.min_power, min_slack,
                                      options.noise_aware)
            if dp_mp is None or oracle_mp is None:
                continue  # pool emptiness already handled via best()
            dp_meets = dp_mp.slack >= min_slack
            oracle_meets = oracle_mp.slack >= min_slack
            if dp_meets and not oracle_meets:
                disagreements.append(OracleDisagreement(
                    "power",
                    f"DP min_power meets min_slack={min_slack!r} but the "
                    "oracle says the threshold is unreachable",
                ))
            elif dp_meets and oracle_meets:
                if (dp_mp.power < oracle_mp.power
                        and not close(dp_mp.power, oracle_mp.power)):
                    disagreements.append(OracleDisagreement(
                        "power",
                        f"DP min_power total {dp_mp.power!r} undercuts the "
                        f"exhaustive minimum {oracle_mp.power!r} at "
                        f"min_slack={min_slack!r}",
                    ))
                elif exact and not close(dp_mp.power, oracle_mp.power):
                    disagreements.append(OracleDisagreement(
                        "power",
                        f"DP min_power total {dp_mp.power!r} != exhaustive "
                        f"minimum {oracle_mp.power!r} at "
                        f"min_slack={min_slack!r}",
                    ))
            elif exact and not dp_meets and oracle_meets:
                disagreements.append(OracleDisagreement(
                    "power",
                    f"DP min_power falls back below min_slack={min_slack!r} "
                    "but the oracle meets it",
                ))

        # power_capped(cap): probe caps derived from the oracle's own
        # power range so both reachable and borderline caps are covered.
        pool_powers = sorted({
            o.power for o in oracle.outcomes
            if o.power is not None
            and (o.noise_feasible or not options.noise_aware)
        })
        probe_caps = []
        if pool_powers:
            probe_caps = [
                pool_powers[0],
                pool_powers[len(pool_powers) // 2],
                pool_powers[-1],
            ]
        for cap in probe_caps:
            # nudge the cap up an ulp so float-equal powers stay inside
            probe = cap * (1.0 + 1e-12) if cap > 0 else cap
            dp_pc = dp_select(result.power_capped, probe)
            oracle_pc = oracle_select(oracle.power_capped, probe,
                                      options.noise_aware)
            if dp_pc is not None and oracle_pc is None:
                disagreements.append(OracleDisagreement(
                    "power",
                    f"DP power_capped({probe!r}) reports a solution but "
                    "the oracle found none within the cap",
                ))
            elif dp_pc is None and oracle_pc is not None and exact:
                disagreements.append(OracleDisagreement(
                    "power",
                    f"DP power_capped({probe!r}) raises InfeasibleError "
                    f"but the oracle fits the cap with slack "
                    f"{oracle_pc.slack!r}",
                ))
            elif dp_pc is not None and oracle_pc is not None:
                if not at_most(dp_pc.slack, oracle_pc.slack):
                    disagreements.append(OracleDisagreement(
                        "power",
                        f"DP power_capped({probe!r}) slack {dp_pc.slack!r} "
                        f"beats the capped exhaustive optimum "
                        f"{oracle_pc.slack!r}",
                    ))
                elif exact and not close(dp_pc.slack, oracle_pc.slack):
                    disagreements.append(OracleDisagreement(
                        "power",
                        f"DP power_capped({probe!r}) slack {dp_pc.slack!r} "
                        f"!= capped exhaustive optimum {oracle_pc.slack!r}",
                    ))
                if dp_pc.power > probe and not close(dp_pc.power, probe):
                    disagreements.append(OracleDisagreement(
                        "power",
                        f"DP power_capped({probe!r}) returned an outcome "
                        f"claiming power {dp_pc.power!r}, above the cap",
                    ))
    return disagreements
