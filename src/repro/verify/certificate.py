"""Independent certificate checking for buffer-insertion solutions.

The DP engine (:mod:`repro.core.dp`) *claims* an outcome: a buffer
assignment plus its source slack, buffer count, and noise feasibility.
This module re-derives every claim from first principles — the routing
tree, the buffer library's cell parameters, and the coupling model —
using straight-line bottom-up recursions that share **no code** with the
engine (no candidate frontiers, no pruning, no merge tricks).  If the
engine has a bug in its candidate algebra, its pruning rule, or its
finalization, the recomputation here disagrees and the disagreement is
reported as a structured :class:`CertificateViolation`.

The recomputed quantities are exactly the paper's candidate tuple:

* ``C(v)`` — downstream load, cut at buffer inputs (paper eq. 1);
* ``q(v)`` — timing slack ``min over sinks (RAT - delay)`` (eq. 5);
* ``I(v)`` — downstream aggressor-induced current, cut at restoring
  gates (eq. 7);
* ``NS(v)`` — noise slack, the margin left for the stage's driving gate
  (eq. 12).

Violation kinds (``CertificateViolation.kind``):

=================  =====================================================
``structure``      buffer on an unknown / non-internal / infeasible node
``polarity``       a sink sees an odd number of inverting buffers
``noise``          a gate's injected noise ``R * I`` exceeds the
                   downstream noise slack (the solution is *actually*
                   noisy, whatever was claimed)
``noise-claim``    the outcome's ``noise_feasible`` flag contradicts the
                   recomputation
``slack``          the outcome's claimed slack differs from the
                   recomputed ``q(source)``
``count``          ``buffer_count`` differs from the assignment size
``cap``            an outcome exceeds the engine's ``max_buffers`` cap
``pareto``         the per-count outcome frontier is malformed
                   (duplicate or unsorted counts; in power mode, a
                   per-count (slack, power) frontier that is not
                   strictly improving)
``power``          the outcome's claimed power differs from the
                   re-derivation ``sum(buffer powers) + sum(wire
                   powers over the whole tree)``
=================  =====================================================

The power re-derivation leans on the model being *separable*: wire
power depends only on the tree (every wire toggles regardless of where
buffers land), so total power is a straight sum over tree wires plus a
sum over inserted buffers — no frontier bookkeeping required, which is
exactly what makes it an independent check of the engine's monotone
power accumulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import CertificateError
from ..library.buffers import BufferType
from ..library.cells import DriverCell
from ..noise.coupling import CouplingModel
from ..tree.topology import Node, RoutingTree

#: default tolerance for comparing recomputed floats against claims.
REL_TOL = 1e-9
ABS_TOL = 1e-15


@dataclass(frozen=True)
class CertificateViolation:
    """One inconsistency between a claim and the recomputation."""

    kind: str
    node: str
    message: str
    expected: Optional[float] = None
    actual: Optional[float] = None

    def describe(self) -> str:
        extra = ""
        if self.expected is not None or self.actual is not None:
            extra = f" (expected {self.expected!r}, got {self.actual!r})"
        return f"[{self.kind}] {self.node}: {self.message}{extra}"


@dataclass(frozen=True)
class NodeCertificate:
    """The recomputed candidate tuple ``(C, q, I, NS)`` at one node.

    Values describe what the node presents *upward* (after any buffer at
    the node itself has been applied, before its parent wire).
    """

    load: float
    slack: float
    current: float
    noise_slack: float
    #: parity of inverting buffers at-or-below this node (0 = even).
    polarity: int


@dataclass(frozen=True)
class SolutionCertificate:
    """Full recomputation of one assignment on one tree."""

    tree_name: str
    #: recomputed source slack including the driver's gate delay.
    slack: float
    #: ``True`` iff every restoring gate (buffers and the source driver)
    #: injects no more noise than its downstream stage tolerates.
    noise_feasible: bool
    buffer_count: int
    #: per-node recomputed states (by node name).
    states: Mapping[str, NodeCertificate]
    violations: Tuple[CertificateViolation, ...]
    #: re-derived total switching power, or ``None`` when no power
    #: model was supplied (power-off certification).
    power: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        head = (
            f"certificate for {self.tree_name!r}: slack={self.slack:.6g}, "
            f"noise_feasible={self.noise_feasible}, "
            f"buffers={self.buffer_count}"
        )
        if self.ok:
            return head + " — OK"
        lines = [head + f" — {len(self.violations)} violation(s)"]
        lines.extend("  " + v.describe() for v in self.violations)
        return "\n".join(lines)


def _close(a: float, b: float, rel_tol: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=ABS_TOL)


def recompute_power(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    power_model,
) -> float:
    """Re-derive total power from scratch: every tree wire toggles
    (wire power is assignment-independent under the separable model)
    plus one buffer term per inserted buffer.  Shares no code with the
    engines' incremental accumulators."""
    total = 0.0
    for node in tree.postorder():
        wire = node.parent_wire
        if wire is not None:
            total += power_model.wire_power(wire.capacitance)
    for buffer in assignment.values():
        total += power_model.buffer_power(buffer)
    return total


def _structural_violations(
    tree: RoutingTree, assignment: Mapping[str, BufferType]
) -> List[CertificateViolation]:
    violations: List[CertificateViolation] = []
    for name in sorted(assignment):
        if name not in tree:
            violations.append(CertificateViolation(
                kind="structure", node=name,
                message="buffer assigned to a node not in the tree",
            ))
            continue
        node = tree.node(name)
        if not node.is_internal:
            kind = "source" if node.is_source else "sink"
            violations.append(CertificateViolation(
                kind="structure", node=name,
                message=f"buffer assigned to a {kind} node",
            ))
        elif not node.feasible:
            violations.append(CertificateViolation(
                kind="structure", node=name,
                message="buffer assigned to an infeasible site",
            ))
    return violations


def evaluate_assignment(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    driver: Optional[DriverCell] = None,
    check_polarity: bool = True,
    noise_tolerance: float = ABS_TOL,
    power_model=None,
) -> SolutionCertificate:
    """Recompute ``(C, q, I, NS)`` bottom-up for one buffer assignment.

    This is the certifier's core: a single postorder walk applying the
    paper's recurrences directly (sink base case; wire updates; branch
    merges take min-slack / min-noise-slack and sum loads / currents;
    a buffer restores the signal, cutting load and current and paying
    its gate delay).  Noise feasibility requires every restoring gate —
    each inserted buffer and the source driver — to satisfy
    ``R_gate * I <= NS``; violations beyond ``noise_tolerance`` are
    recorded with the offending node.

    ``driver`` defaults to ``tree.driver``.  The returned certificate
    carries recomputed per-node states for deeper inspection.  With a
    ``power_model`` (a :class:`~repro.library.power.PowerModel`), the
    certificate also carries the re-derived total power.
    """
    if driver is None:
        driver = tree.driver
    if driver is None:
        raise CertificateError(
            f"tree {tree.name!r} has no driver cell; pass driver="
        )
    violations = _structural_violations(tree, assignment)
    valid = {
        name: buffer for name, buffer in assignment.items()
        if name in tree
        and tree.node(name).is_internal
        and tree.node(name).feasible
    }

    states: Dict[str, NodeCertificate] = {}
    for node in tree.postorder():
        state = _node_state(node, states, valid, coupling, violations,
                            noise_tolerance, check_polarity)
        states[node.name] = state

    source_state = states[tree.source.name]
    slack = source_state.slack - driver.gate_delay(source_state.load)
    driver_noise = driver.resistance * source_state.current
    driver_ok = driver_noise <= source_state.noise_slack + noise_tolerance
    if not driver_ok:
        violations.append(CertificateViolation(
            kind="noise", node=tree.source.name,
            message=(
                "driver noise R_d * I exceeds the source noise slack"
            ),
            expected=source_state.noise_slack, actual=driver_noise,
        ))
    if check_polarity and source_state.polarity != 0:
        violations.append(CertificateViolation(
            kind="polarity", node=tree.source.name,
            message="sinks see an odd number of inverting buffers",
        ))

    # noise feasibility = driver fits AND no buffer-level noise violation
    noisy = any(v.kind == "noise" for v in violations)
    power = None
    if power_model is not None:
        power = recompute_power(tree, valid, power_model)
    return SolutionCertificate(
        tree_name=tree.name,
        slack=slack,
        noise_feasible=not noisy,
        buffer_count=len(valid),
        states=states,
        violations=tuple(violations),
        power=power,
    )


def _node_state(
    node: Node,
    states: Mapping[str, NodeCertificate],
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    violations: List[CertificateViolation],
    noise_tolerance: float,
    check_polarity: bool = True,
) -> NodeCertificate:
    """One step of the bottom-up recurrence (paper eqs. 1, 5, 7, 12)."""
    if node.is_sink:
        assert node.sink is not None
        return NodeCertificate(
            load=node.sink.capacitance,
            slack=node.sink.required_arrival,
            current=0.0,
            noise_slack=node.sink.noise_margin,
            polarity=0,
        )

    load = 0.0
    slack = math.inf
    current = 0.0
    noise_slack = math.inf
    polarity: Optional[int] = None
    for child in node.children:
        wire = child.parent_wire
        assert wire is not None
        below = states[child.name]
        wire_i = coupling.wire_current(wire)
        load += below.load + wire.capacitance
        slack = min(
            slack,
            below.slack
            - wire.resistance * (wire.capacitance / 2.0 + below.load),
        )
        current += below.current + wire_i
        noise_slack = min(
            noise_slack,
            below.noise_slack
            - wire.resistance * (wire_i / 2.0 + below.current),
        )
        if polarity is None:
            polarity = below.polarity
        elif polarity != below.polarity and check_polarity:
            # children disagree on inversion parity; certify against the
            # worst case and flag it (a legal engine solution never
            # merges unequal parities while polarity is enforced; with
            # enforcement off, mixed-parity merges are legal).
            violations.append(CertificateViolation(
                kind="polarity", node=node.name,
                message="children present unequal inversion parity",
            ))
    assert polarity is not None, f"internal node {node.name!r} without children"

    buffer = assignment.get(node.name)
    if buffer is None:
        return NodeCertificate(load, slack, current, noise_slack, polarity)

    injected = buffer.resistance * current
    if injected > noise_slack + noise_tolerance:
        violations.append(CertificateViolation(
            kind="noise", node=node.name,
            message=(
                f"buffer {buffer.name!r} noise R_b * I exceeds the "
                "downstream noise slack"
            ),
            expected=noise_slack, actual=injected,
        ))
    return NodeCertificate(
        load=buffer.input_capacitance,
        slack=slack - buffer.resistance * load - buffer.intrinsic_delay,
        current=0.0,
        noise_slack=buffer.noise_margin,
        polarity=polarity ^ (1 if buffer.inverting else 0),
    )


def certify_claim(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    claimed_slack: Optional[float] = None,
    claimed_noise_feasible: Optional[bool] = None,
    claimed_buffer_count: Optional[int] = None,
    driver: Optional[DriverCell] = None,
    require_noise: bool = False,
    check_polarity: bool = True,
    rel_tol: float = REL_TOL,
    claimed_power: Optional[float] = None,
    power_model=None,
) -> SolutionCertificate:
    """Certify an assignment against the claims made about it.

    Beyond :func:`evaluate_assignment`'s internal consistency checks,
    this compares the claimed slack / noise flag / buffer count against
    the recomputation, and — with ``require_noise`` — demands actual
    noise feasibility regardless of any claim.  ``claimed_power``
    (requires ``power_model``) is checked against the independent power
    re-derivation.
    """
    if claimed_power is not None and power_model is None:
        raise CertificateError(
            "claimed_power requires a power_model to re-derive against"
        )
    certificate = evaluate_assignment(
        tree, assignment, coupling, driver=driver,
        check_polarity=check_polarity, power_model=power_model,
    )
    violations = list(certificate.violations)
    if claimed_power is not None and not _close(
        certificate.power, claimed_power, rel_tol
    ):
        violations.append(CertificateViolation(
            kind="power", node=tree.source.name,
            message="claimed power differs from the re-derivation",
            expected=certificate.power, actual=claimed_power,
        ))
    if claimed_slack is not None and not _close(
        certificate.slack, claimed_slack, rel_tol
    ):
        violations.append(CertificateViolation(
            kind="slack", node=tree.source.name,
            message="claimed source slack differs from the recomputation",
            expected=certificate.slack, actual=claimed_slack,
        ))
    if (
        claimed_noise_feasible is not None
        and claimed_noise_feasible != certificate.noise_feasible
    ):
        violations.append(CertificateViolation(
            kind="noise-claim", node=tree.source.name,
            message=(
                f"claimed noise_feasible={claimed_noise_feasible} but the "
                f"recomputation says {certificate.noise_feasible}"
            ),
        ))
    if (
        claimed_buffer_count is not None
        and claimed_buffer_count != len(assignment)
    ):
        violations.append(CertificateViolation(
            kind="count", node=tree.source.name,
            message="claimed buffer count differs from the assignment size",
            expected=float(len(assignment)),
            actual=float(claimed_buffer_count),
        ))
    if require_noise and not certificate.noise_feasible:
        # already recorded as 'noise' violations by the evaluation;
        # nothing further to add, but ensure it is not silently ok.
        pass
    return SolutionCertificate(
        tree_name=certificate.tree_name,
        slack=certificate.slack,
        noise_feasible=certificate.noise_feasible,
        buffer_count=certificate.buffer_count,
        states=certificate.states,
        violations=tuple(violations),
        power=certificate.power,
    )


@dataclass(frozen=True)
class ResultCertificate:
    """Certification of a whole :class:`~repro.core.dp.DPResult`."""

    tree_name: str
    outcome_certificates: Tuple[SolutionCertificate, ...]
    violations: Tuple[CertificateViolation, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.all_violations()

    def all_violations(self) -> Tuple[CertificateViolation, ...]:
        out: List[CertificateViolation] = list(self.violations)
        for certificate in self.outcome_certificates:
            out.extend(certificate.violations)
        return tuple(out)

    def describe(self) -> str:
        violations = self.all_violations()
        if not violations:
            return (
                f"result certificate for {self.tree_name!r}: "
                f"{len(self.outcome_certificates)} outcome(s) — OK"
            )
        lines = [
            f"result certificate for {self.tree_name!r}: "
            f"{len(violations)} violation(s)"
        ]
        lines.extend("  " + v.describe() for v in violations)
        return "\n".join(lines)


def certify_result(
    result,
    coupling: CouplingModel,
    driver: Optional[DriverCell] = None,
    rel_tol: float = REL_TOL,
) -> ResultCertificate:
    """Certify every outcome of a DP run plus its frontier invariants.

    ``result`` is a :class:`~repro.core.dp.DPResult` (typed loosely to
    keep this module import-independent of the engine).  Checks, per
    outcome: assignment structure, recomputed slack vs claim, noise
    feasibility vs claim, buffer count vs insertions; across outcomes:
    counts strictly increasing (the per-count frontier is well-formed),
    the ``max_buffers`` cap respected, and — for noise-aware runs —
    every surviving outcome actually noise-feasible.

    Runs with wire sizing enabled are certified on the *realized* tree
    of each outcome (widths applied), matching what the claim is about.
    """
    options = result.options
    tree = result.tree
    power_model = getattr(options, "power", None)
    frontier_violations: List[CertificateViolation] = []
    counts = [o.buffer_count for o in result.outcomes]
    if power_model is None:
        if counts != sorted(set(counts)):
            frontier_violations.append(CertificateViolation(
                kind="pareto", node=tree.source.name,
                message=(
                    "outcome counts are not strictly increasing: "
                    f"{counts}"
                ),
            ))
    else:
        # Power mode keeps a (slack, power) frontier per count, so
        # duplicate counts are legal — but counts must stay grouped
        # and non-decreasing, and within a count both slack and power
        # must be strictly increasing (each extra joule buys slack).
        if counts != sorted(counts):
            frontier_violations.append(CertificateViolation(
                kind="pareto", node=tree.source.name,
                message=f"outcome counts are not non-decreasing: {counts}",
            ))
        else:
            by_count: Dict[int, List] = {}
            for outcome in result.outcomes:
                by_count.setdefault(outcome.buffer_count, []).append(outcome)
            for count, group in by_count.items():
                powers = [o.power for o in group]
                slacks = [o.slack for o in group]
                if powers != sorted(set(powers)) or (
                    slacks != sorted(set(slacks))
                ):
                    frontier_violations.append(CertificateViolation(
                        kind="pareto", node=tree.source.name,
                        message=(
                            f"count-{count} outcomes do not form a "
                            "strict (power, slack) frontier"
                        ),
                    ))
    if options.max_buffers is not None:
        for outcome in result.outcomes:
            if outcome.buffer_count > options.max_buffers:
                frontier_violations.append(CertificateViolation(
                    kind="cap", node=tree.source.name,
                    message=(
                        f"outcome with {outcome.buffer_count} buffers "
                        f"exceeds max_buffers={options.max_buffers}"
                    ),
                ))

    certificates: List[SolutionCertificate] = []
    for outcome in result.outcomes:
        assignment = {ins.node: ins.buffer for ins in outcome.insertions}
        if options.sizing is not None:
            work_tree, solution = result.sized_solution(outcome)
            assignment = dict(solution.assignment)
        else:
            work_tree = tree
        certificate = certify_claim(
            work_tree,
            assignment,
            coupling,
            claimed_slack=outcome.slack,
            claimed_noise_feasible=outcome.noise_feasible,
            claimed_buffer_count=outcome.buffer_count,
            driver=driver,
            require_noise=options.noise_aware,
            check_polarity=options.enforce_polarity,
            rel_tol=rel_tol,
            claimed_power=(
                outcome.power if power_model is not None else None
            ),
            power_model=power_model,
        )
        violations = list(certificate.violations)
        if options.noise_aware and not outcome.noise_feasible:
            violations.append(CertificateViolation(
                kind="noise-claim", node=work_tree.source.name,
                message=(
                    "noise-aware run kept an outcome it itself flags "
                    "as noise-infeasible"
                ),
            ))
        certificates.append(SolutionCertificate(
            tree_name=certificate.tree_name,
            slack=certificate.slack,
            noise_feasible=certificate.noise_feasible,
            buffer_count=certificate.buffer_count,
            states=certificate.states,
            violations=tuple(violations),
            power=certificate.power,
        ))
    return ResultCertificate(
        tree_name=tree.name,
        outcome_certificates=tuple(certificates),
        violations=tuple(frontier_violations),
    )


def certify_or_raise(
    tree: RoutingTree,
    assignment: Mapping[str, BufferType],
    coupling: CouplingModel,
    claimed_slack: Optional[float] = None,
    claimed_noise_feasible: Optional[bool] = None,
    claimed_buffer_count: Optional[int] = None,
    driver: Optional[DriverCell] = None,
    require_noise: bool = False,
    rel_tol: float = REL_TOL,
    claimed_power: Optional[float] = None,
    power_model=None,
) -> SolutionCertificate:
    """:func:`certify_claim`, raising :class:`CertificateError` on failure.

    The batch pipeline's ``--certify`` path uses this so a certification
    failure flows through the standard structured-failure machinery.
    """
    certificate = certify_claim(
        tree,
        assignment,
        coupling,
        claimed_slack=claimed_slack,
        claimed_noise_feasible=claimed_noise_feasible,
        claimed_buffer_count=claimed_buffer_count,
        driver=driver,
        require_noise=require_noise,
        rel_tol=rel_tol,
        claimed_power=claimed_power,
        power_model=power_model,
    )
    if not certificate.ok:
        summary = "; ".join(v.describe() for v in certificate.violations)
        raise CertificateError(
            f"net {tree.name!r} failed certification: {summary}"
        )
    return certificate
