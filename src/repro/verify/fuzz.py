"""Seeded fuzzing of the DP engine against the independent checkers.

Each iteration generates a random routing tree (:mod:`.treegen`), runs
the engine in delay and noise-aware modes, and checks the results two
ways: every claimed outcome is re-derived by the certificate checker
(:mod:`.certificate`), and — on nets small enough — the DP's selections
are compared against the exhaustive oracle (:mod:`.oracle`).  Any
failure is **shrunk**: sink/internal subtrees are removed and
pass-through internal nodes spliced out while the failure still
reproduces, so the emitted JSON repro file carries a minimal net, not a
random thicket.

The whole campaign is driven by one integer seed; ``buffopt fuzz
--seed N`` replays it exactly, and each counterexample file embeds both
the original and the shrunk net (via :func:`repro.io.net_to_dict`) plus
enough config to re-check it with :func:`replay_file`.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.dp import ENGINE_CHOICES, DPOptions, DPResult, run_dp
from ..errors import InfeasibleError, ReproError
from ..io import net_from_dict, net_to_dict
from ..library.buffers import BufferLibrary, default_buffer_library
from ..library.power import PowerModel, default_power_model
from ..library.technology import default_technology
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree, Wire
from ..tree.transform import copy_node, copy_wire
from .certificate import certify_result
from .oracle import OracleBoundError, compare_result_to_oracle, exhaustive_oracle
from .treegen import random_tree

#: an Engine maps (tree, library, coupling, noise_aware, max_buffers,
#: power) to a DPResult — the seam where a deliberately broken engine is
#: injected for self-tests.
Engine = Callable[..., DPResult]

#: fuzz modes: the base pair plus their power-model variants.
FUZZ_MODES = ("delay", "buffopt", "delay-power", "buffopt-power")


def _mode_flags(mode: str) -> Tuple[bool, bool]:
    """``(noise_aware, power_active)`` for a fuzz mode string."""
    return mode.startswith("buffopt"), mode.endswith("-power")


def default_engine(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    noise_aware: bool,
    max_buffers: Optional[int] = None,
    dp_engine: str = "reference",
    power: Optional[PowerModel] = None,
) -> DPResult:
    """The real engine, configured the way the fuzzer checks it.

    ``dp_engine`` selects the DP implementation (any of
    :data:`repro.core.dp.ENGINE_CHOICES`) — ``buffopt fuzz --engine
    lishi`` points the whole campaign at the lishi engine's code paths.
    ``power`` (set in the ``*-power`` fuzz modes) runs the DP with the
    power accumulator on.
    """
    options = DPOptions(
        noise_aware=noise_aware,
        track_counts=True,
        max_buffers=max_buffers,
        engine=dp_engine,
        power=power,
    )
    return run_dp(tree, library, coupling=coupling, options=options)


def engine_for(dp_engine: str) -> Engine:
    """An :data:`Engine` callable bound to one DP implementation."""

    def engine(tree, library, coupling, noise_aware, max_buffers=None,
               power=None):
        return default_engine(
            tree, library, coupling, noise_aware, max_buffers,
            dp_engine=dp_engine, power=power,
        )

    return engine


def planted_buggy_engine(
    slack_inflation: float = 0.1, min_sinks: int = 2
) -> Engine:
    """An engine with a deliberate bug, for fuzzer self-tests.

    On trees with at least ``min_sinks`` sinks it inflates every
    outcome's claimed slack — a classic stale-claim bug the certificate
    checker must catch, and one the shrinker should reduce to a minimal
    ``min_sinks``-sink net (single-sink nets behave correctly).
    """

    def engine(tree, library, coupling, noise_aware, max_buffers=None,
               power=None):
        result = default_engine(
            tree, library, coupling, noise_aware, max_buffers, power=power
        )
        if len(tree.sinks) < min_sinks:
            return result
        outcomes = tuple(
            replace(o, slack=o.slack + abs(o.slack) * slack_inflation + 1e-12)
            for o in result.outcomes
        )
        return replace(result, outcomes=outcomes)

    return engine


def planted_buggy_power_engine(
    understatement: float = 0.5, min_sinks: int = 2
) -> Engine:
    """An engine that under-accumulates power, for fuzzer self-tests.

    On trees with at least ``min_sinks`` sinks every outcome's claimed
    power is scaled by ``understatement`` — the canonical accumulator
    bug (a wire or buffer contribution dropped somewhere in the
    recurrence).  Timing claims stay correct, so only the certificate's
    *power re-derivation* (:func:`repro.verify.recompute_power`), which
    shares no code with the engine accumulators, can notice.  The
    self-test asserts the power fuzz modes catch this; the non-power
    modes must NOT (the mutant is invisible without a power model).
    """

    def engine(tree, library, coupling, noise_aware, max_buffers=None,
               power=None):
        result = default_engine(
            tree, library, coupling, noise_aware, max_buffers, power=power
        )
        if power is None or len(tree.sinks) < min_sinks:
            return result
        outcomes = tuple(
            replace(o, power=o.power * understatement)
            for o in result.outcomes
        )
        return replace(result, outcomes=outcomes)

    return engine


def planted_buggy_fast_engine(min_sinks: int = 2) -> Engine:
    """A fast engine with a deliberately broken pruning rule.

    On trees with at least ``min_sinks`` sinks the timing prune keeps
    only the min-load candidate of every group, discarding the rest of
    the frontier.  Over-pruning is *self-consistent* — every surviving
    candidate's claims are still correct, so the certificate passes —
    which is exactly why the fuzzer needs the exhaustive oracle: only a
    ground-truth comparison notices the optimum went missing.  The
    self-test asserts the fuzz/shrink loop catches this.
    """
    from ..core.fast_engine import FastEngine

    class _OverPruningFastEngine(FastEngine):
        def _prune_timing(self, candidates):
            kept = super()._prune_timing(candidates)
            return kept[:1]

    def engine(tree, library, coupling, noise_aware, max_buffers=None,
               power=None):
        if len(tree.sinks) < min_sinks:
            return default_engine(
                tree, library, coupling, noise_aware, max_buffers,
                dp_engine="fast", power=power,
            )
        options = DPOptions(
            noise_aware=noise_aware,
            track_counts=True,
            max_buffers=max_buffers,
            engine="fast",
            power=power,
        )
        driver = tree.driver
        if driver is None:
            raise InfeasibleError(
                f"tree {tree.name!r} has no driver cell; pass driver="
            )
        return _OverPruningFastEngine(
            tree, library, coupling, options, driver
        ).run()

    return engine


def planted_buggy_lishi_engine(min_sinks: int = 2) -> Engine:
    """A lishi engine with deliberately over-eager dominance eviction.

    On trees with at least ``min_sinks`` sinks the timing prune keeps
    only the min-load candidate of every group — the same planted bug
    as :func:`planted_buggy_fast_engine`, expressed through the lishi
    engine's prune seam.  Because the lishi engine's claim is *semantic
    equivalence* rather than bit-identity, this is the mutant the
    equivalence harness must catch: every surviving candidate is still
    self-consistent (the certificate passes), only the oracle or a
    reference comparison notices the evicted optimum.
    """
    from ..core.lishi_engine import LiShiEngine

    class _OverEvictingLiShiEngine(LiShiEngine):
        def _prune_timing(self, candidates, frontier):
            kept = super()._prune_timing(candidates, frontier)
            return kept[:1]

    def engine(tree, library, coupling, noise_aware, max_buffers=None,
               power=None):
        if len(tree.sinks) < min_sinks:
            return default_engine(
                tree, library, coupling, noise_aware, max_buffers,
                dp_engine="lishi", power=power,
            )
        options = DPOptions(
            noise_aware=noise_aware,
            track_counts=True,
            max_buffers=max_buffers,
            engine="lishi",
            power=power,
        )
        driver = tree.driver
        if driver is None:
            raise InfeasibleError(
                f"tree {tree.name!r} has no driver cell; pass driver="
            )
        return _OverEvictingLiShiEngine(
            tree, library, coupling, options, driver
        ).run()

    return engine


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzz campaign: sizes, seeds, and which checks run."""

    iterations: int = 100
    seed: int = 0
    max_internal: int = 5
    #: finite sink RATs — without them every slack is ``inf`` and slack
    #: comparisons are vacuous, so fuzzing defaults to finite RATs.
    with_rats: bool = True
    #: any of :data:`FUZZ_MODES`; the ``*-power`` variants run the DP
    #: with the default power model and add the power oracle legs.
    modes: Tuple[str, ...] = ("delay", "buffopt")
    max_buffers: Optional[int] = None
    #: run DP-vs-oracle comparisons on nets with at most this many sites
    #: (0 disables the oracle entirely).
    oracle_sites: int = 4
    oracle_max_assignments: int = 100_000
    #: the oracle reruns the DP with a library restricted to this many
    #: cells to keep the enumeration tractable.
    oracle_cells: int = 2
    shrink: bool = True
    #: directory for counterexample JSON files (None: don't write).
    out_dir: Optional[str] = None
    max_counterexamples: int = 10
    #: DP implementation under test (``"reference"``, ``"fast"``,
    #: ``"lishi"``, or ``"auto"``) when no explicit engine callable is
    #: passed to :func:`run_fuzz`.
    engine: str = "reference"

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        for mode in self.modes:
            if mode not in FUZZ_MODES:
                raise ValueError(f"unknown fuzz mode {mode!r}")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {ENGINE_CHOICES})"
            )


@dataclass(frozen=True)
class Failure:
    """One failed check on one net (before shrinking)."""

    check: str  # "certificate" | "oracle"
    mode: str  # "delay" | "buffopt"
    messages: Tuple[str, ...]


@dataclass(frozen=True)
class Counterexample:
    """A shrunk, replayable engine failure."""

    seed: int
    iteration: int
    tree_seed: int
    check: str
    mode: str
    messages: Tuple[str, ...]
    net: dict
    shrunk_net: dict
    original_nodes: int
    shrunk_nodes: int

    def to_json(self) -> dict:
        return {
            "kind": "buffopt-fuzz-counterexample",
            "seed": self.seed,
            "iteration": self.iteration,
            "tree_seed": self.tree_seed,
            "check": self.check,
            "mode": self.mode,
            "messages": list(self.messages),
            "original_nodes": self.original_nodes,
            "shrunk_nodes": self.shrunk_nodes,
            "net": self.net,
            "shrunk_net": self.shrunk_net,
        }

    def describe(self) -> str:
        return (
            f"iteration {self.iteration} ({self.mode}/{self.check}): "
            f"{self.original_nodes} -> {self.shrunk_nodes} nodes; "
            + "; ".join(self.messages[:3])
        )


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of a whole campaign."""

    config: FuzzConfig
    iterations_run: int
    counterexamples: Tuple[Counterexample, ...]
    skipped_infeasible: int = 0
    written_files: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def describe(self) -> str:
        head = (
            f"fuzz seed={self.config.seed}: {self.iterations_run} "
            f"iteration(s), {self.skipped_infeasible} infeasible skip(s), "
            f"{len(self.counterexamples)} counterexample(s)"
        )
        if self.ok:
            return head + " — OK"
        lines = [head]
        lines.extend("  " + c.describe() for c in self.counterexamples)
        lines.extend(f"  wrote {p}" for p in self.written_files)
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable campaign summary (``buffopt fuzz --json``)."""
        return {
            "kind": "buffopt-fuzz-report",
            "ok": self.ok,
            "seed": self.config.seed,
            "engine": self.config.engine,
            "modes": list(self.config.modes),
            "iterations_run": self.iterations_run,
            "skipped_infeasible": self.skipped_infeasible,
            "counterexamples": [
                c.to_json() for c in self.counterexamples
            ],
            "written_files": list(self.written_files),
        }


def _oracle_library(library: BufferLibrary, cells: int) -> BufferLibrary:
    """A small, deterministic sub-library for exhaustive comparisons."""
    chosen: List[str] = []
    non_inverting = [b.name for b in library if not b.inverting]
    inverting = [b.name for b in library if b.inverting]
    for pool in (non_inverting, inverting):
        if pool and len(chosen) < cells:
            chosen.append(pool[0])
    for buffer in library:
        if len(chosen) >= cells:
            break
        if buffer.name not in chosen:
            chosen.append(buffer.name)
    return library.restricted(chosen)


def check_tree(
    tree: RoutingTree,
    config: FuzzConfig,
    engine: Engine,
    library: BufferLibrary,
    coupling: CouplingModel,
) -> Tuple[List[Failure], int]:
    """All fuzz checks on one net.

    Returns ``(failures, infeasible_skips)`` — a mode whose net is
    legitimately noise-infeasible is skipped, not failed.
    """
    failures: List[Failure] = []
    skipped = 0
    site_count = sum(
        1 for n in tree.nodes() if n.is_internal and n.feasible
    )
    for mode in config.modes:
        noise_aware, power_active = _mode_flags(mode)
        power_model = default_power_model() if power_active else None
        mode_coupling = coupling if noise_aware else CouplingModel.silent()
        try:
            result = engine(
                tree, library, mode_coupling,
                noise_aware=noise_aware, max_buffers=config.max_buffers,
                power=power_model,
            )
        except InfeasibleError:
            skipped += 1
            continue
        certificate = certify_result(result, mode_coupling)
        if not certificate.ok:
            failures.append(Failure(
                check="certificate", mode=mode,
                messages=tuple(
                    v.describe() for v in certificate.all_violations()
                ),
            ))
        if 0 < config.oracle_sites and site_count <= config.oracle_sites:
            small = _oracle_library(library, config.oracle_cells)
            try:
                small_result = engine(
                    tree, small, mode_coupling,
                    noise_aware=noise_aware, max_buffers=config.max_buffers,
                    power=power_model,
                )
                oracle = exhaustive_oracle(
                    tree, small, mode_coupling,
                    noise_aware=noise_aware,
                    max_buffers=config.max_buffers,
                    max_sites=config.oracle_sites,
                    max_assignments=config.oracle_max_assignments,
                    power_model=power_model,
                )
            except (InfeasibleError, OracleBoundError):
                skipped += 1
                continue
            disagreements = compare_result_to_oracle(small_result, oracle)
            if disagreements:
                failures.append(Failure(
                    check="oracle", mode=mode,
                    messages=tuple(d.describe() for d in disagreements),
                ))
    return failures, skipped


# ---------------------------------------------------------------------------
# shrinking


def _descendants(tree: RoutingTree, root: str) -> Set[str]:
    doomed = {root}
    stack = [tree.node(root)]
    while stack:
        node = stack.pop()
        for child in node.children:
            doomed.add(child.name)
            stack.append(child)
    return doomed


def _rebuild(
    tree: RoutingTree, keep: Set[str], extra_wires: Sequence[Wire] = ()
) -> Optional[RoutingTree]:
    """Rebuild the tree on a node subset, pruning childless internals.

    ``extra_wires`` (for splices) are template wires whose endpoint
    *names* are looked up in the kept set.  Returns ``None`` when the
    subset is not a valid net (no sinks, or the source goes childless).
    """
    keep = set(keep)
    wire_templates = [
        w for w in tree.wires()
        if w.parent.name in keep and w.child.name in keep
    ] + list(extra_wires)

    # Iteratively drop internal nodes left with no children.
    while True:
        child_counts = {name: 0 for name in keep}
        for wire in wire_templates:
            if wire.parent.name in keep and wire.child.name in keep:
                child_counts[wire.parent.name] += 1
        childless = {
            name for name, count in child_counts.items()
            if count == 0 and tree.node(name).is_internal
        }
        if not childless:
            break
        keep -= childless
    wire_templates = [
        w for w in wire_templates
        if w.parent.name in keep and w.child.name in keep
    ]

    if not any(tree.node(name).is_sink for name in keep):
        return None
    source = tree.source.name
    if source not in keep or not any(
        w.parent.name == source for w in wire_templates
    ):
        return None
    copies = {name: copy_node(tree.node(name)) for name in keep}
    wires = [
        copy_wire(w, copies[w.parent.name], copies[w.child.name])
        for w in wire_templates
    ]
    try:
        return RoutingTree(
            list(copies.values()), wires, driver=tree.driver,
            name=tree.name,
        )
    except ReproError:
        return None


def _remove_subtree(tree: RoutingTree, root: str) -> Optional[RoutingTree]:
    node = tree.node(root)
    if node.is_source:
        return None
    keep = {n.name for n in tree.nodes()} - _descendants(tree, root)
    return _rebuild(tree, keep)


def _splice(tree: RoutingTree, name: str) -> Optional[RoutingTree]:
    """Remove a pass-through internal node, merging its two wires."""
    node = tree.node(name)
    if not node.is_internal or len(node.children) != 1:
        return None
    above = node.parent_wire
    below = node.children[0].parent_wire
    assert above is not None and below is not None
    for wire in (above, below):
        # Only splice plain wires; summing explicit currents or mixing
        # per-wire coupling overrides would change the physics.
        if (wire.current is not None or wire.coupling_ratio is not None
                or wire.slope is not None):
            return None
    merged = Wire(
        parent=above.parent,
        child=below.child,
        length=above.length + below.length,
        resistance=above.resistance + below.resistance,
        capacitance=above.capacitance + below.capacitance,
    )
    keep = {n.name for n in tree.nodes()} - {name}
    return _rebuild(tree, keep, extra_wires=[merged])


def shrink_tree(
    tree: RoutingTree,
    fails: Callable[[RoutingTree], bool],
    max_steps: int = 200,
) -> RoutingTree:
    """Greedily minimize a failing net while ``fails`` stays true.

    Two reduction moves, retried to a fixed point: remove a whole
    subtree (sinks last, so big cuts are tried first), and splice out
    pass-through internal nodes.  ``fails`` must be true for ``tree``
    itself; the returned net also satisfies it.
    """
    current = tree
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        removal_roots = [
            n.name for n in current.nodes() if n.is_internal
        ] + [n.name for n in current.sinks]
        for root in removal_roots:
            candidate = _remove_subtree(current, root)
            if candidate is not None and fails(candidate):
                current = candidate
                changed = True
                steps += 1
                break
        if changed:
            continue
        for node in current.nodes():
            if node.is_internal and len(node.children) == 1:
                candidate = _splice(current, node.name)
                if candidate is not None and fails(candidate):
                    current = candidate
                    changed = True
                    steps += 1
                    break
    return current


# ---------------------------------------------------------------------------
# the campaign


def run_fuzz(
    config: FuzzConfig,
    engine: Optional[Engine] = None,
    library: Optional[BufferLibrary] = None,
    coupling: Optional[CouplingModel] = None,
    tracer=None,
    metrics=None,
) -> FuzzReport:
    """Run a seeded fuzz campaign; see :class:`FuzzConfig`.

    ``engine`` defaults to the real DP in the implementation
    ``config.engine`` names; the self-test suite passes
    :func:`planted_buggy_engine` / :func:`planted_buggy_fast_engine`
    instead and asserts the campaign catches them.

    ``tracer``/``metrics`` (see :mod:`repro.obs`) journal campaign
    progress: a ``fuzz`` span wrapping the run, one ``fuzz.iteration``
    event per net, a ``fuzz.counterexample`` event per confirmed
    failure, and the ``buffopt_fuzz_*`` counters.
    """
    from ..obs import NULL_TRACER

    tracer = tracer or NULL_TRACER
    if engine is None:
        engine = engine_for(config.engine)
    if library is None:
        library = default_buffer_library()
    if coupling is None:
        coupling = CouplingModel.estimation_mode(default_technology())
    if metrics is not None:
        iterations_total = metrics.counter(
            "buffopt_fuzz_iterations_total",
            "fuzz iterations executed (one random net each)",
        )
        counterexamples_total = metrics.counter(
            "buffopt_fuzz_counterexamples_total",
            "confirmed fuzz counterexamples, by mode and check",
        )
        skips_total = metrics.counter(
            "buffopt_fuzz_skips_total",
            "mode checks skipped on legitimately infeasible nets",
        )
    else:
        iterations_total = counterexamples_total = skips_total = None

    rng = random.Random(config.seed)
    counterexamples: List[Counterexample] = []
    written: List[str] = []
    skipped = 0
    iterations_run = 0
    campaign = tracer.start_span(
        "fuzz", seed=config.seed, iterations=config.iterations,
        engine=config.engine, modes=list(config.modes),
    )
    for iteration in range(config.iterations):
        iterations_run += 1
        tree_seed = rng.getrandbits(32)
        tree = random_tree(
            random.Random(tree_seed),
            max_internal=config.max_internal,
            with_rats=config.with_rats,
            name=f"fuzz{iteration}",
        )
        failures, mode_skips = check_tree(
            tree, config, engine, library, coupling
        )
        skipped += mode_skips
        tracer.event(
            "fuzz.iteration", iteration=iteration, tree_seed=tree_seed,
            failures=len(failures), skips=mode_skips,
        )
        if iterations_total is not None:
            iterations_total.inc()
            if mode_skips:
                skips_total.inc(mode_skips)
        for failure in failures:
            shrunk = tree
            if config.shrink:
                def still_fails(candidate: RoutingTree) -> bool:
                    refound, _ = check_tree(
                        candidate, config, engine, library, coupling
                    )
                    return any(
                        f.check == failure.check and f.mode == failure.mode
                        for f in refound
                    )

                shrunk = shrink_tree(tree, still_fails)
            example = Counterexample(
                seed=config.seed,
                iteration=iteration,
                tree_seed=tree_seed,
                check=failure.check,
                mode=failure.mode,
                messages=failure.messages,
                net=net_to_dict(tree),
                shrunk_net=net_to_dict(shrunk),
                original_nodes=len(list(tree.nodes())),
                shrunk_nodes=len(list(shrunk.nodes())),
            )
            counterexamples.append(example)
            tracer.event(
                "fuzz.counterexample", iteration=iteration,
                tree_seed=tree_seed, mode=failure.mode,
                check=failure.check,
                shrunk_nodes=example.shrunk_nodes,
                original_nodes=example.original_nodes,
            )
            if counterexamples_total is not None:
                counterexamples_total.inc(
                    mode=failure.mode, check=failure.check
                )
            if config.out_dir is not None:
                out_dir = pathlib.Path(config.out_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                path = out_dir / (
                    f"repro_seed{config.seed}_it{iteration}"
                    f"_{failure.mode}_{failure.check}.json"
                )
                path.write_text(json.dumps(example.to_json(), indent=2) + "\n")
                written.append(str(path))
        if len(counterexamples) >= config.max_counterexamples:
            break
    tracer.end_span(
        campaign, iterations_run=iterations_run,
        counterexamples=len(counterexamples), skips=skipped,
    )
    return FuzzReport(
        config=config,
        iterations_run=iterations_run,
        counterexamples=tuple(counterexamples),
        skipped_infeasible=skipped,
        written_files=tuple(written),
    )


def replay_file(
    path,
    engine: Optional[Engine] = None,
    use_shrunk: bool = True,
) -> List[Failure]:
    """Re-run the checks recorded in a counterexample JSON file.

    Returns the (possibly empty) list of failures the replay produced —
    empty means the bug no longer reproduces.
    """
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("kind") != "buffopt-fuzz-counterexample":
        raise ReproError(
            f"{path}: not a buffopt fuzz counterexample file"
        )
    net = data["shrunk_net" if use_shrunk else "net"]
    tree, _ = net_from_dict(net)
    config = FuzzConfig(
        iterations=1,
        seed=int(data.get("seed", 0)),
        modes=(data["mode"],),
        shrink=False,
    )
    failures, _ = check_tree(
        tree, config,
        engine or default_engine,
        default_buffer_library(),
        CouplingModel.estimation_mode(default_technology()),
    )
    return [f for f in failures if f.check == data["check"]]
