"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Subclasses mark the subsystem that failed; they carry
plain-English messages with the offending values embedded.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeStructureError(ReproError):
    """A routing tree violates a structural invariant.

    Raised for non-binary nodes, cycles, orphan nodes, multiple sources,
    duplicate node names, or wires whose endpoints are unknown.
    """


class TechnologyError(ReproError):
    """A technology / library parameter is out of its physical domain."""


class InfeasibleError(ReproError):
    """No legal solution exists for the requested optimization.

    E.g. Algorithm 1 reaches a point where the noise slack is already below
    ``Rb * I(v)`` and no buffer position can satisfy the constraint, or
    Algorithm 3 finds no noise-feasible candidate at the source.
    """


class BudgetExceededError(ReproError):
    """A cooperative resource budget was exhausted mid-optimization.

    Raised by :class:`~repro.core.budget.RunBudget` when the DP engine
    generates more candidates than the run's candidate budget allows
    (the candidate count is the engine's memory proxy: every live
    candidate is a constant-size tuple).  The message names the net, the
    node being processed, and both the observed and budgeted counts.
    """


class TimeoutError(ReproError):  # noqa: A001 - deliberate, scoped to repro.errors
    """A per-run wall-clock deadline elapsed.

    Raised cooperatively by :class:`~repro.core.budget.RunBudget` between
    DP node visits, or recorded by the batch layer when a supervisor had
    to kill a worker that blew past its hard deadline.  Shadows the
    builtin on purpose — catch ``repro.errors.TimeoutError`` (or
    :class:`ReproError`) to handle engine deadlines specifically.
    """


class WorkerCrashError(ReproError):
    """A batch worker process died without returning a result.

    Recorded (never raised inside the dead worker, which cannot speak)
    by :class:`~repro.batch.ResilientExecutor` when a child process
    exits abnormally — segfault, ``os._exit``, OOM kill — while
    optimizing one net.  The message carries the exit code or signal.
    """


class CertificateError(ReproError):
    """An optimization result failed independent certification.

    Raised by :mod:`repro.verify` when the bottom-up recomputation of
    ``(C, q, I, NS)`` disagrees with a claimed slack, noise-feasibility
    flag, or buffer count, or when a solution is structurally illegal
    (buffer on an infeasible site, odd inversion parity at a sink).  The
    message enumerates every :class:`~repro.verify.CertificateViolation`.
    """


class SimulationError(ReproError):
    """The circuit simulator could not assemble or solve the system."""


class AnalysisError(ReproError):
    """A noise / timing analysis was asked on an invalid configuration."""


class WorkloadError(ReproError):
    """Workload generation received inconsistent parameters."""


class ServiceError(ReproError):
    """The optimization service hit an operational failure.

    Raised by :mod:`repro.service` for journal corruption (non-torn-tail),
    protocol-version mismatches on recovery, lifecycle misuse (submitting
    to a stopped server), and startup failures.  Request-level problems —
    malformed payloads, shed requests — travel as structured protocol
    *responses* (HTTP 4xx/5xx with a JSON error body), never as this
    exception: a bad request must not be able to take the server down.
    """


class ObservabilityError(ReproError):
    """The tracing / metrics layer was misused or hit corrupt data.

    Raised by :mod:`repro.obs` for unbalanced span stacks, writes to a
    closed event sink, invalid metric or label names, re-registration of
    a metric under a different type, and corrupt (non-torn-tail) trace
    files.  Never raised by disabled instrumentation — the no-op path
    cannot fail.
    """
