"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Subclasses mark the subsystem that failed; they carry
plain-English messages with the offending values embedded.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeStructureError(ReproError):
    """A routing tree violates a structural invariant.

    Raised for non-binary nodes, cycles, orphan nodes, multiple sources,
    duplicate node names, or wires whose endpoints are unknown.
    """


class TechnologyError(ReproError):
    """A technology / library parameter is out of its physical domain."""


class InfeasibleError(ReproError):
    """No legal solution exists for the requested optimization.

    E.g. Algorithm 1 reaches a point where the noise slack is already below
    ``Rb * I(v)`` and no buffer position can satisfy the constraint, or
    Algorithm 3 finds no noise-feasible candidate at the source.
    """


class SimulationError(ReproError):
    """The circuit simulator could not assemble or solve the system."""


class AnalysisError(ReproError):
    """A noise / timing analysis was asked on an invalid configuration."""


class WorkloadError(ReproError):
    """Workload generation received inconsistent parameters."""
