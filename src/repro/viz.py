"""SVG rendering of routing trees and buffer-insertion solutions.

Pure-stdlib plotting for quick visual inspection: the tree's wires drawn
in plan view (using node positions), sinks/sources/buffers as marked
glyphs, and optional per-sink noise annotation.  Intended for debugging
and documentation — an optimizer is much easier to trust when you can
*see* that the buffers sit where Theorem 1 says they should.

Nodes without positions (abstract example nets) are laid out
automatically with a simple recursive tidy-tree pass, so every net is
renderable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from .errors import AnalysisError
from .library.buffers import BufferType
from .noise.coupling import CouplingModel
from .noise.devgan import sink_noise
from .tree.topology import Node, RoutingTree

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class SvgStyle:
    """Colors and sizes of the rendering."""

    width: int = 900
    height: int = 640
    margin: int = 48
    wire_color: str = "#4a5568"
    wire_width: float = 2.0
    source_color: str = "#2b6cb0"
    sink_color: str = "#2f855a"
    sink_violation_color: str = "#c53030"
    buffer_color: str = "#b7791f"
    font: str = "11px sans-serif"
    background: str = "#ffffff"


def _positions(tree: RoutingTree) -> Dict[str, Tuple[float, float]]:
    """Real positions when available, else a tidy-tree layout."""
    placed = {
        node.name: node.position
        for node in tree.nodes()
        if node.position is not None
    }
    if len(placed) == len(tree):
        return placed  # type: ignore[return-value]

    # Tidy layout: leaves get consecutive x slots, parents center over
    # children; depth becomes y.
    positions: Dict[str, Tuple[float, float]] = {}
    next_slot = [0.0]

    def depth_of(node: Node) -> int:
        depth = 0
        while node.parent_wire is not None:
            node = node.parent_wire.parent
            depth += 1
        return depth

    def place(node: Node) -> float:
        if not node.children:
            x = next_slot[0]
            next_slot[0] += 1.0
        else:
            xs = [place(child) for child in node.children]
            x = sum(xs) / len(xs)
        positions[node.name] = (x, float(depth_of(node)))
        return x

    place(tree.source)
    return positions


def _scale(
    positions: Mapping[str, Tuple[float, float]], style: SvgStyle
) -> Dict[str, Tuple[float, float]]:
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    inner_w = style.width - 2 * style.margin
    inner_h = style.height - 2 * style.margin
    return {
        name: (
            style.margin + (x - min_x) / span_x * inner_w,
            style.margin + (y - min_y) / span_y * inner_h,
        )
        for name, (x, y) in positions.items()
    }


def render_svg(
    tree: RoutingTree,
    buffers: Optional[Mapping[str, BufferType]] = None,
    coupling: Optional[CouplingModel] = None,
    style: Optional[SvgStyle] = None,
) -> str:
    """Render ``tree`` (optionally buffered) as an SVG string.

    With ``coupling`` given, sinks are annotated with their Devgan noise
    and colored red when violating.
    """
    style = style or SvgStyle()
    buffers = buffers or {}
    for name in buffers:
        if name not in tree:
            raise AnalysisError(f"buffer map references unknown node {name!r}")

    noise: Dict[str, Tuple[float, bool]] = {}
    if coupling is not None:
        for entry in sink_noise(tree, coupling, buffers):
            noise[entry.node] = (entry.noise, entry.violated)

    points = _scale(_positions(tree), style)
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{style.width}" '
        f'height="{style.height}" viewBox="0 0 {style.width} {style.height}">',
        f'<rect width="100%" height="100%" fill="{style.background}"/>',
        f"<title>{tree.name}</title>",
    ]

    for wire in tree.wires():
        (x1, y1) = points[wire.parent.name]
        (x2, y2) = points[wire.child.name]
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{style.wire_color}" stroke-width="{style.wire_width}"/>'
        )

    for node in tree.nodes():
        x, y = points[node.name]
        if node.is_source:
            parts.append(
                f'<rect x="{x - 6:.1f}" y="{y - 6:.1f}" width="12" height="12" '
                f'fill="{style.source_color}"><title>source {node.name}'
                "</title></rect>"
            )
            parts.append(_label(x + 9, y - 8, node.name, style))
        elif node.is_sink:
            hit = noise.get(node.name)
            color = (
                style.sink_violation_color
                if hit is not None and hit[1]
                else style.sink_color
            )
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" fill="{color}">'
                f"<title>sink {node.name}</title></circle>"
            )
            text = node.name
            if hit is not None:
                text += f" ({hit[0] * 1e3:.0f} mV)"
            parts.append(_label(x + 9, y + 4, text, style))
        elif node.name in buffers:
            buffer = buffers[node.name]
            shape = "polygon" if not buffer.inverting else "polygon"
            parts.append(
                f'<polygon points="{x - 7:.1f},{y - 6:.1f} {x - 7:.1f},'
                f'{y + 6:.1f} {x + 7:.1f},{y:.1f}" '
                f'fill="{style.buffer_color}">'
                f"<title>{buffer.name} at {node.name}</title></polygon>"
            )
            if buffer.inverting:
                parts.append(
                    f'<circle cx="{x + 9:.1f}" cy="{y:.1f}" r="2.5" '
                    f'fill="{style.buffer_color}"/>'
                )
            parts.append(_label(x + 12, y - 6, buffer.name, style))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(
    tree: RoutingTree,
    path: PathLike,
    buffers: Optional[Mapping[str, BufferType]] = None,
    coupling: Optional[CouplingModel] = None,
    style: Optional[SvgStyle] = None,
) -> None:
    """Render and write the SVG to ``path``."""
    pathlib.Path(path).write_text(
        render_svg(tree, buffers, coupling, style) + "\n"
    )


def _label(x: float, y: float, text: str, style: SvgStyle) -> str:
    safe = (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" style="font:{style.font}" '
        f'fill="#1a202c">{safe}</text>'
    )
