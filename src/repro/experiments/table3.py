"""Table III — noise avoidance: BuffOpt versus DelayOpt(k).

For each method the paper reports the nets-per-buffer-count histogram, the
total number of inserted buffers, the number of nets still violating the
noise constraints, and the CPU time.  Shape to reproduce: DelayOpt(k)
inserts substantially more buffers than BuffOpt at k = 4 yet *still*
leaves violations (Theorem 2 in the field), and BuffOpt's CPU time is
comparable or lower because noisy candidates are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .harness import PopulationRun


@dataclass(frozen=True)
class Table3Row:
    method: str
    histogram: Dict[int, int]  # buffer count -> nets
    total_buffers: int
    violations: int
    cpu_seconds: float


@dataclass(frozen=True)
class Table3:
    rows: List[Table3Row]
    max_count: int


def build_table3(run: PopulationRun) -> Table3:
    rows: List[Table3Row] = [
        Table3Row(
            method="BuffOpt",
            histogram=run.buffer_histogram(),
            total_buffers=run.total_buffopt_buffers(),
            violations=run.nets_with_violations_after_buffopt(),
            cpu_seconds=run.buffopt_seconds,
        )
    ]
    shared_per_k = run.delayopt_seconds / max(len(run.ks), 1)
    for k in run.ks:
        per_k_seconds = run.delayopt_seconds_per_k.get(k, shared_per_k)
        histogram: Dict[int, int] = {}
        for record in run.records:
            count = record.delayopt[k].buffer_count
            histogram[count] = histogram.get(count, 0) + 1
        rows.append(
            Table3Row(
                method=f"DelayOpt({k})",
                histogram=dict(sorted(histogram.items())),
                total_buffers=run.total_delayopt_buffers(k),
                violations=run.nets_with_violations_after_delayopt(k),
                cpu_seconds=per_k_seconds,
            )
        )
    max_count = max(
        (count for row in rows for count in row.histogram), default=0
    )
    return Table3(rows=rows, max_count=max_count)


def format_table3(table: Table3) -> str:
    counts: Sequence[int] = range(table.max_count + 1)
    header = (
        f"{'method':<12} "
        + " ".join(f"b={c:>2}" for c in counts)
        + f" {'total':>6} {'noisy nets':>10} {'cpu (s)':>8}"
    )
    lines = [
        "Table III: noise avoidance, BuffOpt vs DelayOpt(k) "
        "(nets per inserted-buffer count)",
        header,
        "-" * len(header),
    ]
    for row in table.rows:
        cells = " ".join(f"{row.histogram.get(c, 0):>4}" for c in counts)
        lines.append(
            f"{row.method:<12} {cells} {row.total_buffers:>6} "
            f"{row.violations:>10} {row.cpu_seconds:>8.2f}"
        )
    return "\n".join(lines)
