"""Shared experiment configuration (the paper's Section V setup).

The paper runs everything in *estimation mode*: a single aggressor with a
0.7 coupling-to-total-capacitance ratio, 0.25 ns rise time, 1.8 V supply
(slope 7.2 V/ns) and a uniform 0.8 V gate noise margin, over the 500
largest-capacitance nets of a microprocessor design, with an 11-buffer
library (5 inverting + 6 non-inverting).

:func:`default_experiment` wires those numbers to our synthetic substrate.
``nets`` can be reduced for quick runs (the benchmark suite defaults to a
smaller population via the ``REPRO_BENCH_NETS`` environment variable; the
CLI exposes ``--nets``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..library.buffers import BufferLibrary, default_buffer_library
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..noise.coupling import CouplingModel
from ..units import UM
from ..workloads.generator import (
    GeneratedNet,
    WorkloadConfig,
    generate_population,
)

#: paper's experimental constants
COUPLING_RATIO = 0.7
RISE_TIME = 0.25e-9
VDD = 1.8
NOISE_MARGIN = 0.8
POPULATION = 500


@dataclass
class Experiment:
    """Everything the table/figure builders need, generated once."""

    technology: Technology
    library: BufferLibrary
    cells: CellLibrary
    coupling: CouplingModel
    workload: WorkloadConfig
    max_segment_length: float
    #: DP implementation the table/figure builders run with
    #: (``"reference"`` or ``"fast"`` — results are bit-identical).
    engine: str = "reference"
    _nets: Optional[List[GeneratedNet]] = field(default=None, repr=False)

    @property
    def nets(self) -> List[GeneratedNet]:
        """The seeded net population (generated lazily, cached)."""
        if self._nets is None:
            self._nets = generate_population(
                self.workload, self.technology, self.cells
            )
        return self._nets


def default_experiment(
    nets: int = POPULATION,
    seed: int = WorkloadConfig.seed,
    max_segment_length: float = 500 * UM,
    engine: str = "reference",
) -> Experiment:
    """The reproduction's estimation-mode experiment."""
    technology = default_technology().scaled(
        vdd=VDD,
        default_coupling_ratio=COUPLING_RATIO,
        default_aggressor_slew=RISE_TIME,
    )
    return Experiment(
        technology=technology,
        library=default_buffer_library(noise_margin=NOISE_MARGIN),
        cells=default_cell_library(noise_margin=NOISE_MARGIN),
        coupling=CouplingModel.estimation_mode(technology),
        workload=WorkloadConfig(nets=nets, seed=seed, noise_margin=NOISE_MARGIN),
        max_segment_length=max_segment_length,
        engine=engine,
    )


def bench_population_size(default: int = 120) -> int:
    """Population size for the benchmark suite.

    Set ``REPRO_BENCH_NETS=500`` to regenerate the tables at full paper
    scale; the default keeps ``pytest benchmarks/`` under a few minutes.
    """
    value = os.environ.get("REPRO_BENCH_NETS", "")
    if not value:
        return default
    size = int(value)
    if size < 1:
        raise ValueError(f"REPRO_BENCH_NETS must be >= 1, got {size}")
    return size
