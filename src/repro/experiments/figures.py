"""Characterization sweeps for the paper's analytical results.

The paper's evaluation section is all tables, but its theory section is
anchored by three quantitative pictures that these sweeps regenerate as
data series (printable as aligned columns; plot-ready if desired):

* **Theorem 1 sweep** — maximum noise-safe wire length versus driver
  resistance and versus downstream current (the observations after
  Theorem 1: length shrinks as ``Rb`` or ``I`` grow; the driverless bound
  ``sqrt(2 NS / (r i))`` is the ceiling).
* **Fig. 7 spacing** — iterating Theorem 1 along a long line: the
  sink-adjacent span and the steady-state buffer-to-buffer span, per
  buffer type.
* **Theorem 2 existence** — the noise of a delay-optimally spaced wire
  versus its length: any margin below the curve is violated by a
  delay-only solution (eq. 19), demonstrated on a concrete net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.wire_length import (
    max_safe_length,
    uniform_line_spacing,
    uniform_wire_noise,
    unloaded_max_length,
)
from ..units import MM
from .config import Experiment


@dataclass(frozen=True)
class Series:
    """One labeled (x, y) data series."""

    label: str
    x_name: str
    y_name: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]

    def format(self, x_scale: float = 1.0, y_scale: float = 1.0) -> str:
        lines = [f"-- {self.label} ({self.x_name} vs {self.y_name})"]
        for xv, yv in zip(self.x, self.y):
            lines.append(f"   {xv * x_scale:>12.4g} {yv * y_scale:>12.4g}")
        return "\n".join(lines)


def theorem1_vs_driver_resistance(
    experiment: Experiment,
    resistances: Sequence[float] = tuple(np.linspace(0.0, 1000.0, 21)),
    noise_slack: float = 0.8,
) -> Series:
    """Max safe length as the driving resistance grows (monotone down)."""
    technology = experiment.technology
    unit_r = technology.unit_resistance
    unit_i = experiment.coupling.unit_current(technology.unit_capacitance)
    lengths = [
        max_safe_length(rb, unit_r, unit_i, 0.0, noise_slack)
        for rb in resistances
    ]
    return Series(
        label="Theorem 1: L_max vs driver resistance",
        x_name="Rb (ohm)",
        y_name="L_max (mm)",
        x=tuple(resistances),
        y=tuple(lengths),
    )


def theorem1_vs_downstream_current(
    experiment: Experiment,
    currents: Sequence[float] = tuple(np.linspace(0.0, 3e-3, 16)),
    driver_resistance: float = 200.0,
    noise_slack: float = 0.8,
) -> Series:
    """Max safe length as downstream current grows (hits 0 at NS/Rb)."""
    technology = experiment.technology
    unit_r = technology.unit_resistance
    unit_i = experiment.coupling.unit_current(technology.unit_capacitance)
    xs: List[float] = []
    ys: List[float] = []
    for current in currents:
        if noise_slack < driver_resistance * current:
            break  # infeasible beyond this point (Theorem 1 side condition)
        xs.append(current)
        ys.append(
            max_safe_length(
                driver_resistance, unit_r, unit_i, current, noise_slack
            )
        )
    return Series(
        label="Theorem 1: L_max vs downstream current",
        x_name="I (A)",
        y_name="L_max (mm)",
        x=tuple(xs),
        y=tuple(ys),
    )


def spacing_by_buffer(experiment: Experiment) -> List[Series]:
    """Fig.-7-style iterated spacing for every buffer in the library."""
    technology = experiment.technology
    unit_r = technology.unit_resistance
    unit_i = experiment.coupling.unit_current(technology.unit_capacitance)
    sink_margin = experiment.workload.noise_margin
    names: List[float] = []
    first: List[float] = []
    repeat: List[float] = []
    resistances: List[float] = []
    for buffer in experiment.library:
        plan = uniform_line_spacing(
            buffer.resistance, buffer.noise_margin, unit_r, unit_i, sink_margin
        )
        resistances.append(buffer.resistance)
        first.append(plan.first_span)
        repeat.append(plan.repeat_span)
    ceiling = unloaded_max_length(unit_r, unit_i, sink_margin)
    return [
        Series(
            label="Fig. 7 spacing: first (sink-adjacent) span",
            x_name="Rb (ohm)",
            y_name="span (mm)",
            x=tuple(resistances),
            y=tuple(first),
        ),
        Series(
            label="Fig. 7 spacing: steady-state span",
            x_name="Rb (ohm)",
            y_name="span (mm)",
            x=tuple(resistances),
            y=tuple(repeat),
        ),
        Series(
            label="driverless ceiling sqrt(2 NM / (r i))",
            x_name="Rb (ohm)",
            y_name="span (mm)",
            x=(0.0,),
            y=(ceiling,),
        ),
    ]


def theorem2_margin_curve(
    experiment: Experiment,
    lengths: Sequence[float] = tuple(np.linspace(0.5 * MM, 6 * MM, 12)),
    driver_resistance: float = 200.0,
) -> Series:
    """Noise of a delay-chosen wire vs length (eq. 18/19).

    Margins below a point on this curve are violated by any buffering
    that places gates that far apart — the Theorem 2 existence argument.
    """
    technology = experiment.technology
    unit_r = technology.unit_resistance
    unit_i = experiment.coupling.unit_current(technology.unit_capacitance)
    noises = [
        uniform_wire_noise(driver_resistance, unit_r, unit_i, length)
        for length in lengths
    ]
    return Series(
        label="Theorem 2: wire noise vs gate spacing",
        x_name="length (mm)",
        y_name="noise (V)",
        x=tuple(lengths),
        y=tuple(noises),
    )


def build_all_figures(experiment: Experiment) -> List[Series]:
    """Every characterization series, for the CLI and the figure bench."""
    return [
        theorem1_vs_driver_resistance(experiment),
        theorem1_vs_downstream_current(experiment),
        *spacing_by_buffer(experiment),
        theorem2_margin_curve(experiment),
    ]


def format_figures(series: List[Series]) -> str:
    parts = ["Characterization figures (Theorems 1-2, Fig. 7)"]
    for entry in series:
        scale_y = 1.0 / MM if "mm" in entry.y_name else 1.0
        parts.append(entry.format(y_scale=scale_y))
    return "\n".join(parts)
