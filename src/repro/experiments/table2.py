"""Table II — noise violations before and after BuffOpt, verified by the
detailed simulation-based analyzer.

Paper shape: before optimization the Devgan metric flags 423/500 nets and
the detailed tool (3dnoise) flags 386 — a *subset*, because the metric is
a conservative upper bound.  After BuffOpt, both report **zero**.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.threednoise import DetailedNoiseAnalyzer
from .config import Experiment
from .harness import PopulationRun


@dataclass(frozen=True)
class Table2:
    nets: int
    metric_before: int
    detailed_before: int
    metric_after: int
    detailed_after: int
    #: detailed-flagged nets that the metric missed (must be 0: upper bound)
    detailed_only_before: int


def build_table2(experiment: Experiment, run: PopulationRun) -> Table2:
    analyzer = DetailedNoiseAnalyzer(
        coupling=experiment.coupling, vdd=experiment.technology.vdd
    )
    metric_before = 0
    detailed_before = 0
    metric_after = 0
    detailed_after = 0
    detailed_only = 0
    for record in run.records:
        metric_hit = record.unbuffered_violations > 0
        detailed_hit = analyzer.analyze(record.tree).violated
        metric_before += metric_hit
        detailed_before += detailed_hit
        if detailed_hit and not metric_hit:
            detailed_only += 1
        metric_after += record.buffopt_violations > 0
        detailed_after += analyzer.analyze(
            record.tree, record.buffopt.buffer_map()
        ).violated
    return Table2(
        nets=len(run.records),
        metric_before=metric_before,
        detailed_before=detailed_before,
        metric_after=metric_after,
        detailed_after=detailed_after,
        detailed_only_before=detailed_only,
    )


def format_table2(table: Table2) -> str:
    header = f"{'':<22} {'metric (Devgan)':>16} {'detailed (transient)':>21}"
    return "\n".join(
        [
            "Table II: nets with noise violations before/after BuffOpt "
            f"({table.nets} nets)",
            header,
            "-" * len(header),
            f"{'before BuffOpt':<22} {table.metric_before:>16} "
            f"{table.detailed_before:>21}",
            f"{'after BuffOpt':<22} {table.metric_after:>16} "
            f"{table.detailed_after:>21}",
            f"(detailed-only before: {table.detailed_only_before}; must be 0 "
            "— the metric is an upper bound)",
        ]
    )
