"""Table IV — average delay reduction from buffer insertion.

For every net where BuffOpt inserted ``j`` buffers, DelayOpt is rerun
restricted to the same ``j`` (an apples-to-apples comparison).  The paper
reports, per ``j``, the average delay reduction of each method and, as the
headline, the weighted-average penalty of noise-aware optimization: BuffOpt
gives up **< 2 %** of DelayOpt's delay reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..units import PS
from .config import Experiment
from .harness import PopulationRun, matched_count_delays


@dataclass(frozen=True)
class Table4Row:
    buffers: int
    nets: int
    buffopt_reduction: float  # seconds (averaged)
    delayopt_reduction: float

    @property
    def penalty(self) -> float:
        return self.delayopt_reduction - self.buffopt_reduction


@dataclass(frozen=True)
class Table4:
    rows: List[Table4Row]
    weighted_buffopt: float
    weighted_delayopt: float

    @property
    def average_penalty(self) -> float:
        return self.weighted_delayopt - self.weighted_buffopt

    @property
    def average_penalty_percent(self) -> float:
        if self.weighted_delayopt == 0:
            return 0.0
        return 100.0 * self.average_penalty / self.weighted_delayopt


def build_table4(experiment: Experiment, run: PopulationRun) -> Table4:
    samples = matched_count_delays(run, experiment)
    by_count: Dict[int, List[dict]] = {}
    for sample in samples:
        by_count.setdefault(int(sample["buffers"]), []).append(sample)

    rows: List[Table4Row] = []
    total_buffopt = 0.0
    total_delayopt = 0.0
    total_nets = 0
    for count in sorted(by_count):
        group = by_count[count]
        buffopt = sum(s["unbuffered"] - s["buffopt"] for s in group)
        delayopt = sum(s["unbuffered"] - s["delayopt"] for s in group)
        rows.append(
            Table4Row(
                buffers=count,
                nets=len(group),
                buffopt_reduction=buffopt / len(group),
                delayopt_reduction=delayopt / len(group),
            )
        )
        total_buffopt += buffopt
        total_delayopt += delayopt
        total_nets += len(group)
    if total_nets == 0:
        return Table4(rows=[], weighted_buffopt=0.0, weighted_delayopt=0.0)
    return Table4(
        rows=rows,
        weighted_buffopt=total_buffopt / total_nets,
        weighted_delayopt=total_delayopt / total_nets,
    )


def format_table4(table: Table4) -> str:
    header = (
        f"{'buffers':>8} {'nets':>6} {'BuffOpt red. (ps)':>18} "
        f"{'DelayOpt red. (ps)':>19} {'penalty (ps)':>13}"
    )
    lines = [
        "Table IV: average delay reduction from buffer insertion "
        "(matched buffer counts)",
        header,
        "-" * len(header),
    ]
    for row in table.rows:
        lines.append(
            f"{row.buffers:>8} {row.nets:>6} "
            f"{row.buffopt_reduction / PS:>18.1f} "
            f"{row.delayopt_reduction / PS:>19.1f} "
            f"{row.penalty / PS:>13.1f}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"weighted average: BuffOpt {table.weighted_buffopt / PS:.1f} ps, "
        f"DelayOpt {table.weighted_delayopt / PS:.1f} ps, penalty "
        f"{table.average_penalty / PS:.1f} ps "
        f"({table.average_penalty_percent:.2f} %)"
    )
    return "\n".join(lines)
