"""Population-level optimization harness.

Runs BuffOpt and DelayOpt(k) over every net of an experiment, collecting
per-net solutions, delays, noise reports and CPU times — the raw material
for Tables II–IV.  Segmentation and the count-tracking DelayOpt DP are
shared across the k values (one DP run yields every DelayOpt(k)), exactly
how the extended algorithms are meant to be used.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..api import dp_result
from ..core.solution import BufferSolution
from ..core.van_ginneken import best_within_count
from ..noise.devgan import noise_violations
from ..timing.elmore import max_sink_delay
from ..tree.segmenting import segment_tree
from ..tree.topology import RoutingTree
from .config import Experiment


@dataclass
class NetRecord:
    """Everything measured for one net."""

    name: str
    sink_count: int
    tree: RoutingTree  # segmented tree all optimizers ran on
    unbuffered_delay: float
    unbuffered_violations: int
    buffopt: BufferSolution
    buffopt_seconds: float
    buffopt_violations: int
    buffopt_delay: float
    delayopt: Dict[int, BufferSolution] = field(default_factory=dict)
    delayopt_seconds: float = 0.0
    delayopt_violations: Dict[int, int] = field(default_factory=dict)
    delayopt_delay: Dict[int, float] = field(default_factory=dict)

    @property
    def buffopt_count(self) -> int:
        return self.buffopt.buffer_count


@dataclass
class PopulationRun:
    """Per-net records plus aggregate timings.

    ``delayopt_seconds_per_k`` is populated when the run was made with
    ``separate_delayopt_timing=True`` (the paper's methodology: DelayOpt
    was run once per k); otherwise Table III reports the shared
    count-tracking run's time split evenly.
    """

    records: List[NetRecord]
    buffopt_seconds: float
    delayopt_seconds: float
    ks: Sequence[int]
    delayopt_seconds_per_k: Dict[int, float] = field(default_factory=dict)

    def buffer_histogram(self) -> Dict[int, int]:
        """Nets per BuffOpt buffer count (the Table III left column)."""
        histogram: Dict[int, int] = {}
        for record in self.records:
            count = record.buffopt_count
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def total_buffopt_buffers(self) -> int:
        return sum(r.buffopt_count for r in self.records)

    def total_delayopt_buffers(self, k: int) -> int:
        return sum(r.delayopt[k].buffer_count for r in self.records)

    def nets_with_violations_before(self) -> int:
        return sum(1 for r in self.records if r.unbuffered_violations > 0)

    def nets_with_violations_after_buffopt(self) -> int:
        return sum(1 for r in self.records if r.buffopt_violations > 0)

    def nets_with_violations_after_delayopt(self, k: int) -> int:
        return sum(1 for r in self.records if r.delayopt_violations[k] > 0)


def run_population(
    experiment: Experiment,
    ks: Sequence[int] = (1, 2, 3, 4),
    max_delayopt_buffers: Optional[int] = None,
    separate_delayopt_timing: bool = False,
) -> PopulationRun:
    """Optimize every net with BuffOpt and DelayOpt(k) for each ``k``.

    ``max_delayopt_buffers`` defaults to ``max(ks)``.  One count-tracking
    DP serves every DelayOpt(k) by default; ``separate_delayopt_timing``
    additionally reruns DelayOpt once per ``k`` (results identical, only
    the per-k CPU numbers of Table III change to the paper's
    one-run-per-k accounting).
    """
    if max_delayopt_buffers is None:
        max_delayopt_buffers = max(ks)
    records: List[NetRecord] = []
    buffopt_total = 0.0
    delayopt_total = 0.0
    per_k_totals: Dict[int, float] = {k: 0.0 for k in ks}

    for net in experiment.nets:
        tree = segment_tree(net.tree, experiment.max_segment_length)
        before = noise_violations(tree, experiment.coupling)
        unbuffered_delay = max_sink_delay(tree)

        start = time.perf_counter()
        solution = _buffopt_fewest(tree, experiment)
        buffopt_seconds = time.perf_counter() - start
        buffopt_total += buffopt_seconds

        record = NetRecord(
            name=net.name,
            sink_count=net.sink_count,
            tree=tree,
            unbuffered_delay=unbuffered_delay,
            unbuffered_violations=len(before),
            buffopt=solution,
            buffopt_seconds=buffopt_seconds,
            buffopt_violations=len(
                noise_violations(tree, experiment.coupling, solution.buffer_map())
            ),
            buffopt_delay=max_sink_delay(tree, solution.buffer_map()),
        )

        start = time.perf_counter()
        delay_result = dp_result(
            tree, experiment.library, mode="delay",
            max_buffers=max_delayopt_buffers, engine=experiment.engine,
        )
        for k in ks:
            dsolution = best_within_count(delay_result, k)
            record.delayopt[k] = dsolution
            record.delayopt_violations[k] = len(
                noise_violations(
                    tree, experiment.coupling, dsolution.buffer_map()
                )
            )
            record.delayopt_delay[k] = max_sink_delay(
                tree, dsolution.buffer_map()
            )
        record.delayopt_seconds = time.perf_counter() - start
        delayopt_total += record.delayopt_seconds
        if separate_delayopt_timing:
            for k in ks:
                start = time.perf_counter()
                dp_result(
                    tree, experiment.library, mode="delay",
                    max_buffers=k, engine=experiment.engine,
                )
                per_k_totals[k] += time.perf_counter() - start
        records.append(record)

    return PopulationRun(
        records=records,
        buffopt_seconds=buffopt_total,
        delayopt_seconds=delayopt_total,
        ks=tuple(ks),
        delayopt_seconds_per_k=(
            dict(per_k_totals) if separate_delayopt_timing else {}
        ),
    )


#: BuffOpt count-cap ladder for the population runs.  The paper's BuffOpt
#: "never inserted more than four buffers on any net"; capping the Lillis
#: count arrays keeps the DP frontier small.  Nets that genuinely need
#: more climb the ladder (``None`` = uncapped).
BUFFOPT_COUNT_CAPS = (4, 10, None)


def _buffopt_fewest(tree: RoutingTree, experiment: Experiment) -> BufferSolution:
    from ..errors import InfeasibleError

    for cap in BUFFOPT_COUNT_CAPS:
        try:
            result = dp_result(
                tree, experiment.library, experiment.coupling,
                mode="buffopt", max_buffers=cap, engine=experiment.engine,
            )
            return result.solution(result._fewest_buffers())
        except InfeasibleError:
            if cap is None:
                raise
    raise AssertionError("unreachable: ladder ends with an uncapped run")


def matched_count_delays(
    run: PopulationRun, experiment: Experiment
) -> List[Dict[str, float]]:
    """Per-net BuffOpt-vs-DelayOpt delays at *matched* buffer counts.

    The Table IV comparison: for each net where BuffOpt inserted ``j > 0``
    buffers, run DelayOpt restricted to the same ``j`` and compare the
    delay reductions.  Returns one dict per such net.
    """
    rows: List[Dict[str, float]] = []
    for record in run.records:
        count = record.buffopt_count
        if count == 0:
            continue
        if count in record.delayopt_delay:
            matched_delay = record.delayopt_delay[count]
        else:
            delay_result = dp_result(
                record.tree, experiment.library, mode="delay",
                max_buffers=count, engine=experiment.engine,
            )
            matched = best_within_count(delay_result, count)
            matched_delay = max_sink_delay(record.tree, matched.buffer_map())
        rows.append(
            {
                "name": record.name,
                "buffers": count,
                "unbuffered": record.unbuffered_delay,
                "buffopt": record.buffopt_delay,
                "delayopt": matched_delay,
            }
        )
    return rows
