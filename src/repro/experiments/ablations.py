"""Ablation studies for the design choices DESIGN.md calls out.

Each study runs over a sample of the workload population and returns a
small table; the CLI target ``buffopt ablations`` prints them all, and
``benchmarks/bench_ablations.py`` times the underlying kernels.

Studies:

* **pruning** — the paper's (C, q)-only pruning vs the 4-field Pareto
  frontier: slack delta, candidates kept, wall time;
* **segmentation** — the Alpert–Devgan uniform-granularity dial: slack
  and DP size per max-segment length;
* **noise-aware sites** — the footnote-3 Theorem-1-seeded segmentation vs
  a fine uniform grid: node counts and buffer counts;
* **wire sizing** — slack gained by the Lillis width menu.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.dp import DPOptions, run_dp
from ..core.noise_multi import insert_buffers_multi_sink
from ..core.noise_sites import noise_aware_segmentation
from ..core.wire_sizing import WireSizingSpec
from ..errors import InfeasibleError
from ..tree.segmenting import segment_tree
from ..units import PS, UM
from .config import Experiment


@dataclass(frozen=True)
class PruningAblation:
    nets: int
    mean_slack_delta: float  # pareto minus timing (>= 0)
    timing_kept_peak: float
    pareto_kept_peak: float
    timing_seconds: float
    pareto_seconds: float


def pruning_ablation(
    experiment: Experiment, sample: int = 20
) -> PruningAblation:
    deltas: List[float] = []
    kept = {"timing": 0.0, "pareto": 0.0}
    seconds = {"timing": 0.0, "pareto": 0.0}
    nets = experiment.nets[:sample]
    for net in nets:
        tree = segment_tree(net.tree, experiment.max_segment_length)
        results = {}
        for rule in ("timing", "pareto"):
            start = time.perf_counter()
            results[rule] = run_dp(
                tree, experiment.library, experiment.coupling,
                DPOptions(noise_aware=True, prune=rule),
            )
            seconds[rule] += time.perf_counter() - start
            kept[rule] += results[rule].candidates_kept_peak
        deltas.append(
            results["pareto"]._best().slack - results["timing"]._best().slack
        )
    count = len(nets)
    return PruningAblation(
        nets=count,
        mean_slack_delta=sum(deltas) / count,
        timing_kept_peak=kept["timing"] / count,
        pareto_kept_peak=kept["pareto"] / count,
        timing_seconds=seconds["timing"],
        pareto_seconds=seconds["pareto"],
    )


@dataclass(frozen=True)
class SegmentationPoint:
    max_segment: float
    mean_slack: float
    mean_nodes: float
    seconds: float


def segmentation_ablation(
    experiment: Experiment,
    granularities: Sequence[float] = (2000 * UM, 1000 * UM, 500 * UM, 250 * UM),
    sample: int = 12,
) -> List[SegmentationPoint]:
    points: List[SegmentationPoint] = []
    nets = experiment.nets[:sample]
    for granularity in granularities:
        slack_total = 0.0
        nodes_total = 0
        start = time.perf_counter()
        for net in nets:
            tree = segment_tree(net.tree, granularity)
            nodes_total += len(tree)
            result = run_dp(
                tree, experiment.library, experiment.coupling,
                DPOptions(noise_aware=True),
            )
            slack_total += result._best().slack
        points.append(
            SegmentationPoint(
                max_segment=granularity,
                mean_slack=slack_total / len(nets),
                mean_nodes=nodes_total / len(nets),
                seconds=time.perf_counter() - start,
            )
        )
    return points


@dataclass(frozen=True)
class NoiseSitesAblation:
    nets: int
    matched_counts: int  # nets where site-based count == continuous count
    mean_site_nodes: float
    mean_uniform_nodes: float


def noise_sites_ablation(
    experiment: Experiment,
    fine_uniform: float = 250 * UM,
    sample: int = 15,
) -> NoiseSitesAblation:
    matched = 0
    site_nodes = 0
    uniform_nodes = 0
    usable = 0
    for net in experiment.nets[:sample]:
        try:
            continuous = insert_buffers_multi_sink(
                net.tree, experiment.library, experiment.coupling
            )
            sited = noise_aware_segmentation(
                net.tree, experiment.library, experiment.coupling
            )
            result = run_dp(
                sited, experiment.library, experiment.coupling,
                DPOptions(noise_aware=True, track_counts=True, max_buffers=8),
            )
            best = result._fewest_buffers()
        except InfeasibleError:
            continue
        usable += 1
        site_nodes += len(sited)
        uniform_nodes += len(segment_tree(net.tree, fine_uniform))
        if best.buffer_count == continuous.buffer_count:
            matched += 1
    if usable == 0:
        raise InfeasibleError("no usable nets in the ablation sample")
    return NoiseSitesAblation(
        nets=usable,
        matched_counts=matched,
        mean_site_nodes=site_nodes / usable,
        mean_uniform_nodes=uniform_nodes / usable,
    )


@dataclass(frozen=True)
class SizingAblation:
    nets: int
    mean_slack_gain: float  # sized minus plain (>= 0)
    improved: int


def sizing_ablation(
    experiment: Experiment,
    spec: Optional[WireSizingSpec] = None,
    sample: int = 12,
) -> SizingAblation:
    spec = spec or WireSizingSpec(widths=(1.0, 1.5, 2.0))
    gains: List[float] = []
    nets = experiment.nets[:sample]
    for net in nets:
        tree = segment_tree(net.tree, experiment.max_segment_length)
        plain = run_dp(
            tree, experiment.library, experiment.coupling,
            DPOptions(noise_aware=True),
        )
        sized = run_dp(
            tree, experiment.library, experiment.coupling,
            DPOptions(noise_aware=True, sizing=spec),
        )
        gains.append(sized._best().slack - plain._best().slack)
    return SizingAblation(
        nets=len(nets),
        mean_slack_gain=sum(gains) / len(nets),
        improved=sum(1 for g in gains if g > 1e-15),
    )


def format_ablations(
    pruning: PruningAblation,
    segmentation: List[SegmentationPoint],
    sites: NoiseSitesAblation,
    sizing: SizingAblation,
) -> str:
    lines = [
        "Ablation studies",
        "",
        f"[pruning rule] {pruning.nets} nets: Pareto slack gain "
        f"{pruning.mean_slack_delta / PS:.2f} ps (0 = the paper's (C,q) "
        "rule loses nothing); candidates kept "
        f"{pruning.timing_kept_peak:.0f} vs {pruning.pareto_kept_peak:.0f}; "
        f"time {pruning.timing_seconds:.2f}s vs {pruning.pareto_seconds:.2f}s",
        "",
        "[segmentation granularity]",
        f"{'max seg (um)':>14} {'mean slack (ps)':>16} {'mean nodes':>11} "
        f"{'time (s)':>9}",
    ]
    for point in segmentation:
        lines.append(
            f"{point.max_segment / UM:>14.0f} "
            f"{point.mean_slack / PS:>16.1f} {point.mean_nodes:>11.1f} "
            f"{point.seconds:>9.2f}"
        )
    lines += [
        "",
        f"[noise-aware sites] {sites.nets} nets: continuous-optimal buffer "
        f"count reached on {sites.matched_counts}/{sites.nets}; "
        f"{sites.mean_site_nodes:.1f} nodes vs "
        f"{sites.mean_uniform_nodes:.1f} for the fine uniform grid",
        "",
        f"[wire sizing] {sizing.nets} nets: mean slack gain "
        f"{sizing.mean_slack_gain / PS:.1f} ps; improved on "
        f"{sizing.improved}/{sizing.nets}",
    ]
    return "\n".join(lines)


def run_all_ablations(experiment: Experiment) -> str:
    """Run every study and return the formatted report."""
    return format_ablations(
        pruning_ablation(experiment),
        segmentation_ablation(experiment),
        noise_sites_ablation(experiment),
        sizing_ablation(experiment),
    )
