"""Regeneration of the paper's evaluation: Tables I–IV plus theory figures."""

from .ablations import (
    NoiseSitesAblation,
    PruningAblation,
    SegmentationPoint,
    SizingAblation,
    format_ablations,
    noise_sites_ablation,
    pruning_ablation,
    run_all_ablations,
    segmentation_ablation,
    sizing_ablation,
)
from .config import Experiment, bench_population_size, default_experiment
from .figures import Series, build_all_figures, format_figures
from .harness import NetRecord, PopulationRun, matched_count_delays, run_population
from .table1 import Table1, build_table1, format_table1
from .table2 import Table2, build_table2, format_table2
from .table3 import Table3, Table3Row, build_table3, format_table3
from .table4 import Table4, Table4Row, build_table4, format_table4

__all__ = [
    "Experiment",
    "NetRecord",
    "NoiseSitesAblation",
    "PruningAblation",
    "SegmentationPoint",
    "SizingAblation",
    "format_ablations",
    "noise_sites_ablation",
    "pruning_ablation",
    "run_all_ablations",
    "segmentation_ablation",
    "sizing_ablation",
    "PopulationRun",
    "Series",
    "Table1",
    "Table2",
    "Table3",
    "Table3Row",
    "Table4",
    "Table4Row",
    "bench_population_size",
    "build_all_figures",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "default_experiment",
    "format_figures",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
    "matched_count_delays",
    "run_population",
]
