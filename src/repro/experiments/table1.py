"""Table I — sink distribution of the test nets.

The paper's Table I tabulates how many of the 500 nets have each sink
count.  We regenerate it from the realized workload population; the
companion statistics (wirelength, total capacitance) document the regime
the nets live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..units import format_capacitance, format_length
from ..workloads.generator import population_sink_histogram
from .config import Experiment


@dataclass(frozen=True)
class Table1:
    histogram: Dict[int, int]
    total_nets: int
    mean_wirelength: float
    mean_total_capacitance: float

    def rows(self) -> List[tuple]:
        return [(sinks, nets) for sinks, nets in self.histogram.items()]


def build_table1(experiment: Experiment) -> Table1:
    nets = experiment.nets
    histogram = population_sink_histogram(nets)
    lengths = [net.tree.total_wire_length() for net in nets]
    caps = [net.tree.total_capacitance() for net in nets]
    return Table1(
        histogram=histogram,
        total_nets=len(nets),
        mean_wirelength=sum(lengths) / len(lengths),
        mean_total_capacitance=sum(caps) / len(caps),
    )


def format_table1(table: Table1) -> str:
    lines = [
        "Table I: sink distribution of the test nets",
        f"{'sinks':>6} | {'nets':>5}",
        "-" * 15,
    ]
    for sinks, nets in table.rows():
        lines.append(f"{sinks:>6} | {nets:>5}")
    lines.append("-" * 15)
    lines.append(f"{'total':>6} | {table.total_nets:>5}")
    lines.append(
        f"mean wirelength {format_length(table.mean_wirelength)}, "
        f"mean total capacitance "
        f"{format_capacitance(table.mean_total_capacitance)}"
    )
    return "\n".join(lines)
