"""Synthetic microprocessor net population (the paper's 500 test nets).

The paper selected the 500 largest-total-capacitance nets of a PowerPC
design — long, global, noise-prone nets with pre-characterized drivers and
sinks.  The algorithms consume only the routing tree plus electrical
annotations, so a seeded synthetic population exercising the same regime
reproduces the evaluation faithfully (DESIGN.md substitution table):

* sink counts follow the Table-I-shaped distribution;
* net spans are log-uniform multi-millimeter, producing Devgan noise of
  roughly 0.5x–4x the 0.8 V margin before buffering — i.e. most nets
  violate, needing 1–4 buffers, and a minority are clean (Section V);
* drivers scale with net size (designers size up drivers of big nets);
* every sink gets a required arrival time slightly below the unbuffered
  Elmore delay, making nets timing-critical so DelayOpt/BuffOpt have real
  timing work to do (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..timing.elmore import sink_delays
from ..tree.steiner import SinkSite, steiner_tree
from ..tree.topology import RoutingTree, SinkSpec
from ..units import MM
from .distributions import (
    SinkDistribution,
    SpanDistribution,
    default_sink_distribution,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic population."""

    nets: int = 500
    seed: int = 19981101  # DAC'98 paper, TCAD Nov. 1999 issue
    noise_margin: float = 0.8
    #: fraction of sinks that are dynamic-logic inputs with a reduced
    #: margin (the paper's motivation: "fast dynamic logic circuits ...
    #: are more susceptible to noise failure").  0 reproduces the paper's
    #: uniform-margin evaluation.
    dynamic_sink_fraction: float = 0.0
    dynamic_noise_margin: float = 0.55
    die_size: float = 16.0 * MM
    #: RAT = rat_fraction * unbuffered max sink delay (uniform over sinks).
    #: > 1 means unbuffered nets meet timing, so Problem-3 BuffOpt inserts
    #: buffers only where noise demands them (matching the paper's 77
    #: zero-buffer nets); DelayOpt still inserts buffers because it
    #: maximizes slack outright.
    rat_fraction: float = 1.05

    def __post_init__(self) -> None:
        if self.nets < 1:
            raise WorkloadError(f"nets must be >= 1, got {self.nets}")
        if self.noise_margin <= 0:
            raise WorkloadError(
                f"noise_margin must be positive, got {self.noise_margin}"
            )
        if self.die_size <= 0:
            raise WorkloadError(f"die_size must be positive, got {self.die_size}")
        if self.rat_fraction <= 0:
            raise WorkloadError(
                f"rat_fraction must be positive, got {self.rat_fraction}"
            )
        if not 0.0 <= self.dynamic_sink_fraction <= 1.0:
            raise WorkloadError(
                "dynamic_sink_fraction must lie in [0, 1], got "
                f"{self.dynamic_sink_fraction}"
            )
        if self.dynamic_noise_margin <= 0:
            raise WorkloadError(
                "dynamic_noise_margin must be positive, got "
                f"{self.dynamic_noise_margin}"
            )


@dataclass(frozen=True)
class GeneratedNet:
    """One workload net plus its generation metadata."""

    tree: RoutingTree
    span: float
    sink_count: int

    @property
    def name(self) -> str:
        return self.tree.name


@dataclass(frozen=True)
class NetSpec:
    """A deferred net: everything needed to generate one net, anywhere.

    A spec carries its own explicit ``seed``, so materializing it is a
    pure function of ``(spec, config, technology, cells)`` — no inherited
    RNG state, which is what makes spec-based generation safe to fan out
    across ``multiprocessing`` workers (each worker seeds a fresh
    generator from ``spec.seed`` and produces the identical net no matter
    which process, or how many sibling specs, ran before it).
    """

    name: str
    sink_count: int
    span: float
    seed: int

    def __post_init__(self) -> None:
        if self.sink_count < 1:
            raise WorkloadError(
                f"spec {self.name!r}: sink_count must be >= 1, "
                f"got {self.sink_count}"
            )
        if self.span <= 0:
            raise WorkloadError(
                f"spec {self.name!r}: span must be positive, got {self.span}"
            )


def population_specs(config: Optional[WorkloadConfig] = None) -> List[NetSpec]:
    """The seeded population as :class:`NetSpec`s instead of built trees.

    Sink counts and spans follow the same distributions as
    :func:`generate_population`; each spec additionally gets an
    independent per-net seed drawn from the population seed, so
    :func:`generate_net_from_spec` reproduces any single net without
    generating the nets before it.  (The per-net RNG streams differ from
    :func:`generate_population`'s single shared stream, so the two
    populations are each deterministic but not identical to one another.)
    """
    config = config or WorkloadConfig()
    distribution = default_sink_distribution()
    if distribution.total_nets != config.nets:
        distribution = distribution.scaled(config.nets)
    spans = SpanDistribution()

    rng = np.random.default_rng(config.seed)
    sink_counts = distribution.expand()
    rng.shuffle(sink_counts)
    seeds = rng.integers(0, 2**63, size=len(sink_counts))
    return [
        NetSpec(
            name=f"net{index:04d}",
            sink_count=int(sink_count),
            span=float(spans.sample(rng)),
            seed=int(seeds[index]),
        )
        for index, sink_count in enumerate(sink_counts)
    ]


def generate_net_from_spec(
    spec: NetSpec,
    config: Optional[WorkloadConfig] = None,
    technology: Optional[Technology] = None,
    cells: Optional[CellLibrary] = None,
) -> GeneratedNet:
    """Materialize one :class:`NetSpec` deterministically.

    Seeds a fresh generator from ``spec.seed`` — repeat calls (in any
    process) yield bit-identical trees.
    """
    config = config or WorkloadConfig()
    technology = technology or default_technology()
    cells = cells or default_cell_library(noise_margin=config.noise_margin)
    rng = np.random.default_rng(spec.seed)
    return _generate_net(
        spec.name, spec.sink_count, spec.span, rng, config, technology, cells
    )


def generate_population(
    config: Optional[WorkloadConfig] = None,
    technology: Optional[Technology] = None,
    cells: Optional[CellLibrary] = None,
    sink_distribution: Optional[SinkDistribution] = None,
    span_distribution: Optional[SpanDistribution] = None,
) -> List[GeneratedNet]:
    """Generate the seeded net population.

    Deterministic for a given configuration: the same seed reproduces the
    identical 500 nets, which is what makes the experiment tables stable.
    """
    config = config or WorkloadConfig()
    technology = technology or default_technology()
    cells = cells or default_cell_library(noise_margin=config.noise_margin)
    distribution = sink_distribution or default_sink_distribution()
    if distribution.total_nets != config.nets:
        distribution = distribution.scaled(config.nets)
    spans = span_distribution or SpanDistribution()

    rng = np.random.default_rng(config.seed)
    sink_counts = distribution.expand()
    rng.shuffle(sink_counts)

    nets: List[GeneratedNet] = []
    for index, sink_count in enumerate(sink_counts):
        nets.append(
            _generate_net(
                f"net{index:04d}",
                sink_count,
                spans.sample(rng),
                rng,
                config,
                technology,
                cells,
            )
        )
    return nets


def _generate_net(
    name: str,
    sink_count: int,
    span: float,
    rng: np.random.Generator,
    config: WorkloadConfig,
    technology: Technology,
    cells: CellLibrary,
) -> GeneratedNet:
    margin = min(config.die_size, span)
    source = (
        rng.uniform(0.0, config.die_size - margin),
        rng.uniform(0.0, config.die_size - margin),
    )
    positions = _sink_positions(source, span, sink_count, rng)

    driver = _pick_driver(cells, span, sink_count, rng)
    sites = []
    for k, position in enumerate(positions):
        sink_cell = cells.sinks[int(rng.integers(len(cells.sinks)))]
        margin = config.noise_margin
        if (
            config.dynamic_sink_fraction > 0.0
            and rng.random() < config.dynamic_sink_fraction
        ):
            margin = config.dynamic_noise_margin
        sites.append(
            SinkSite(
                name=f"s{k}",
                position=position,
                capacitance=sink_cell.input_capacitance,
                noise_margin=margin,
            )
        )
    tree = steiner_tree(technology, source, sites, driver=driver, name=name)
    tree = _with_required_arrivals(tree, config.rat_fraction)
    return GeneratedNet(tree=tree, span=span, sink_count=sink_count)


def _sink_positions(
    source: Tuple[float, float],
    span: float,
    sink_count: int,
    rng: np.random.Generator,
) -> List[Tuple[float, float]]:
    """Sink sites spread so the net's extent is roughly ``span``.

    The first sink is pinned near the far corner of the span box so the
    net really reaches its nominal span; the rest scatter inside it.
    """
    sx, sy = source
    positions: List[Tuple[float, float]] = []
    # Split the span between x and y (L-routes realize the rest).
    fraction = rng.uniform(0.3, 0.7)
    far = (sx + span * fraction, sy + span * (1.0 - fraction))
    positions.append(far)
    for _ in range(sink_count - 1):
        positions.append(
            (
                sx + rng.uniform(0.1, 1.0) * span * fraction,
                sy + rng.uniform(0.1, 1.0) * span * (1.0 - fraction),
            )
        )
    return positions


def _pick_driver(cells, span: float, sink_count: int, rng: np.random.Generator):
    """Stronger drivers for longer/bigger nets, with spread."""
    drivers = sorted(cells.drivers, key=lambda d: -d.resistance)
    scale = min(
        len(drivers) - 1,
        int(span / (4.0 * MM)) + (1 if sink_count > 4 else 0),
    )
    jitter = int(rng.integers(0, 2))
    index = min(len(drivers) - 1, scale + jitter)
    return drivers[index]


def _with_required_arrivals(tree: RoutingTree, fraction: float) -> RoutingTree:
    """Set every sink's RAT to ``fraction * unbuffered max delay``.

    Mutates the sink specs of (a fresh copy is unnecessary — the tree was
    created by the generator and not yet shared) and returns the tree.
    """
    delays = sink_delays(tree)
    budget = fraction * max(delays.values())
    for sink in tree.sinks:
        assert sink.sink is not None
        sink.sink = SinkSpec(
            capacitance=sink.sink.capacitance,
            noise_margin=sink.sink.noise_margin,
            required_arrival=budget,
        )
    return tree


def population_sink_histogram(nets: Sequence[GeneratedNet]) -> dict:
    """Realized Table I of a generated population."""
    histogram: dict = {}
    for net in nets:
        histogram[net.sink_count] = histogram.get(net.sink_count, 0) + 1
    return dict(sorted(histogram.items()))


def total_capacitance_rank(nets: Sequence[GeneratedNet]) -> List[GeneratedNet]:
    """Nets ordered by decreasing total capacitance (the paper's selection
    criterion for its 500 nets)."""
    return sorted(nets, key=lambda n: -n.tree.total_capacitance())
