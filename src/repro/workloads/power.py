"""Power-constrained global-net workload family.

The paper's population (:mod:`.generator`) makes nets *timing*- and
*noise*-critical; this family adds the third axis: every net gets a
hard power cap, sized from its own physics so the cap is always
*feasible* yet usually *binding*.

The cap construction is deliberately assignment-independent: without
wire sizing, a net's wire power is fixed — only buffers add power — so

    ``cap = wire_power(net) + buffer_budget * median_buffer_power``

is met by the zero-buffer solution for any ``buffer_budget >= 0``
(feasibility by construction), while budgets around the typical 1–4
buffers the population needs make the cap bite exactly where DelayOpt
would otherwise buffer freely.  Each generated net carries a ready
``power-capped`` :class:`~repro.core.objective.Objective` so batch runs
can consume the family directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.objective import Objective
from ..errors import WorkloadError
from ..library.buffers import BufferLibrary, default_buffer_library
from ..library.power import PowerModel, default_power_model
from ..tree.topology import RoutingTree
from .generator import GeneratedNet, WorkloadConfig, generate_population

__all__ = [
    "PowerWorkloadConfig",
    "PowerConstrainedNet",
    "generate_power_population",
    "median_buffer_power",
    "power_cap_for_tree",
]


def median_buffer_power(
    library: BufferLibrary, power_model: PowerModel
) -> float:
    """Median per-insertion buffer power over a library's cells."""
    powers = sorted(power_model.buffer_power(b) for b in library)
    if not powers:
        raise WorkloadError("cannot price a power cap on an empty library")
    return powers[len(powers) // 2]


def power_cap_for_tree(
    tree: RoutingTree,
    power_model: PowerModel,
    library: BufferLibrary,
    buffer_budget: float,
) -> float:
    """A feasible-by-construction power cap for one net.

    The intrinsic (assignment-independent) wire power plus a budget of
    ``buffer_budget`` median-library buffers.  ``buffer_budget`` may be
    fractional — 2.5 means "half-way between affording two and three
    typical buffers".
    """
    if buffer_budget < 0:
        raise WorkloadError(
            f"buffer_budget must be >= 0, got {buffer_budget}"
        )
    wire_power = sum(
        power_model.wire_power(wire.capacitance) for wire in tree.wires()
    )
    return wire_power + buffer_budget * median_buffer_power(
        library, power_model
    )


@dataclass(frozen=True)
class PowerWorkloadConfig:
    """Knobs of the power-constrained population."""

    #: the underlying timing/noise population.
    base: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: buffers' worth of power headroom above each net's wire power.
    buffer_budget: float = 3.0
    #: whether the per-net objectives run the noise-aware recurrence
    #: (``buffopt``) or plain van Ginneken (``delay``).
    noise_aware: bool = True

    def __post_init__(self) -> None:
        if self.buffer_budget < 0:
            raise WorkloadError(
                f"buffer_budget must be >= 0, got {self.buffer_budget}"
            )


@dataclass(frozen=True)
class PowerConstrainedNet:
    """One workload net plus its power cap and ready-made objective."""

    net: GeneratedNet
    power_cap: float
    objective: Objective

    @property
    def tree(self) -> RoutingTree:
        return self.net.tree

    @property
    def name(self) -> str:
        return self.net.name


def generate_power_population(
    config: Optional[PowerWorkloadConfig] = None,
    library: Optional[BufferLibrary] = None,
    power_model: Optional[PowerModel] = None,
) -> List[PowerConstrainedNet]:
    """The power-constrained population: base nets + per-net caps.

    Deterministic in ``(config, library, power_model)`` — the caps are
    pure functions of each net's wires, so the family inherits the base
    generator's seed discipline.
    """
    if config is None:
        config = PowerWorkloadConfig()
    if library is None:
        library = default_buffer_library()
    if power_model is None:
        power_model = default_power_model()
    mode = "buffopt" if config.noise_aware else "delay"
    population = []
    for net in generate_population(config.base):
        cap = power_cap_for_tree(
            net.tree, power_model, library, config.buffer_budget
        )
        population.append(PowerConstrainedNet(
            net=net,
            power_cap=cap,
            objective=Objective(
                mode=mode, selection="power-capped", power_cap=cap
            ),
        ))
    return population
