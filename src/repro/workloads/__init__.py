"""Synthetic workload generation (the paper's 500-net population)."""

from .distributions import (
    DEFAULT_SINK_BUCKETS,
    SinkDistribution,
    SpanDistribution,
    default_sink_distribution,
    realized_histogram,
)
from .generator import (
    GeneratedNet,
    WorkloadConfig,
    generate_population,
    population_sink_histogram,
    total_capacitance_rank,
)

__all__ = [
    "DEFAULT_SINK_BUCKETS",
    "GeneratedNet",
    "SinkDistribution",
    "SpanDistribution",
    "WorkloadConfig",
    "default_sink_distribution",
    "generate_population",
    "population_sink_histogram",
    "realized_histogram",
    "total_capacitance_rank",
]
