"""Synthetic workload generation (the paper's 500-net population)."""

from .distributions import (
    DEFAULT_SINK_BUCKETS,
    SinkDistribution,
    SpanDistribution,
    default_sink_distribution,
    realized_histogram,
)
from .generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    generate_population,
    population_sink_histogram,
    population_specs,
    total_capacitance_rank,
)
from .power import (
    PowerConstrainedNet,
    PowerWorkloadConfig,
    generate_power_population,
    median_buffer_power,
    power_cap_for_tree,
)

__all__ = [
    "DEFAULT_SINK_BUCKETS",
    "GeneratedNet",
    "NetSpec",
    "SinkDistribution",
    "SpanDistribution",
    "WorkloadConfig",
    "default_sink_distribution",
    "generate_net_from_spec",
    "generate_population",
    "generate_power_population",
    "median_buffer_power",
    "power_cap_for_tree",
    "PowerConstrainedNet",
    "PowerWorkloadConfig",
    "population_sink_histogram",
    "population_specs",
    "realized_histogram",
    "total_capacitance_rank",
]
