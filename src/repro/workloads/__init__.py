"""Synthetic workload generation (the paper's 500-net population)."""

from .distributions import (
    DEFAULT_SINK_BUCKETS,
    SinkDistribution,
    SpanDistribution,
    default_sink_distribution,
    realized_histogram,
)
from .generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    generate_population,
    population_sink_histogram,
    population_specs,
    total_capacitance_rank,
)

__all__ = [
    "DEFAULT_SINK_BUCKETS",
    "GeneratedNet",
    "NetSpec",
    "SinkDistribution",
    "SpanDistribution",
    "WorkloadConfig",
    "default_sink_distribution",
    "generate_net_from_spec",
    "generate_population",
    "population_sink_histogram",
    "population_specs",
    "realized_histogram",
    "total_capacitance_rank",
]
