"""Population distributions for the synthetic microprocessor workload.

The paper's Table I gives the sink-count distribution of its 500 test
nets (the 500 largest-total-capacitance nets of a PowerPC design).  The
exact counts are not recoverable from the available text, so
:func:`default_sink_distribution` encodes a distribution with the shape
such global-net populations have — dominated by one- and two-sink nets
with a heavy-ish tail to a few dozen sinks — normalized to 500 nets.
Experiments print the realized histogram as our Table I.

Net *span* (the geometric extent that determines wirelength, hence noise)
follows a log-uniform distribution between ``span_min`` and ``span_max``;
the defaults are calibrated so the BuffOpt buffers-per-net histogram lands
in the paper's 0–4 range with the bulk at 1–2 (Section V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..units import MM


#: Table-I-shaped sink-count histogram (sums to 500).
DEFAULT_SINK_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 284),
    (2, 96),
    (3, 44),
    (4, 26),
    (5, 18),
    (6, 10),
    (8, 8),
    (10, 6),
    (12, 4),
    (16, 2),
    (20, 1),
    (32, 1),
)


@dataclass(frozen=True)
class SinkDistribution:
    """A histogram of sink counts: ``(sinks, number of nets)`` pairs."""

    buckets: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.buckets:
            raise WorkloadError("sink distribution needs at least one bucket")
        for sinks, nets in self.buckets:
            if sinks < 1:
                raise WorkloadError(f"sink count must be >= 1, got {sinks}")
            if nets < 0:
                raise WorkloadError(f"net count must be >= 0, got {nets}")

    @property
    def total_nets(self) -> int:
        return sum(nets for _, nets in self.buckets)

    def expand(self) -> List[int]:
        """One sink count per net, in bucket order (deterministic)."""
        out: List[int] = []
        for sinks, nets in self.buckets:
            out.extend([sinks] * nets)
        return out

    def histogram(self) -> Dict[int, int]:
        return {sinks: nets for sinks, nets in self.buckets if nets > 0}

    def scaled(self, total: int) -> "SinkDistribution":
        """Rescale the distribution to exactly ``total`` nets.

        Largest-remainder apportionment: proportions are kept as closely
        as integer counts allow; when ``total`` is smaller than the number
        of buckets, the least-populated buckets drop out (tiny test
        populations cannot carry the full Table-I tail).
        """
        if total < 1:
            raise WorkloadError(f"total must be >= 1, got {total}")
        base = self.total_nets
        live = [(sinks, nets) for sinks, nets in self.buckets if nets > 0]
        quotas = [(sinks, nets * total / base) for sinks, nets in live]
        floors = [(sinks, int(q)) for sinks, q in quotas]
        remainder = total - sum(nets for _, nets in floors)
        # Give the leftover nets to the largest fractional parts.
        by_fraction = sorted(
            range(len(quotas)),
            key=lambda i: (quotas[i][1] - floors[i][1], quotas[i][1]),
            reverse=True,
        )
        counts = dict(floors)
        for index in by_fraction[:remainder]:
            sinks = floors[index][0]
            counts[sinks] += 1
        scaled = tuple(
            (sinks, counts[sinks]) for sinks, _ in live if counts[sinks] > 0
        )
        if not scaled:
            raise WorkloadError(f"cannot scale distribution to {total} nets")
        return SinkDistribution(scaled)


def default_sink_distribution() -> SinkDistribution:
    """The reproduction's Table-I population (500 nets)."""
    return SinkDistribution(DEFAULT_SINK_BUCKETS)


@dataclass(frozen=True)
class SpanDistribution:
    """Log-uniform net spans (meters) — the length knob of the workload."""

    span_min: float = 1.4 * MM
    span_max: float = 14.0 * MM

    def __post_init__(self) -> None:
        if not 0 < self.span_min <= self.span_max:
            raise WorkloadError(
                f"need 0 < span_min <= span_max, got "
                f"({self.span_min}, {self.span_max})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        low, high = math.log(self.span_min), math.log(self.span_max)
        return math.exp(rng.uniform(low, high))


def realized_histogram(sink_counts: Sequence[int]) -> Dict[int, int]:
    """Histogram of realized sink counts (the printed Table I)."""
    out: Dict[int, int] = {}
    for count in sink_counts:
        out[count] = out.get(count, 0) + 1
    return dict(sorted(out.items()))
