"""Fault-tolerant execution: retries, worker-crash recovery, hard deadlines.

The plain pool executors (:mod:`repro.batch.executors`) are fail-fast: a
worker that raises an unexpected exception, hangs, or dies takes the
whole ``map`` with it (``multiprocessing.Pool`` surfaces a dead worker
about as gracefully as ``concurrent.futures`` surfaces
``BrokenProcessPool`` — by poisoning every in-flight item).  This module
adds the opposite discipline for fleet runs that must degrade per item:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter, plus an optional *fallback* step the
  :class:`~repro.batch.BatchOptimizer` applies after the map (serial
  re-execution of crashed items, or an aggressive-pruning re-run of
  budget-blown items).
* :class:`ResilientExecutor` — a supervisor that runs **one item per
  child process**, at most ``workers`` concurrently.  Process-per-item
  is what makes recovery exact: when a child dies the supervisor knows
  *which* net killed it (a shared pool only knows that *someone* did),
  quarantines that item after its retries are spent, and simply forks a
  replacement worker — the "rebuild the pool" step collapses to
  spawning the next child.  A hard ``deadline`` lets the supervisor
  ``terminate``/``kill`` a wedged child and reclaim the slot, covering
  hangs the cooperative :class:`~repro.core.budget.RunBudget` cannot
  reach (e.g. a stuck syscall).

Items that exhaust their attempts come back as :class:`WorkItemFailure`
sentinels in the result list — the executor stays generic; the batch
optimizer turns sentinels into structured
:class:`~repro.batch.NetResult` failures.
"""

from __future__ import annotations

import inspect
import multiprocessing
import random
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import WorkloadError
from ..obs import NULL_TRACER
from .executors import OnResult, default_worker_count

#: fallback modes a :class:`RetryPolicy` may request (applied by the
#: batch optimizer after the map, not by the executor).
FALLBACK_MODES = (None, "serial", "aggressive")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(attempt, key)`` is a pure function of ``(seed, key,
    attempt)``, so reruns schedule byte-identical backoffs — determinism
    extends to the recovery path, not just the happy path.
    """

    #: total tries per item (1 = no retries).
    max_attempts: int = 3
    #: delay before the second attempt; later attempts multiply.
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    #: +/- fraction of jitter applied to each delay (0 disables).
    jitter: float = 0.25
    #: jitter stream seed (per-item keys decorrelate within a run).
    seed: int = 0
    #: retry items whose worker raised an unexpected exception.
    retry_errors: bool = True
    #: retry items whose worker process died (crash / exit / signal).
    retry_crashes: bool = True
    #: retry items the supervisor had to kill at the hard deadline.
    retry_hangs: bool = True
    #: post-map fallback: ``"serial"`` re-runs crashed/hung items inline
    #: in the parent process; ``"aggressive"`` re-runs budget- and
    #: deadline-failed items with a degraded (harder-pruning) engine
    #: configuration; ``None`` disables the pass.
    fallback: Optional[str] = None
    #: candidate budget for the ``"aggressive"`` fallback re-run
    #: (``None`` keeps the original budget).
    fallback_max_candidates: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise WorkloadError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise WorkloadError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise WorkloadError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise WorkloadError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.fallback not in FALLBACK_MODES:
            raise WorkloadError(
                f"unknown fallback {self.fallback!r} "
                f"(expected one of {FALLBACK_MODES})"
            )
        if (
            self.fallback_max_candidates is not None
            and self.fallback_max_candidates < 1
        ):
            raise WorkloadError(
                "fallback_max_candidates must be >= 1 or None, got "
                f"{self.fallback_max_candidates}"
            )

    def delay(self, attempt: int, key: int = 0) -> float:
        """Backoff before attempt ``attempt`` (1-based; attempt 1 is 0)."""
        if attempt <= 1:
            return 0.0
        base = self.backoff_seconds * (
            self.backoff_multiplier ** (attempt - 2)
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        stream = random.Random(
            (self.seed * 1_000_003 + key) * 1_000_033 + attempt
        )
        return base * (1.0 + self.jitter * (2.0 * stream.random() - 1.0))

    def should_retry(self, kind: str, attempt: int) -> bool:
        if attempt >= self.max_attempts:
            return False
        return {
            "error": self.retry_errors,
            "crash": self.retry_crashes,
            "hang": self.retry_hangs,
        }[kind]


@dataclass(frozen=True)
class WorkItemFailure:
    """Sentinel left in the result slot of an item that never completed.

    ``kind`` is ``"error"`` (worker raised), ``"crash"`` (worker process
    died), or ``"hang"`` (killed at the hard deadline); ``error`` is the
    raising exception's class name for ``"error"``, a process-exit
    description otherwise.  ``attempts`` counts every try, ``elapsed``
    sums their wall-clock.
    """

    index: int
    kind: str
    error: str
    message: str
    attempts: int
    elapsed: float


def _child_main(conn, fn, item, attempt: int, pass_attempt: bool) -> None:
    """Worker body: run one item, ship (tag, payload) back, exit."""
    try:
        if pass_attempt:
            value = fn(item, attempt=attempt)
        else:
            value = fn(item)
        payload = ("ok", value)
    except BaseException as exc:  # noqa: BLE001 - the wire is the handler
        payload = ("error", type(exc).__name__, str(exc))
    try:
        conn.send(payload)
    except Exception as exc:  # unpicklable result / broken pipe
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:
            pass
    finally:
        conn.close()


def _accepts_attempt(fn: Callable) -> bool:
    """Does ``fn`` take an ``attempt`` keyword? (checked once per map)."""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    if "attempt" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


class _Running:
    __slots__ = (
        "process", "conn", "index", "attempt", "started", "kill_at", "span"
    )

    def __init__(self, process, conn, index, attempt, started, kill_at,
                 span=None):
        self.process = process
        self.conn = conn
        self.index = index
        self.attempt = attempt
        self.started = started
        self.kill_at = kill_at
        self.span = span


class ResilientExecutor:
    """Crash-, hang-, and exception-surviving map over child processes.

    Satisfies the executor interface (``map(fn, items) -> list`` in
    input order) but never lets one item poison the run: each item runs
    in its own child, failures are retried per ``retry``, and items that
    exhaust their attempts yield :class:`WorkItemFailure` sentinels.

    ``deadline`` is the hard per-attempt wall-clock limit (seconds)
    after which a child is terminated; ``None`` disables the kill and
    leaves hang protection to the cooperative
    :class:`~repro.core.budget.RunBudget` inside the worker.
    """

    name = "resilient"

    def __init__(
        self,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        poll_seconds: float = 0.02,
        tracer=None,
        metrics=None,
    ):
        if workers is not None and workers < 1:
            raise WorkloadError(f"workers must be >= 1, got {workers}")
        if deadline is not None and deadline <= 0:
            raise WorkloadError(
                f"deadline must be positive or None, got {deadline}"
            )
        if poll_seconds <= 0:
            raise WorkloadError(
                f"poll_seconds must be positive, got {poll_seconds}"
            )
        self.workers = workers
        self.retry = retry or RetryPolicy()
        self.deadline = deadline
        self.poll_seconds = poll_seconds
        #: per-attempt spans and retry/backoff telemetry land here; the
        #: batch optimizer adopts un-wired executors into its own
        #: tracer/registry so CLI ``--trace`` reaches attempt level.
        self.tracer = tracer or NULL_TRACER
        self.metrics = metrics

    @property
    def effective_workers(self) -> int:
        return self.workers or default_worker_count()

    def describe(self) -> str:
        deadline = (
            "no deadline" if self.deadline is None
            else f"{self.deadline:g} s deadline"
        )
        return (
            f"resilient ({self.effective_workers} workers, "
            f"{self.retry.max_attempts} attempts, {deadline})"
        )

    # -- the supervisor ----------------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        # Delivered in settle order (like AsyncExecutor), not input
        # order — exactly what the streaming report fold wants.
        on_result: OnResult = None,
    ) -> List[Any]:
        items = list(items)
        if not items:
            return []
        pass_attempt = _accepts_attempt(fn)
        context = multiprocessing.get_context()
        results: List[Any] = [None] * len(items)
        resolved = [False] * len(items)
        elapsed: Dict[int, float] = {i: 0.0 for i in range(len(items))}
        pending = deque((index, 1) for index in range(len(items)))
        waiting: List[tuple] = []  # (ready_at, index, attempt)
        running: Dict[int, _Running] = {}

        tracer = self.tracer
        metrics = self.metrics
        if metrics is not None:
            attempts_total = metrics.counter(
                "buffopt_worker_attempts_total",
                "worker attempts, by terminal outcome of each attempt",
            )
            retries_total = metrics.counter(
                "buffopt_worker_retries_total",
                "attempts re-queued after a retryable failure",
            )
            backoff_total = metrics.counter(
                "buffopt_backoff_seconds_total",
                "backoff delay scheduled before retry attempts",
            )
        else:
            attempts_total = retries_total = backoff_total = None

        def resolve(index: int, value: Any) -> None:
            results[index] = value
            resolved[index] = True
            if on_result is not None:
                on_result(index, value)

        def settle(index: int, attempt: int, kind: str, error: str,
                   message: str) -> None:
            """Retry a failed attempt or quarantine the item for good."""
            if self.retry.should_retry(kind, attempt):
                backoff = self.retry.delay(attempt + 1, key=index)
                waiting.append((
                    time.monotonic() + backoff, index, attempt + 1
                ))
                tracer.event(
                    "attempt.retry", index=index, kind=kind,
                    next_attempt=attempt + 1, backoff_seconds=backoff,
                )
                if retries_total is not None:
                    retries_total.inc()
                    backoff_total.inc(backoff)
            else:
                resolve(index, WorkItemFailure(
                    index=index, kind=kind, error=error, message=message,
                    attempts=attempt, elapsed=elapsed[index],
                ))

        def reap(run: _Running, outcome: str) -> None:
            run.conn.close()
            run.process.join(timeout=5.0)
            if run.process.is_alive():
                run.process.kill()
                run.process.join()
            del running[run.index]
            elapsed[run.index] += time.monotonic() - run.started
            tracer.end_span(run.span, outcome=outcome)
            if attempts_total is not None:
                attempts_total.inc(outcome=outcome)

        try:
            while pending or waiting or running:
                now = time.monotonic()
                if waiting:
                    due = [w for w in waiting if w[0] <= now]
                    for entry in due:
                        waiting.remove(entry)
                        pending.append((entry[1], entry[2]))
                while pending and len(running) < self.effective_workers:
                    index, attempt = pending.popleft()
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_child_main,
                        args=(child_conn, fn, items[index], attempt,
                              pass_attempt),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    started = time.monotonic()
                    running[index] = _Running(
                        process, parent_conn, index, attempt, started,
                        None if self.deadline is None
                        else started + self.deadline,
                        tracer.start_span(
                            "attempt", index=index, attempt=attempt
                        ),
                    )
                if not running:
                    if waiting:
                        time.sleep(max(
                            0.0, min(w[0] for w in waiting) - time.monotonic()
                        ))
                    continue

                timeout = self.poll_seconds
                kills = [r.kill_at for r in running.values()
                         if r.kill_at is not None]
                if kills:
                    timeout = min(timeout, max(
                        0.0, min(kills) - time.monotonic()
                    ))
                ready = _wait_connections(
                    [run.conn for run in running.values()], timeout=timeout
                )
                by_conn = {run.conn: run for run in running.values()}
                for conn in ready:
                    run = by_conn[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        # The pipe died before a result: the worker
                        # crashed (os._exit, segfault, kill -9, ...).
                        reap(run, "crash")
                        code = run.process.exitcode
                        settle(
                            run.index, run.attempt, "crash",
                            "WorkerCrashError",
                            "worker process died with exit code "
                            f"{code} before returning a result",
                        )
                        continue
                    if message[0] == "ok":
                        reap(run, "ok")
                        resolve(run.index, message[1])
                    else:
                        reap(run, "error")
                        settle(
                            run.index, run.attempt, "error",
                            message[1], message[2],
                        )

                if self.deadline is not None:
                    now = time.monotonic()
                    for run in list(running.values()):
                        if run.kill_at is not None and now >= run.kill_at:
                            run.process.terminate()
                            run.process.join(timeout=1.0)
                            if run.process.is_alive():
                                run.process.kill()
                            reap(run, "hang")
                            settle(
                                run.index, run.attempt, "hang",
                                "TimeoutError",
                                "worker killed after exceeding the "
                                f"{self.deadline:g} s hard deadline",
                            )
        finally:
            # Never leak children, whatever interrupted the loop.
            for run in list(running.values()):
                run.process.kill()
                run.process.join()
                run.conn.close()
                tracer.end_span(run.span, outcome="aborted")

        assert all(resolved), "supervisor ended with unresolved items"
        return results
