"""Pluggable map backends for the batch optimizer.

The executors share one tiny interface — ``map(fn, items) -> list`` with
results in input order:

* :class:`SerialExecutor` — a plain loop in the calling process.  Zero
  overhead, the baseline every parallel backend must beat.
* :class:`MultiprocessExecutor` — a ``multiprocessing.Pool`` with one task
  per item (finest-grained load balancing; best when per-net cost varies
  wildly, as it does across the workload's span distribution).
* :class:`ChunkedExecutor` — the same pool with a configurable chunk
  size, amortizing task dispatch and pickling over ``chunk_size`` nets
  (best when nets are small and dispatch overhead dominates).
* :class:`AsyncExecutor` — a ``concurrent.futures`` process pool with a
  bounded submission window that surfaces each result the moment it
  settles, *out of order*.  The streaming backend: at fleet scale the
  batch layer folds results into its report as they arrive, so waiting
  for input order (as ``pool.imap`` does) just grows the reorder buffer
  behind one slow net.

``fn`` and every item must be picklable for the process-backed executors
(the batch work units are; see :mod:`repro.batch.optimizer`).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from ..errors import WorkloadError

_Item = TypeVar("_Item")
_Out = TypeVar("_Out")

#: optional streaming hook: ``on_result(index, value)`` is invoked as
#: each item completes (in input order for the pool executors), letting
#: the batch layer journal checkpoints incrementally.
OnResult = Optional[Callable[[int, Any], None]]


def default_worker_count() -> int:
    """Worker processes to use when unspecified (the schedulable CPUs)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


class SerialExecutor:
    """In-process loop; the baseline and the debugging backend."""

    name = "serial"

    def map(
        self,
        fn: Callable[[_Item], _Out],
        items: Sequence[_Item],
        on_result: OnResult = None,
    ) -> List[_Out]:
        results: List[_Out] = []
        for index, item in enumerate(items):
            result = fn(item)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    def describe(self) -> str:
        return "serial (in-process)"


class MultiprocessExecutor:
    """``multiprocessing.Pool`` backend, one task per item.

    ``workers=None`` uses every schedulable CPU.  Each ``map`` call owns a
    fresh pool, so no state leaks between batches and workers never carry
    inherited RNG state (determinism relies on explicit per-net seeds, see
    :class:`~repro.workloads.NetSpec`).
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise WorkloadError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    @property
    def effective_workers(self) -> int:
        return self.workers or default_worker_count()

    def _chunksize(self, item_count: int) -> int:
        return 1

    def map(
        self,
        fn: Callable[[_Item], _Out],
        items: Sequence[_Item],
        on_result: OnResult = None,
    ) -> List[_Out]:
        items = list(items)
        if not items:
            return []
        # A pool is pure overhead when it could only hold one worker.
        if self.effective_workers == 1:
            return SerialExecutor().map(fn, items, on_result=on_result)
        chunksize = self._chunksize(len(items))
        with multiprocessing.Pool(self.effective_workers) as pool:
            if on_result is None:
                return pool.map(fn, items, chunksize=chunksize)
            # imap streams completed items in input order, so callers
            # can checkpoint incrementally at chunk granularity.
            results: List[_Out] = []
            for index, result in enumerate(
                pool.imap(fn, items, chunksize=chunksize)
            ):
                results.append(result)
                on_result(index, result)
            return results

    def describe(self) -> str:
        return f"{self.name} ({self.effective_workers} workers)"


class ChunkedExecutor(MultiprocessExecutor):
    """Pool backend shipping ``chunk_size`` items per task.

    ``chunk_size=None`` picks ``ceil(items / (4 * workers))`` — big enough
    to amortize dispatch, small enough to keep every worker busy through
    the tail.
    """

    name = "chunked"

    def __init__(
        self, workers: Optional[int] = None, chunk_size: Optional[int] = None
    ):
        super().__init__(workers)
        if chunk_size is not None and chunk_size < 1:
            raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def _chunksize(self, item_count: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-item_count // (4 * self.effective_workers)))

    def describe(self) -> str:
        chunk = self.chunk_size if self.chunk_size is not None else "auto"
        return f"chunked ({self.effective_workers} workers, chunk={chunk})"


class AsyncExecutor:
    """Completion-order streaming over a ``concurrent.futures`` pool.

    ``map`` still *returns* results in input order — the executor
    contract — but ``on_result`` fires the moment each item settles,
    whichever it is.  Submission is windowed (``window`` items in
    flight, default ``4 * workers``): enough lookahead to keep every
    worker fed through stragglers, bounded so a million-item fleet
    never materializes a million pickled futures at once.

    Like the plain pool executors this one is fail-fast: a worker
    exception propagates out of ``map`` (wrap with
    :class:`~repro.batch.ResilientExecutor` semantics — or record
    failures as data, as the batch worker does — when one net must not
    poison the fleet).
    """

    name = "async"

    def __init__(
        self, workers: Optional[int] = None, window: Optional[int] = None
    ):
        if workers is not None and workers < 1:
            raise WorkloadError(f"workers must be >= 1, got {workers}")
        if window is not None and window < 1:
            raise WorkloadError(f"window must be >= 1, got {window}")
        self.workers = workers
        self.window = window

    @property
    def effective_workers(self) -> int:
        return self.workers or default_worker_count()

    @property
    def effective_window(self) -> int:
        return self.window or 4 * self.effective_workers

    def map(
        self,
        fn: Callable[[_Item], _Out],
        items: Sequence[_Item],
        on_result: OnResult = None,
    ) -> List[_Out]:
        items = list(items)
        if not items:
            return []
        if self.effective_workers == 1:
            return SerialExecutor().map(fn, items, on_result=on_result)
        results: List[Any] = [None] * len(items)
        feed = iter(enumerate(items))
        in_flight: dict = {}
        with ProcessPoolExecutor(
            max_workers=self.effective_workers
        ) as pool:

            def submit_next() -> bool:
                for index, item in feed:
                    in_flight[pool.submit(fn, item)] = index
                    return True
                return False

            for _ in range(min(self.effective_window, len(items))):
                submit_next()
            while in_flight:
                settled, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in settled:
                    index = in_flight.pop(future)
                    value = future.result()
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                    submit_next()
        return results

    def describe(self) -> str:
        return (
            f"async ({self.effective_workers} workers, "
            f"window={self.effective_window}, completion-order streaming)"
        )


def make_executor(
    kind: str,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry=None,
    deadline: Optional[float] = None,
):
    """Executor factory for the CLI and benchmarks.

    ``kind`` is one of ``"serial"``, ``"process"``, ``"chunked"``,
    ``"async"``, or ``"resilient"``; ``retry`` (a
    :class:`~repro.batch.resilience.RetryPolicy`) and ``deadline`` only
    apply to the resilient supervisor.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return MultiprocessExecutor(workers=workers)
    if kind == "chunked":
        return ChunkedExecutor(workers=workers, chunk_size=chunk_size)
    if kind == "async":
        return AsyncExecutor(workers=workers)
    if kind == "resilient":
        from .resilience import ResilientExecutor  # avoid an import cycle

        return ResilientExecutor(
            workers=workers, retry=retry, deadline=deadline
        )
    raise WorkloadError(
        f"unknown executor {kind!r} "
        "(expected serial, process, chunked, async, or resilient)"
    )
