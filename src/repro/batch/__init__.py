"""Batch optimization: fleets of nets through the DP engine.

The paper optimizes one net at a time; real deployments (Albrecht et
al.'s buffered global routing) face thousands of nets per design.  This
package scales the engine out — and keeps it alive when individual nets
misbehave:

* :class:`BatchOptimizer` maps a pluggable executor over net specs or
  built trees; :class:`BatchReport` aggregates solutions, throughput,
  pruning telemetry, and failure taxonomies.
* Per-net guards (:class:`~repro.core.budget.RunBudget` deadline /
  candidate budget, configured on :class:`BatchConfig`) turn
  pathological nets into structured :class:`FailureRecord`\\ s instead of
  stalled fleets.
* :class:`ResilientExecutor` + :class:`RetryPolicy` survive worker
  crashes, hangs, and unexpected exceptions with bounded retries,
  quarantine, and optional fallback re-execution.
* ``optimize(..., checkpoint=path)`` journals finished nets to JSONL so
  an interrupted run resumes (``resume=True``) without recomputation;
  ``shards=N`` splits the journal into independent shard files
  (:class:`ShardedCheckpoint`) and ``stream_report=True`` folds results
  into a constant-memory :class:`ReportFold` instead of retaining them
  — the 10⁵–10⁶-net posture.
* :mod:`repro.batch.faults` injects deterministic raise/hang/exit
  faults so every recovery path stays testable.
"""

from .checkpoint import (
    CheckpointJournal,
    JournalReader,
    TORN_TAIL_COUNTER,
    load_checkpoint,
    read_checkpoint_header,
    record_torn_tail,
    result_from_json,
    result_to_json,
)
from .executors import (
    AsyncExecutor,
    ChunkedExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    default_worker_count,
    make_executor,
)
from .report import CANDIDATE_BUCKETS, ReportFold
from .sharding import (
    SHARDS_RECOVERED_COUNTER,
    ShardRecovery,
    ShardedCheckpoint,
    load_sharded_checkpoint,
    merge_sharded_checkpoint,
    net_shard,
)
from .faults import FAULT_KINDS, FaultPlan, FaultSpec, InjectedFault
from .optimizer import (
    BatchConfig,
    BatchItem,
    BatchOptimizer,
    BatchReport,
    FAILURE_PHASES,
    FailureRecord,
    NetResult,
    failure_net_result,
    item_identity,
    optimize_net,
)
from .resilience import (
    ResilientExecutor,
    RetryPolicy,
    WorkItemFailure,
)

__all__ = [
    "AsyncExecutor",
    "BatchConfig",
    "BatchItem",
    "BatchOptimizer",
    "BatchReport",
    "CANDIDATE_BUCKETS",
    "CheckpointJournal",
    "ChunkedExecutor",
    "FAILURE_PHASES",
    "FAULT_KINDS",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JournalReader",
    "MultiprocessExecutor",
    "NetResult",
    "ReportFold",
    "ResilientExecutor",
    "RetryPolicy",
    "SHARDS_RECOVERED_COUNTER",
    "SerialExecutor",
    "ShardRecovery",
    "ShardedCheckpoint",
    "TORN_TAIL_COUNTER",
    "WorkItemFailure",
    "default_worker_count",
    "failure_net_result",
    "item_identity",
    "load_checkpoint",
    "load_sharded_checkpoint",
    "make_executor",
    "merge_sharded_checkpoint",
    "net_shard",
    "optimize_net",
    "read_checkpoint_header",
    "record_torn_tail",
    "result_from_json",
    "result_to_json",
]
