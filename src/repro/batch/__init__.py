"""Batch optimization: fleets of nets through the DP engine.

The paper optimizes one net at a time; real deployments (Albrecht et
al.'s buffered global routing) face thousands of nets per design.  This
package scales the engine out: :class:`BatchOptimizer` maps a pluggable
executor over net specs or built trees, and :class:`BatchReport`
aggregates solutions, throughput, and pruning telemetry.
"""

from .executors import (
    ChunkedExecutor,
    MultiprocessExecutor,
    SerialExecutor,
    default_worker_count,
    make_executor,
)
from .optimizer import (
    BatchConfig,
    BatchItem,
    BatchOptimizer,
    BatchReport,
    NetResult,
    optimize_net,
)

__all__ = [
    "BatchConfig",
    "BatchItem",
    "BatchOptimizer",
    "BatchReport",
    "ChunkedExecutor",
    "MultiprocessExecutor",
    "NetResult",
    "SerialExecutor",
    "default_worker_count",
    "make_executor",
    "optimize_net",
]
