"""Deterministic fault injection for the batch workers.

Recovery code that only runs when production breaks is recovery code
that does not work.  This module lets tests (and the benchmark's
fault-rate mode) make chosen nets misbehave *inside the worker*, on
chosen attempts, in the three ways a real fleet run fails:

* ``"raise"`` — the worker raises :class:`InjectedFault` (a plain
  ``RuntimeError``, deliberately *not* a :class:`~repro.errors.ReproError`,
  so it exercises the unexpected-exception path);
* ``"hang"`` — the worker sleeps ``seconds`` before proceeding,
  simulating a stuck net that only a hard deadline can reclaim;
* ``"exit"`` — the worker calls ``os._exit``, simulating a segfault /
  OOM kill that leaves no Python-level trace;
* ``"slow"`` — the worker sleeps ``seconds`` and then proceeds
  normally.  Mechanically identical to ``"hang"``; the semantic split
  matters to the service chaos harness: a hang's ``seconds`` is chosen
  *past* the supervisor's hard deadline (the kill path must fire), a
  slow-start's is chosen *under* it (the request must still succeed,
  just late — exercising queue backpressure, not the kill path).

Everything is deterministic: a :class:`FaultPlan` maps net names to
:class:`FaultSpec`\\ s, each spec lists the *attempt numbers* on which it
fires, and :meth:`FaultPlan.sample` derives a plan from a seed.  Because
attempt numbers travel with the work item (no shared state), the plan
behaves identically in-process, across pool workers, and across retries
— a spec with ``attempts=(1,)`` fails once and then succeeds, which is
exactly what a retry test needs.

The plan is shipped to workers inside the batch dispatch payload; a
``None`` plan costs one attribute check per net.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..errors import WorkloadError

#: supported fault kinds, in the order the docs discuss them.
FAULT_KINDS = ("raise", "hang", "exit", "slow")


class InjectedFault(RuntimeError):
    """The exception thrown by ``kind="raise"`` faults.

    Deliberately outside the :class:`~repro.errors.ReproError` hierarchy:
    injected raises must travel the same recovery path as any unexpected
    worker exception, not the handled engine-error path.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One net's scripted misbehavior."""

    #: one of :data:`FAULT_KINDS`.
    kind: str
    #: attempt numbers (1-based) on which the fault fires; attempts not
    #: listed run clean, so ``(1,)`` models a transient failure and
    #: ``(1, 2, 3)`` a permanent one.
    attempts: Tuple[int, ...] = (1,)
    #: sleep duration for ``"hang"`` (choose it well past the supervisor
    #: deadline under test).
    seconds: float = 3600.0
    #: status for ``"exit"`` (nonzero, so the death is visibly abnormal).
    exit_code: int = 17
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise WorkloadError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {FAULT_KINDS})"
            )
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise WorkloadError(
                f"fault attempts must be >= 1, got {self.attempts}"
            )
        if self.seconds <= 0:
            raise WorkloadError(
                f"fault seconds must be positive, got {self.seconds}"
            )
        if self.exit_code == 0:
            raise WorkloadError("fault exit_code must be nonzero")


@dataclass(frozen=True)
class FaultPlan:
    """Net-name -> :class:`FaultSpec` schedule, picklable and immutable."""

    faults: Mapping[str, FaultSpec] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.faults)

    def spec_for(self, name: str) -> Optional[FaultSpec]:
        return self.faults.get(name)

    def fires_on(self, name: str, attempt: int) -> bool:
        spec = self.faults.get(name)
        return spec is not None and attempt in spec.attempts

    def fire(self, name: str, attempt: int) -> None:
        """Misbehave if ``name`` is scheduled to fail on ``attempt``.

        Called at worker entry, before net generation.  ``"raise"``
        raises, ``"exit"`` never returns, ``"hang"`` and ``"slow"``
        sleep then return (so a hang without a deadline still
        completes, just late).
        """
        spec = self.faults.get(name)
        if spec is None or attempt not in spec.attempts:
            return
        if spec.kind == "raise":
            raise InjectedFault(
                f"{spec.message} (net {name!r}, attempt {attempt})"
            )
        if spec.kind in ("hang", "slow"):
            time.sleep(spec.seconds)
            return
        # "exit": bypass every handler, like a segfault would.
        os._exit(spec.exit_code)

    @staticmethod
    def sample(
        names: Iterable[str],
        rate: float,
        seed: int = 0,
        kind: str = "raise",
        attempts: Tuple[int, ...] = (1,),
        seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Deterministically afflict a ``rate`` fraction of ``names``.

        Uses its own :class:`random.Random` stream seeded by ``seed``;
        the same inputs always select the same nets (the benchmark's
        "1% injected faults" run relies on this).
        """
        if not 0.0 <= rate <= 1.0:
            raise WorkloadError(f"fault rate must be in [0, 1], got {rate}")
        ordered = list(names)
        count = round(len(ordered) * rate)
        picked = random.Random(seed).sample(ordered, count)
        spec = FaultSpec(
            kind=kind, attempts=attempts, seconds=seconds
        )
        return FaultPlan(faults={name: spec for name in sorted(picked)})

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: empty"
        kinds: Dict[str, int] = {}
        for spec in self.faults.values():
            kinds[spec.kind] = kinds.get(spec.kind, 0) + 1
        summary = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return f"fault plan: {len(self.faults)} nets ({summary})"
