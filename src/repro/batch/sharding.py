"""Sharded checkpoint journals: one fleet, N independent JSONL shards.

A single append-only journal serializes every checkpoint write through
one file handle — at 10⁵–10⁶ nets the fsync line becomes the fleet's
heartbeat and its bottleneck.  A :class:`ShardedCheckpoint` splits the
journal into ``shards`` independent files inside one directory::

    fleet.ckpt/
      shard-0000.jsonl
      shard-0001.jsonl
      ...

Each shard is a standard :class:`~repro.batch.checkpoint.CheckpointJournal`
file whose header carries the shard topology *next to* — deliberately
not inside — the batch fingerprint, so a journal written with N shards
resumes cleanly under M shards.  Nets route to shards by
:func:`net_shard`, a stable SHA-256 of the net name modulo the shard
count (immune to ``PYTHONHASHSEED``), so a fixed topology always
appends a net to the same file.

Resharding is why loads are topology-blind: :func:`load_sharded_checkpoint`
reads **every** ``shard-*.jsonl`` present, not just the first ``shards``
of them.  After an N→M reshard the same net may legitimately appear in
two files (journalled under N, upgraded by a fallback pass under M);
within one file line order decides, across files the per-record ``seq``
stamp — a single writer-side counter continued across incarnations —
decides.  :func:`merge_sharded_checkpoint` collapses a shard directory
back into one canonical single-file journal, bit-identical in content
to what an unsharded run would have written (winning record per net, in
sequence order, ``seq`` stamps dropped).

Recovery parallelizes per shard (:mod:`concurrent.futures` threads —
the work is I/O plus ``json.loads``), counts recovered shards on
``buffopt_checkpoint_shards_recovered_total``, and tolerates a torn
final line *per shard* (each shard had its own writer position when the
process died), counted on the shared torn-tail counter with
``journal="batch-shard"``.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import WorkloadError
from ..library.buffers import BufferLibrary
from .checkpoint import (
    CheckpointJournal,
    JournalReader,
    check_fingerprint,
    read_checkpoint_header,
    result_from_json,
)

#: shard files inside a checkpoint directory match this pattern.
SHARD_GLOB = "shard-*.jsonl"

#: obs counter: shard files replayed during a sharded recovery.
SHARDS_RECOVERED_COUNTER = "buffopt_checkpoint_shards_recovered_total"


def shard_file(directory: Union[str, Path], index: int) -> Path:
    return Path(directory) / f"shard-{index:04d}.jsonl"


def net_shard(name: str, shards: int) -> int:
    """The shard a net routes to: stable across processes and runs.

    SHA-256 rather than ``hash()`` because the latter is salted per
    process (``PYTHONHASHSEED``); the modulo must agree between the run
    that writes and every run that resumes.
    """
    if shards < 1:
        raise WorkloadError(f"shards must be >= 1, got {shards}")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ShardedCheckpoint:
    """Writer over N shard journals, presenting the single-journal API.

    ``append(result)`` routes by net name and stamps a global ``seq``;
    ``close()`` closes every shard.  The ``seq`` counter continues from
    the previous incarnation on resume (``start_seq``), keeping
    cross-file last-write-wins well defined after a reshard.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        journals: List[CheckpointJournal],
        start_seq: int = 0,
    ):
        self.directory = Path(directory)
        self._journals = journals
        self._seq = start_seq

    @property
    def shards(self) -> int:
        return len(self._journals)

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        shards: int,
        fingerprint: Dict[str, Any],
        fsync: bool = True,
    ) -> "ShardedCheckpoint":
        """Start a fresh sharded checkpoint (wiping any previous shards,
        including leftovers from a run with a different shard count)."""
        if shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {shards}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob(SHARD_GLOB):
            stale.unlink()
        journals = [
            CheckpointJournal.create(
                shard_file(directory, index),
                fingerprint,
                fsync=fsync,
                # topology lives beside the fingerprint, never inside it:
                # resuming under a different shard count must stay legal.
                header_extra={"shard": {"index": index, "count": shards}},
            )
            for index in range(shards)
        ]
        return cls(directory, journals)

    @classmethod
    def append_to(
        cls,
        directory: Union[str, Path],
        shards: int,
        fingerprint: Dict[str, Any],
        fsync: bool = True,
        start_seq: int = 0,
    ) -> "ShardedCheckpoint":
        """Reopen (or, after an N→M reshard, part-create) shard writers.

        Existing shard files must carry a matching fingerprint; missing
        ones — the new topology has more shards than the old — are
        created.  Old shard files beyond ``shards`` are left untouched:
        loads read them, writers simply never route there again.
        """
        if shards < 1:
            raise WorkloadError(f"shards must be >= 1, got {shards}")
        directory = Path(directory)
        journals = []
        for index in range(shards):
            path = shard_file(directory, index)
            if path.exists():
                journals.append(
                    CheckpointJournal.append_to(path, fingerprint, fsync=fsync)
                )
            else:
                journals.append(CheckpointJournal.create(
                    path,
                    fingerprint,
                    fsync=fsync,
                    header_extra={"shard": {"index": index, "count": shards}},
                ))
        return cls(directory, journals, start_seq=start_seq)

    def append(self, result) -> None:
        self._seq += 1
        self._journals[net_shard(result.name, self.shards)].append(
            result, seq=self._seq
        )

    def close(self) -> None:
        for journal in self._journals:
            journal.close()

    def __enter__(self) -> "ShardedCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ShardRecovery:
    """What a sharded load hands the resuming optimizer."""

    #: net name -> winning :class:`~repro.batch.NetResult`.
    results: Dict[str, Any] = field(default_factory=dict)
    #: highest ``seq`` stamp seen (the writer continues from here).
    max_seq: int = 0
    #: shard files replayed.
    shard_files: int = 0
    #: shards whose torn final line was repaired.
    torn_tails: int = 0


def _read_shard(
    path: Path,
    fingerprint: Optional[Dict[str, Any]],
    metrics,
) -> Tuple[List[Tuple[int, int, Dict[str, Any]]], bool]:
    """One shard's result records as ``(seq, line_number, record)``."""
    header = read_checkpoint_header(path)
    if fingerprint is not None:
        check_fingerprint(header["fingerprint"], fingerprint, path)
    reader = JournalReader(path, metrics=metrics, journal="batch-shard")
    records: List[Tuple[int, int, Dict[str, Any]]] = []
    for number, record in reader.records():
        if record.get("kind") != "result":
            raise WorkloadError(
                f"checkpoint shard {path} line {number} has unexpected "
                f"kind {record.get('kind')!r}"
            )
        records.append((int(record.get("seq", 0)), number, record))
    return records, reader.torn_tail


def _shard_paths(directory: Union[str, Path]) -> List[Path]:
    directory = Path(directory)
    paths = sorted(directory.glob(SHARD_GLOB))
    if not paths:
        raise WorkloadError(
            f"sharded checkpoint {directory} contains no shard files "
            f"(expected {SHARD_GLOB})"
        )
    return paths


def load_sharded_checkpoint(
    directory: Union[str, Path],
    library: BufferLibrary,
    fingerprint: Optional[Dict[str, Any]] = None,
    metrics=None,
    max_workers: Optional[int] = None,
) -> ShardRecovery:
    """Replay every shard file in ``directory`` into a :class:`ShardRecovery`.

    All ``shard-*.jsonl`` files participate regardless of the current
    shard count — that is what makes an N→M resharded resume land on
    exactly the single-journal result.  Per net, the record with the
    highest ``(seq, file order)`` wins, which inside one topology
    degenerates to the familiar last-line-wins.
    """
    paths = _shard_paths(directory)
    workers = max_workers or min(8, len(paths))
    recovery = ShardRecovery(shard_files=len(paths))
    winners: Dict[str, Tuple[Tuple[int, int, int], Dict[str, Any]]] = {}
    if workers > 1 and len(paths) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parsed = list(pool.map(
                lambda path: _read_shard(path, fingerprint, metrics), paths
            ))
    else:
        parsed = [_read_shard(path, fingerprint, metrics) for path in paths]
    for file_order, (records, torn) in enumerate(parsed):
        if torn:
            recovery.torn_tails += 1
        for seq, number, record in records:
            recovery.max_seq = max(recovery.max_seq, seq)
            rank = (seq, file_order, number)
            kept = winners.get(record["name"])
            if kept is None or rank > kept[0]:
                winners[record["name"]] = (rank, record)
    for name, (_, record) in winners.items():
        recovery.results[name] = result_from_json(record, library)
    if metrics is not None:
        metrics.counter(
            SHARDS_RECOVERED_COUNTER,
            "shard files replayed during sharded checkpoint recovery",
        ).inc(len(paths))
    return recovery


def merge_sharded_checkpoint(
    directory: Union[str, Path],
    output: Union[str, Path],
    fsync: bool = True,
) -> Path:
    """Collapse a shard directory into one canonical single-file journal.

    The output carries the shards' (shared) fingerprint and the winning
    record per net in global sequence order, with the ``seq`` stamps
    dropped — loading it with
    :func:`~repro.batch.checkpoint.load_checkpoint` yields exactly what
    :func:`load_sharded_checkpoint` recovers from the directory, and the
    file is indistinguishable from an unsharded run's checkpoint.
    """
    paths = _shard_paths(directory)
    fingerprint = read_checkpoint_header(paths[0])["fingerprint"]
    winners: Dict[str, Tuple[Tuple[int, int, int], Dict[str, Any]]] = {}
    for file_order, path in enumerate(paths):
        records, _ = _read_shard(path, fingerprint, metrics=None)
        for seq, number, record in records:
            rank = (seq, file_order, number)
            kept = winners.get(record["name"])
            if kept is None or rank > kept[0]:
                winners[record["name"]] = (rank, record)
    output = Path(output)
    journal = CheckpointJournal.create(output, fingerprint, fsync=fsync)
    try:
        for rank, record in sorted(winners.values(), key=lambda won: won[0]):
            clean = {key: value for key, value in record.items()
                     if key != "seq"}
            journal._write(clean)
    finally:
        journal.close()
    return output
