"""Constant-memory fleet aggregation: fold results, don't hoard them.

At 10⁵–10⁶ nets, holding every :class:`~repro.batch.NetResult` (each
with an assignment dict, possibly a tree) just to compute counts at the
end is the memory bill that kills the run.  :class:`ReportFold` is the
incremental alternative: ``fold(result)`` updates every aggregate the
:class:`~repro.batch.BatchReport` JSON schema needs — counts, failure
taxonomy, retry totals, the buffer histogram — in O(1) state, plus
latency and candidate-count distributions on
:class:`~repro.obs.Histogram` instances (the same machinery the metrics
registry exports, reused here without a registry).

:class:`~repro.batch.BatchReport` *always* aggregates through a fold —
retained mode builds one from its results list in ``__post_init__`` —
so a streamed report's ``to_json()`` is identical to the in-memory one
by construction, not by parallel bookkeeping (the streaming tests pin
the byte equality anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.stats import EngineStats
from ..obs.metrics import DEFAULT_BUCKETS, Histogram

#: candidate-count buckets: generated-candidate totals per net span
#: a few (tiny nets) to hundreds of thousands (the bench gate points).
CANDIDATE_BUCKETS = (
    10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0,
    30_000.0, 100_000.0, 300_000.0, 1_000_000.0,
)


@dataclass
class ReportFold:
    """Streaming aggregates over :class:`~repro.batch.NetResult`\\ s.

    One ``fold`` per completed net — *exactly* one: the optimizer parks
    failed results until the fallback pass has had its say, so an
    upgraded failure is folded once as its final self, never folded and
    then "unfolded" (histograms cannot decrement).
    """

    mode: str = "buffopt"
    nets: int = 0
    ok: int = 0
    failed: int = 0
    net_seconds: float = 0.0
    total_buffers: int = 0
    total_candidates: int = 0
    retries: int = 0
    certified: int = 0
    #: ``True`` once any folded result carried a certification verdict
    #: (drives the report's ``certified: null`` vs count distinction).
    certified_seen: bool = False
    failure_taxonomy_counts: Dict[str, int] = field(default_factory=dict)
    buffer_counts: Dict[int, int] = field(default_factory=dict)
    #: merged engine telemetry (``None`` until a result carries stats).
    stats: Optional[EngineStats] = None
    #: per-net wall-clock distribution (obs histogram machinery).
    latency: Histogram = field(default_factory=lambda: Histogram(
        "buffopt_fold_net_seconds",
        "single-net wall-clock folded into the streaming report",
        buckets=DEFAULT_BUCKETS,
    ))
    #: per-net generated-candidate distribution.
    candidates: Histogram = field(default_factory=lambda: Histogram(
        "buffopt_fold_net_candidates",
        "per-net generated candidates folded into the streaming report",
        buckets=CANDIDATE_BUCKETS,
    ))

    def fold(self, result) -> None:
        """Absorb one final :class:`~repro.batch.NetResult`."""
        self.nets += 1
        self.net_seconds += result.seconds
        self.total_candidates += result.candidates_generated
        self.retries += max(0, result.attempts - 1)
        self.latency.observe(result.seconds, mode=self.mode)
        self.candidates.observe(
            float(result.candidates_generated), mode=self.mode
        )
        if result.certified is not None:
            self.certified_seen = True
            if result.certified is True:
                self.certified += 1
        if result.ok:
            self.ok += 1
            assert result.buffer_count is not None
            self.total_buffers += result.buffer_count
            self.buffer_counts[result.buffer_count] = (
                self.buffer_counts.get(result.buffer_count, 0) + 1
            )
        else:
            self.failed += 1
            key = (
                result.failure.error
                if result.failure is not None
                else "InfeasibleError"
            )
            self.failure_taxonomy_counts[key] = (
                self.failure_taxonomy_counts.get(key, 0) + 1
            )
        if result.stats is not None:
            if self.stats is None:
                self.stats = EngineStats()
            self.stats.merge_with(result.stats)

    # -- the aggregate views BatchReport delegates to ----------------------

    def failure_taxonomy(self) -> Dict[str, int]:
        return dict(sorted(self.failure_taxonomy_counts.items()))

    def buffer_histogram(self) -> Dict[int, int]:
        return dict(sorted(self.buffer_counts.items()))

    def latency_quantile(self, fraction: float) -> float:
        """Bucket-resolution quantile of per-net seconds (upper bound of
        the first bucket covering ``fraction`` of folds; +inf when the
        tail bucket holds it)."""
        total = self.latency.count(mode=self.mode)
        if total == 0:
            return 0.0
        target = fraction * total
        # cumulative bucket counts are what Histogram.observe maintains;
        # walk the exported samples for the first bound covering target.
        for sample_name, key, value in self.latency.samples():
            if not sample_name.endswith("_bucket"):
                continue
            labels = dict(key)
            if labels.get("mode") != self.mode:
                continue
            if value >= target and labels.get("le") != "+Inf":
                return float(labels["le"])
        return float("inf")
