"""Fleet-scale buffer optimization: many nets, one call.

:class:`BatchOptimizer` runs the DP engine over an iterable of nets —
pre-built :class:`~repro.tree.topology.RoutingTree`s /
:class:`~repro.workloads.GeneratedNet`s, or deferred
:class:`~repro.workloads.NetSpec`s materialized inside the workers — with
a pluggable executor (:mod:`repro.batch.executors`), and returns per-net
results plus an aggregate :class:`BatchReport`.

Design points:

* **Bit-identical to single-net calls.**  Each worker runs exactly
  :func:`optimize_net`, which wraps the same public entry point
  (:func:`repro.api.dp_result`, the facade behind the legacy
  ``buffopt_result`` / ``delay_opt_result`` shims) a caller would use
  directly; the differential harness asserts equality for every executor.
* **Observable.**  Passing a :class:`~repro.obs.Tracer` and/or
  :class:`~repro.obs.MetricsRegistry` to :class:`BatchOptimizer` emits
  batch/map/fallback spans, one event per completed net, and
  fleet-level counters/histograms (``buffopt batch --trace/--metrics``
  rides this); omitting both keeps every call site on the no-op path.
* **Deterministic under multiprocessing.**  Spec items carry explicit
  per-net seeds (:class:`~repro.workloads.NetSpec`), so worker-side
  generation never depends on inherited RNG state or scheduling order.
* **Telemetry.**  With ``BatchConfig(collect_stats=True)`` every result
  carries an :class:`~repro.core.stats.EngineStats` record and the report
  aggregates them, making ``prune="timing"`` vs ``prune="pareto"``
  ablations measurable at population scale.
* **Light on the wire.**  Workers return assignments and telemetry, not
  solutions-with-trees, unless ``keep_trees`` asks for reconstruction
  material; infeasible nets come back as recorded errors instead of
  poisoning the whole batch.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..api import dp_result, resolve_objective
from ..core.budget import RunBudget
from ..core.dp import ENGINE_CHOICES
from ..core.objective import Objective
from ..core.solution import BufferSolution
from ..core.stats import EngineStats
from ..errors import (
    BudgetExceededError,
    CertificateError,
    InfeasibleError,
    ReproError,
    TimeoutError,
    WorkloadError,
)
from ..library.buffers import BufferLibrary, BufferType, default_buffer_library
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..noise.coupling import CouplingModel
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..tree.segmenting import segment_tree
from ..tree.topology import RoutingTree
from ..units import UM
from ..workloads.generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    population_specs,
)
from .checkpoint import CheckpointJournal, load_checkpoint
from .executors import SerialExecutor
from .faults import FaultPlan
from .report import ReportFold
from .resilience import RetryPolicy, WorkItemFailure
from .sharding import SHARD_GLOB, ShardedCheckpoint, load_sharded_checkpoint

#: accepted item types for :meth:`BatchOptimizer.optimize`.
BatchItem = Union[RoutingTree, GeneratedNet, NetSpec]

MODES = ("buffopt", "delay")


class _FoldedResult:
    """Placeholder left in the results list once a streaming run has
    folded a result into its :class:`~repro.batch.report.ReportFold` and
    dropped the object (the whole point: constant memory at fleet
    scale).  Failed results are *parked* — left unfolded — until the
    fallback pass has had its final say, because a fold cannot be
    undone (histograms only increment)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<folded>"


_FOLDED = _FoldedResult()


@dataclass(frozen=True)
class BatchConfig:
    """Per-net optimization policy shared across the whole batch."""

    #: deprecated legacy mode string (``"buffopt"`` / ``"delay"``);
    #: prefer ``objective``.  After construction this always holds the
    #: resolved objective's mode, so fingerprints and telemetry labels
    #: keep reading a concrete string.
    mode: Optional[str] = None
    #: wire segmentation applied before the DP; ``None`` skips it (the
    #: trees are then expected to be segmented already).
    max_segment_length: Optional[float] = 500 * UM
    #: Lillis count cap forwarded to the engine (``None`` = uncapped).
    max_buffers: Optional[int] = None
    #: engine pruning rule: ``"timing"`` (paper) or ``"pareto"`` (ablation).
    prune: str = "timing"
    #: BuffOpt slack floor for the fewest-buffers selection.
    min_slack: float = 0.0
    #: collect :class:`~repro.core.stats.EngineStats` per net.
    collect_stats: bool = False
    #: ship each (segmented) tree back so solutions can be materialized.
    keep_trees: bool = True
    #: cooperative per-net wall-clock deadline in seconds (``None`` =
    #: unbounded); enforced inside the DP loop via
    #: :class:`~repro.core.budget.RunBudget`, recorded as a structured
    #: ``TimeoutError`` failure instead of aborting the batch.
    net_deadline: Optional[float] = None
    #: per-net generated-candidate budget, the engine's memory proxy
    #: (``None`` = uncapped); overruns become ``BudgetExceededError``
    #: failures.
    net_max_candidates: Optional[int] = None
    #: retry/fallback policy the optimizer applies after the map (and
    #: that callers typically share with a
    #: :class:`~repro.batch.ResilientExecutor`); ``None`` disables the
    #: fallback pass.
    retry: Optional[RetryPolicy] = None
    #: independently re-derive each selected outcome's claims with the
    #: certificate checker (:mod:`repro.verify`); a refuted claim becomes
    #: a structured ``CertificateError`` failure in the ``"certify"``
    #: phase instead of a silently wrong solution.
    certify: bool = False
    #: DP implementation: ``"reference"``, ``"fast"`` (bit-identical
    #: results; see :mod:`repro.core.fast_engine`), ``"lishi"``
    #: (semantically equivalent within float tolerance; see
    #: :mod:`repro.core.lishi_engine`), or ``"auto"`` (per-net pick).
    #: Excluded from the checkpoint fingerprint — the ``"auto"``
    #: resolution included, since it never reaches the options — so a
    #: resumed batch may switch engines.
    engine: str = "reference"
    #: the structured optimization objective; ``None`` resolves the
    #: legacy ``mode`` (or, with neither given, the default buffopt
    #: objective).  Legacy-shaped objectives keep the pre-objective
    #: checkpoint fingerprint schema so old journals still resume.
    objective: Optional[Objective] = None

    def __post_init__(self) -> None:
        if self.mode is not None and self.mode not in MODES:
            raise WorkloadError(
                f"unknown batch mode {self.mode!r} (expected one of {MODES})"
            )
        try:
            resolved = resolve_objective(
                self.mode,
                self.objective,
                min_slack=self.min_slack,
                owner="BatchConfig",
            )
        except ValueError as exc:
            raise WorkloadError(str(exc)) from None
        if resolved.selection == "pareto":
            raise WorkloadError(
                "a batch selects a single outcome per net; the 'pareto' "
                "selection returns a frontier — use "
                "dp_result(...).pareto_outcomes() directly"
            )
        object.__setattr__(self, "objective", resolved)
        object.__setattr__(self, "mode", resolved.mode)
        object.__setattr__(self, "min_slack", resolved.min_slack)
        if self.engine not in ENGINE_CHOICES:
            raise WorkloadError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {ENGINE_CHOICES})"
            )
        if (
            self.max_segment_length is not None
            and self.max_segment_length <= 0
        ):
            raise WorkloadError(
                "max_segment_length must be positive or None, got "
                f"{self.max_segment_length}"
            )
        if self.net_deadline is not None and self.net_deadline <= 0:
            raise WorkloadError(
                "net_deadline must be a positive number of seconds or "
                f"None, got {self.net_deadline}"
            )
        if self.net_max_candidates is not None and self.net_max_candidates < 1:
            raise WorkloadError(
                "net_max_candidates must be >= 1 or None, got "
                f"{self.net_max_candidates}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            # RetryPolicy itself rejects zero max-attempts and negative
            # backoffs; this catches the wrong-type case early.
            raise WorkloadError(
                f"retry must be a RetryPolicy or None, got {self.retry!r}"
            )

    def run_budget(self) -> Optional[RunBudget]:
        """A fresh per-run budget from this config (``None`` if unbounded).

        Budgets are stateful, so every net gets its own instance."""
        if self.net_deadline is None and self.net_max_candidates is None:
            return None
        return RunBudget(
            deadline_seconds=self.net_deadline,
            max_candidates=self.net_max_candidates,
        )


#: pipeline phases a failure can be attributed to: ``"generate"`` (spec
#: materialization), ``"optimize"`` (the DP / outcome selection),
#: ``"certify"`` (the independent certificate checker refuted a claim),
#: ``"worker"`` (an unexpected exception inside the worker),
#: ``"dispatch"`` (the worker process crashed or was killed by the
#: supervisor), ``"fallback"`` (the post-map fallback pass itself failed).
FAILURE_PHASES = (
    "generate", "optimize", "certify", "worker", "dispatch", "fallback"
)


@dataclass(frozen=True)
class FailureRecord:
    """Structured description of why (and how) one net failed.

    Failures are data, not exceptions: a fleet run aggregates these into
    a taxonomy (:meth:`BatchReport.failure_taxonomy`) instead of dying on
    the first pathological net.
    """

    #: exception class name (``"InfeasibleError"``, ``"TimeoutError"``,
    #: ``"BudgetExceededError"``, ``"WorkerCrashError"``, ...).
    error: str
    #: the human-readable message.
    message: str
    #: one of :data:`FAILURE_PHASES`.
    phase: str
    #: attempts consumed when the failure was recorded (>= 1).
    attempts: int = 1
    #: wall-clock seconds spent across those attempts.
    elapsed: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.error} in {self.phase} after {self.attempts} "
            f"attempt(s), {self.elapsed:.3f} s: {self.message}"
        )


@dataclass(frozen=True)
class NetResult:
    """One net's outcome, picklable and tree-free unless trees were kept.

    ``failure`` (mirrored by the legacy ``error`` message) records a
    structured :class:`FailureRecord` when the net did not produce a
    solution — infeasibility, budget/deadline overrun, worker crash —
    with ``ok`` False and the solution fields ``None``.  ``attempts``
    counts the tries the resilience layer spent on this net (1 on the
    happy path).
    """

    name: str
    sink_count: int
    node_count: int
    seconds: float
    buffer_count: Optional[int]
    slack: Optional[float]
    noise_feasible: Optional[bool]
    assignment: Optional[Mapping[str, BufferType]]
    candidates_generated: int
    candidates_kept_peak: int
    stats: Optional[EngineStats] = None
    error: Optional[str] = None
    tree: Optional[RoutingTree] = None
    attempts: int = 1
    failure: Optional[FailureRecord] = None
    #: ``True`` when the outcome passed independent certification,
    #: ``None`` when certification was not requested (excluded from
    #: :meth:`signature` — it re-derives, never changes, the solution).
    certified: Optional[bool] = None
    #: accumulated solution power (watts) when the batch ran under a
    #: power-aware objective; ``None`` on power-off runs (and in every
    #: journal written before power existed).
    power: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.failure is None

    def solution(self, tree: Optional[RoutingTree] = None) -> BufferSolution:
        """Materialize the :class:`BufferSolution` on ``tree`` (defaults
        to the result's own kept tree)."""
        if not self.ok:
            raise InfeasibleError(f"net {self.name!r}: {self.error}")
        target = tree if tree is not None else self.tree
        if target is None:
            raise WorkloadError(
                f"net {self.name!r}: no tree kept (keep_trees=False); "
                "pass the segmented tree explicitly"
            )
        assert self.assignment is not None
        return BufferSolution(target, dict(self.assignment))

    def signature(self) -> Tuple:
        """Deterministic comparison key (excludes wall-clock and trees).

        Two runs of the same batch — any executor, any process count —
        must produce equal signatures; the determinism tests assert this.
        """
        buffers = (
            None
            if self.assignment is None
            else tuple(
                (node, buffer.name)
                for node, buffer in sorted(self.assignment.items())
            )
        )
        return (
            self.name,
            self.sink_count,
            self.node_count,
            self.buffer_count,
            self.slack,
            self.noise_feasible,
            buffers,
            self.candidates_generated,
            self.candidates_kept_peak,
            self.error,
            self.power,
        )


@dataclass
class BatchReport:
    """Per-net results plus batch-level aggregates.

    Aggregates always come from a :class:`~repro.batch.report.ReportFold`
    — retained mode builds one from ``results`` on construction, a
    streaming run (``optimize(..., stream_report=True)``) passes the
    fold it maintained and leaves ``results`` empty.  That single code
    path is what makes a streamed report's :meth:`to_json` identical to
    the in-memory one.  Per-result views (:attr:`ok_results`,
    :meth:`signatures`, :meth:`solutions`) exist only in retained mode
    and raise :class:`~repro.errors.WorkloadError` on a streamed report.
    """

    results: List[NetResult]
    wall_seconds: float
    executor: str
    mode: str
    #: summed single-net optimization time (excludes dispatch/pickling).
    net_seconds: float = field(init=False)
    fold: Optional[ReportFold] = None

    def __post_init__(self) -> None:
        if self.fold is None:
            fold = ReportFold(mode=self.mode)
            for result in self.results:
                fold.fold(result)
            self.fold = fold
        self.net_seconds = self.fold.net_seconds

    @property
    def streamed(self) -> bool:
        """Whether per-net results were folded away instead of retained."""
        return len(self.results) != self.fold.nets

    def _require_retained(self, what: str) -> None:
        if self.streamed:
            raise WorkloadError(
                f"{what} requires retained per-net results; this report "
                "was streamed (stream_report=True) and only carries "
                "aggregates"
            )

    def __len__(self) -> int:
        return self.fold.nets

    @property
    def ok_results(self) -> List[NetResult]:
        self._require_retained("ok_results")
        return [r for r in self.results if r.ok]

    @property
    def failure_count(self) -> int:
        return self.fold.failed

    def failure_taxonomy(self) -> Dict[str, int]:
        """Failed-net counts keyed by error class name.

        Structured failures use their recorded class; legacy
        error-message-only results count as ``"InfeasibleError"`` (the
        only failure the pre-resilience layer could record).
        """
        return self.fold.failure_taxonomy()

    def retry_count(self) -> int:
        """Total attempts spent beyond each net's first try."""
        return self.fold.retries

    @property
    def certified_count(self) -> int:
        """Nets whose outcome passed independent certification."""
        return self.fold.certified

    def nets_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.fold.nets / self.wall_seconds

    def total_buffers(self) -> int:
        return self.fold.total_buffers

    def buffer_histogram(self) -> Dict[int, int]:
        return self.fold.buffer_histogram()

    def total_candidates(self) -> int:
        return self.fold.total_candidates

    def aggregate_stats(self) -> Optional[EngineStats]:
        """Every net's telemetry folded into one record (None if absent)."""
        return self.fold.stats

    def solutions(self) -> Dict[str, BufferSolution]:
        """Materialized solutions for every feasible net (needs kept trees)."""
        self._require_retained("solutions()")
        return {r.name: r.solution() for r in self.ok_results}

    def signatures(self) -> Tuple[Tuple, ...]:
        self._require_retained("signatures()")
        return tuple(r.signature() for r in self.results)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable fleet summary (``buffopt batch --json``)."""
        fold = self.fold
        return {
            "kind": "buffopt-batch-report",
            "mode": self.mode,
            "executor": self.executor,
            "nets": fold.nets,
            "ok": fold.ok,
            "failed": fold.failed,
            "failure_taxonomy": fold.failure_taxonomy(),
            "retries": fold.retries,
            "wall_seconds": self.wall_seconds,
            "net_seconds": self.net_seconds,
            "nets_per_second": self.nets_per_second(),
            "total_buffers": fold.total_buffers,
            "buffer_histogram": {
                str(count): nets
                for count, nets in fold.buffer_histogram().items()
            },
            "total_candidates": fold.total_candidates,
            "certified": fold.certified if fold.certified_seen else None,
        }

    def describe(self) -> str:
        fold = self.fold
        lines = [
            f"batch: {fold.nets} nets, mode={self.mode}, "
            f"executor={self.executor}",
            f"throughput: {self.nets_per_second():.2f} nets/s "
            f"({self.wall_seconds:.2f} s wall, {self.net_seconds:.2f} s "
            "summed net time)",
            f"buffers inserted: {fold.total_buffers} "
            f"(histogram {fold.buffer_histogram()})",
            f"candidates generated: {fold.total_candidates}",
        ]
        if fold.certified_seen:
            lines.append(
                f"certified: {fold.certified}/{fold.nets} "
                "nets passed independent re-derivation"
            )
        if fold.failed:
            taxonomy = ", ".join(
                f"{count} {error}"
                for error, count in fold.failure_taxonomy().items()
            )
            lines.append(f"failed nets: {fold.failed} ({taxonomy})")
        if fold.retries:
            lines.append(f"retries: {fold.retries} extra attempt(s)")
        if fold.stats is not None:
            lines.append("telemetry:")
            lines.extend(
                "  " + line for line in fold.stats.describe().splitlines()
            )
        return "\n".join(lines)


def optimize_net(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    config: BatchConfig,
    attempt: int = 1,
    site_prices: Optional[Mapping[str, float]] = None,
) -> NetResult:
    """Optimize one net under ``config`` — the exact per-item worker body.

    This is public on purpose: `BatchOptimizer(...).optimize([tree])` and
    `optimize_net(tree, ...)` run the same code path, which is what the
    differential harness pins down.

    ``site_prices`` (node name -> nonnegative Lagrangian price, see
    :attr:`~repro.core.dp.DPOptions.site_prices`) is how the fleet
    coordinator threads shared-site congestion costs through this exact
    worker body; the result's ``slack`` is then the *priced* slack.
    ``None``/empty is bit-identical to today's unpriced run.  Prices key
    on the *segmented* tree's node names — pass a pre-segmented tree
    (and ``max_segment_length=None``) when pricing segmentation nodes.

    Engine-level failures — infeasibility, a tripped
    :class:`~repro.core.budget.RunBudget` deadline or candidate budget —
    are *recorded* as structured :class:`FailureRecord`\\ s, never
    raised; unexpected exceptions still propagate (the resilience layer
    handles those at the process boundary).
    """
    start = perf_counter()
    budget = config.run_budget()
    if budget is not None:
        budget.start()  # the deadline covers segmentation too
    if config.max_segment_length is not None:
        work_tree = segment_tree(tree, config.max_segment_length)
    else:
        work_tree = tree
    failure: Optional[FailureRecord] = None
    outcome = None
    result = None
    objective = config.objective
    try:
        result = dp_result(
            work_tree,
            library,
            coupling if objective.noise_aware else None,
            objective=objective,
            max_buffers=config.max_buffers,
            prune=config.prune,
            collect_stats=config.collect_stats,
            budget=budget,
            engine=config.engine,
            site_prices=site_prices,
        )
        outcome = result.select(objective)
    except (InfeasibleError, BudgetExceededError, TimeoutError) as exc:
        failure = FailureRecord(
            error=type(exc).__name__,
            message=str(exc),
            phase="optimize",
            attempts=attempt,
            elapsed=perf_counter() - start,
        )
    certified: Optional[bool] = None
    if config.certify and outcome is not None:
        from ..library.power import default_power_model
        from ..verify.certificate import certify_or_raise, evaluate_assignment

        # DelayOpt runs the engine with silent coupling; certify against
        # the same physics the claims were computed under.
        cert_coupling = (
            coupling if objective.noise_aware else CouplingModel.silent()
        )
        # Power-aware objectives run under the default model (the same
        # resolution dp_result applied); the certifier re-derives the
        # power claim from it independently.
        power_model = default_power_model() if objective.power_aware else None
        # The certificate re-derives *physical* slack; a priced run's
        # claimed slack carries Lagrangian penalties on each sink path
        # (non-critical-branch penalties are absorbed by the min at
        # merges, so they cannot be added back arithmetically).  Derive
        # the physical claim with the same evaluator — the slack leg is
        # then tautological for priced runs, but the structural, noise,
        # and count checks keep their teeth; the fleet audit
        # (:func:`repro.fleet.verify.audit_fleet`) owns the independent
        # slack check for priced runs.
        claimed = outcome.slack
        if site_prices and any(
            ins.node in site_prices for ins in outcome.insertions
        ):
            claimed = evaluate_assignment(
                work_tree,
                {ins.node: ins.buffer for ins in outcome.insertions},
                cert_coupling,
            ).slack
        try:
            certify_or_raise(
                work_tree,
                {ins.node: ins.buffer for ins in outcome.insertions},
                cert_coupling,
                claimed_slack=claimed,
                claimed_noise_feasible=outcome.noise_feasible,
                claimed_buffer_count=outcome.buffer_count,
                require_noise=objective.noise_aware,
                claimed_power=(
                    outcome.power if power_model is not None else None
                ),
                power_model=power_model,
            )
            certified = True
        except CertificateError as exc:
            certified = False
            outcome = None
            failure = FailureRecord(
                error=type(exc).__name__,
                message=str(exc),
                phase="certify",
                attempts=attempt,
                elapsed=perf_counter() - start,
            )
    seconds = perf_counter() - start
    return NetResult(
        name=work_tree.name,
        sink_count=len(work_tree.sinks),
        node_count=sum(1 for _ in work_tree.nodes()),
        seconds=seconds,
        buffer_count=None if outcome is None else outcome.buffer_count,
        slack=None if outcome is None else outcome.slack,
        noise_feasible=None if outcome is None else outcome.noise_feasible,
        assignment=(
            None
            if outcome is None
            else {ins.node: ins.buffer for ins in outcome.insertions}
        ),
        candidates_generated=0 if result is None else result.candidates_generated,
        candidates_kept_peak=0 if result is None else result.candidates_kept_peak,
        stats=None if result is None else result.stats,
        error=None if failure is None else failure.message,
        tree=work_tree if config.keep_trees else None,
        attempts=attempt,
        failure=failure,
        certified=certified,
        power=(
            outcome.power
            if outcome is not None and objective.power_aware
            else None
        ),
    )


@dataclass(frozen=True)
class _WorkerSetup:
    """Everything a worker needs beyond the item itself (pickled once per
    dispatch chunk, not once per net)."""

    library: BufferLibrary
    coupling: CouplingModel
    config: BatchConfig
    workload: WorkloadConfig
    technology: Technology
    cells: CellLibrary
    faults: Optional[FaultPlan] = None


def item_identity(item: BatchItem) -> Tuple[str, int, int]:
    """``(name, sink_count, node_count)`` without materializing specs
    (a spec's node count is unknown until generation; reported as 0)."""
    if isinstance(item, NetSpec):
        return item.name, item.sink_count, 0
    tree = item.tree if isinstance(item, GeneratedNet) else item
    return tree.name, len(tree.sinks), sum(1 for _ in tree.nodes())


def failure_net_result(
    item: BatchItem, failure: FailureRecord
) -> NetResult:
    """A solution-less :class:`NetResult` carrying a structured failure."""
    name, sink_count, node_count = item_identity(item)
    return NetResult(
        name=name,
        sink_count=sink_count,
        node_count=node_count,
        seconds=failure.elapsed,
        buffer_count=None,
        slack=None,
        noise_feasible=None,
        assignment=None,
        candidates_generated=0,
        candidates_kept_peak=0,
        stats=None,
        error=failure.message,
        tree=None,
        attempts=failure.attempts,
        failure=failure,
    )


def _optimize_item(
    setup: _WorkerSetup, item: BatchItem, attempt: int = 1
) -> NetResult:
    """Module-level worker entry (must stay picklable for Pool.map).

    Fires any scheduled fault first (so injected raises/hangs/exits look
    like real worker misbehavior, upstream of all handling), records
    generation-phase :class:`~repro.errors.ReproError`\\ s as structured
    failures, and lets unexpected exceptions propagate to the executor —
    fail-fast on the plain executors, retried/quarantined under
    :class:`~repro.batch.ResilientExecutor`.
    """
    name, _, _ = item_identity(item)
    if setup.faults is not None:
        setup.faults.fire(name, attempt)
    start = perf_counter()
    if isinstance(item, NetSpec):
        try:
            item = generate_net_from_spec(
                item, setup.workload, setup.technology, setup.cells
            )
        except ReproError as exc:
            return failure_net_result(item, FailureRecord(
                error=type(exc).__name__,
                message=str(exc),
                phase="generate",
                attempts=attempt,
                elapsed=perf_counter() - start,
            ))
    tree = item.tree if isinstance(item, GeneratedNet) else item
    return optimize_net(
        tree, setup.library, setup.coupling, setup.config, attempt=attempt
    )


class BatchOptimizer:
    """Optimize a fleet of nets with one engine configuration.

    Parameters default to the paper's estimation-mode setup: the 11-buffer
    library, ``lambda = 0.7`` coupling, and the synthetic workload's
    technology/cells for spec materialization.
    """

    def __init__(
        self,
        library: Optional[BufferLibrary] = None,
        coupling: Optional[CouplingModel] = None,
        config: Optional[BatchConfig] = None,
        executor=None,
        technology: Optional[Technology] = None,
        cells: Optional[CellLibrary] = None,
        workload: Optional[WorkloadConfig] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.technology = technology or default_technology()
        self.library = library or default_buffer_library()
        self.coupling = coupling or CouplingModel.estimation_mode(
            self.technology
        )
        self.config = config or BatchConfig()
        self.executor = executor or SerialExecutor()
        self.workload = workload or WorkloadConfig()
        self.cells = cells or default_cell_library(
            noise_margin=self.workload.noise_margin
        )
        #: deterministic fault-injection schedule (tests / chaos drills).
        self.faults = faults
        #: span/event collector; ``None`` collapses to the no-op tracer.
        self.tracer = tracer or NULL_TRACER
        #: fleet metrics registry; ``None`` disables metering entirely.
        self.metrics = metrics

    def _setup(
        self, config: Optional[BatchConfig] = None
    ) -> _WorkerSetup:
        return _WorkerSetup(
            library=self.library,
            coupling=self.coupling,
            config=config or self.config,
            workload=self.workload,
            technology=self.technology,
            cells=self.cells,
            faults=self.faults,
        )

    def _fingerprint(self) -> Dict[str, Any]:
        """Solution-relevant configuration, for checkpoint compatibility.

        Legacy-shaped objectives (exactly what the old ``mode=`` strings
        meant) deliberately emit the pre-objective schema — no
        ``"objective"`` key — so journals checkpointed before the
        Objective API existed still resume; any other objective is part
        of the solution and must match exactly.
        """
        fingerprint = {
            "mode": self.config.mode,
            "max_segment_length": self.config.max_segment_length,
            "max_buffers": self.config.max_buffers,
            "prune": self.config.prune,
            "min_slack": self.config.min_slack,
            "certify": self.config.certify,
            "workload_seed": self.workload.seed,
            "workload_nets": self.workload.nets,
        }
        if not self.config.objective.is_legacy():
            fingerprint["objective"] = self.config.objective.to_json()
        return fingerprint

    def optimize(
        self,
        items: Iterable[BatchItem],
        checkpoint: Optional[Union[str, Path]] = None,
        resume: bool = False,
        checkpoint_fsync: bool = True,
        stream_report: bool = False,
        shards: Optional[int] = None,
    ) -> BatchReport:
        """Run the configured optimization over every item, in order.

        Items may mix trees, generated nets, and specs; specs are
        materialized inside the workers from their explicit seeds.

        ``checkpoint`` journals every completed :class:`NetResult`
        (success or structured failure) to a JSONL file, flushed per
        line; ``resume=True`` reloads that journal first and recomputes
        only the nets it does not cover.  Resumed results are placed at
        their original positions, so the report's order — and every
        recomputed net's signature — matches an uninterrupted run
        (resumed entries carry no trees or stats).
        ``checkpoint_fsync=False`` trades fsync-per-record durability
        for append throughput (see :class:`CheckpointJournal`).

        ``shards`` (with ``checkpoint`` naming a *directory*) splits the
        journal into that many independent shard files
        (:class:`~repro.batch.ShardedCheckpoint`); resume reads every
        shard file present regardless of the current count, so an N→M
        reshard between incarnations is legal and lands on the same
        results as a single-journal run.

        ``stream_report=True`` folds each result into a constant-memory
        :class:`~repro.batch.ReportFold` as it completes instead of
        retaining it — the memory posture for 10⁵–10⁶-net fleets.  The
        returned report's aggregates (``to_json``, taxonomy, histograms)
        are identical to a retained run's; only the per-result views
        (``solutions()``, ``signatures()``, ``ok_results``) are
        unavailable and raise.
        """
        units = list(items)
        if resume and checkpoint is None:
            raise WorkloadError("resume=True requires a checkpoint path")
        if shards is not None and checkpoint is None:
            raise WorkloadError(
                "shards requires a checkpoint directory to shard into"
            )
        fingerprint = self._fingerprint()
        done: Dict[str, NetResult] = {}
        journal: Optional[
            Union[CheckpointJournal, ShardedCheckpoint]
        ] = None
        if checkpoint is not None:
            path = Path(checkpoint)
            if shards is not None:
                has_shards = path.is_dir() and any(path.glob(SHARD_GLOB))
                if resume and has_shards:
                    recovery = load_sharded_checkpoint(
                        path, self.library, fingerprint, metrics=self.metrics
                    )
                    done = recovery.results
                    journal = ShardedCheckpoint.append_to(
                        path,
                        shards,
                        fingerprint,
                        fsync=checkpoint_fsync,
                        start_seq=recovery.max_seq,
                    )
                else:
                    journal = ShardedCheckpoint.create(
                        path, shards, fingerprint, fsync=checkpoint_fsync
                    )
            elif resume and path.exists():
                done = load_checkpoint(
                    path, self.library, fingerprint, metrics=self.metrics
                )
                journal = CheckpointJournal.append_to(
                    path, fingerprint, fsync=checkpoint_fsync
                )
            else:
                journal = CheckpointJournal.create(
                    path, fingerprint, fsync=checkpoint_fsync
                )

        fold = ReportFold(mode=self.config.mode) if stream_report else None
        names = [item_identity(unit)[0] for unit in units]
        results: List[Optional[NetResult]] = [
            done.get(name) for name in names
        ]
        pending = [
            index for index, name in enumerate(names) if name not in done
        ]
        if fold is not None:
            # Resumed successes fold immediately; resumed failures stay
            # parked so the fallback pass can still upgrade them.
            for index, result in enumerate(results):
                if result is not None and result.ok:
                    fold.fold(result)
                    results[index] = _FOLDED
        worker = functools.partial(_optimize_item, self._setup())
        executor_name = getattr(
            self.executor, "name", type(self.executor).__name__
        )
        # Adopt an un-wired observability-aware executor (the resilient
        # one) into this run's telemetry: per-attempt spans then nest
        # under batch.map and retry counters land in the same registry.
        if (
            getattr(self.executor, "tracer", None) is NULL_TRACER
            and self.tracer is not NULL_TRACER
        ):
            self.executor.tracer = self.tracer
        if (
            hasattr(self.executor, "metrics")
            and self.executor.metrics is None
        ):
            self.executor.metrics = self.metrics
        phase_seconds = {"map": 0.0, "fallback": 0.0}
        start = perf_counter()
        with self.tracer.span(
            "batch",
            nets=len(units),
            pending=len(pending),
            mode=self.config.mode,
            engine=self.config.engine,
            executor=executor_name,
        ):
            try:
                if pending:
                    with self.tracer.span("batch.map", nets=len(pending)):
                        t0 = perf_counter()
                        self._run_pending(
                            worker, units, pending, results, journal, fold
                        )
                        phase_seconds["map"] = perf_counter() - t0
                with self.tracer.span("batch.fallback"):
                    t0 = perf_counter()
                    self._fallback_pass(units, results, journal)
                    phase_seconds["fallback"] = perf_counter() - t0
            finally:
                if journal is not None:
                    journal.close()
        wall = perf_counter() - start
        # Overhead closes the accounting: checkpoint/journal glue and
        # dispatch bookkeeping, so the exported phases sum to the wall.
        phase_seconds["overhead"] = max(
            0.0, wall - phase_seconds["map"] - phase_seconds["fallback"]
        )
        if self.metrics is not None:
            self.metrics.gauge(
                "buffopt_batch_wall_seconds",
                "total wall-clock of the last batch run",
            ).set(wall, mode=self.config.mode, executor=executor_name)
            phase_gauge = self.metrics.gauge(
                "buffopt_batch_phase_seconds",
                "wall-clock of the last batch run, split by phase "
                "(phases sum to buffopt_batch_wall_seconds)",
            )
            for phase, seconds in phase_seconds.items():
                phase_gauge.set(seconds, phase=phase)
        assert all(result is not None for result in results)
        if fold is not None:
            # Fold the parked failures — now final, fallback included.
            for result in results:
                if result is not _FOLDED:
                    fold.fold(result)
            return BatchReport(
                results=[],
                wall_seconds=wall,
                executor=executor_name,
                mode=self.config.mode,
                fold=fold,
            )
        return BatchReport(
            results=results,
            wall_seconds=wall,
            executor=executor_name,
            mode=self.config.mode,
        )

    def _run_pending(
        self,
        worker,
        units: List[BatchItem],
        pending: List[int],
        results: List[Optional[NetResult]],
        journal: Optional[Union[CheckpointJournal, ShardedCheckpoint]],
        fold: Optional[ReportFold] = None,
    ) -> None:
        """Map the outstanding items, recording (and journaling) each
        result as it completes; executor sentinels become failures.
        With a streaming ``fold``, successes are folded and dropped on
        arrival; failures are parked for the fallback pass."""

        def record(sub_index: int, value) -> None:
            index = pending[sub_index]
            if isinstance(value, WorkItemFailure):
                value = self._wrap_sentinel(units[index], value)
            results[index] = value
            if journal is not None:
                journal.append(value)
            self._observe_result(value)
            if fold is not None and value.ok:
                fold.fold(value)
                results[index] = _FOLDED

        payload = [units[index] for index in pending]
        if "on_result" in inspect.signature(self.executor.map).parameters:
            self.executor.map(worker, payload, on_result=record)
        else:
            # Third-party executor without streaming: journal afterwards.
            for sub_index, value in enumerate(
                self.executor.map(worker, payload)
            ):
                record(sub_index, value)

    def _observe_result(
        self, result: NetResult, phase: str = "map"
    ) -> None:
        """One completed net: a trace event plus fleet-level metrics.

        Collapses to an early return when neither a tracer nor a
        registry was configured, keeping the unobserved path free."""
        metrics = self.metrics
        if self.tracer is NULL_TRACER and metrics is None:
            return
        status = (
            "ok" if result.ok
            else result.failure.error if result.failure is not None
            else "error"
        )
        self.tracer.event(
            "batch.net",
            net=result.name,
            phase=phase,
            status=status,
            seconds=result.seconds,
            attempts=result.attempts,
            buffer_count=result.buffer_count,
            candidates_generated=result.candidates_generated,
        )
        if metrics is None:
            return
        metrics.counter(
            "buffopt_nets_total",
            "nets completed, by mode and terminal status",
        ).inc(mode=self.config.mode, status=status)
        metrics.histogram(
            "buffopt_net_seconds",
            "single-net optimization wall-clock",
        ).observe(result.seconds, mode=self.config.mode)
        metrics.counter(
            "buffopt_candidates_generated_total",
            "DP candidates generated across the fleet",
        ).inc(result.candidates_generated)
        if result.attempts > 1:
            metrics.counter(
                "buffopt_net_retries_total",
                "extra attempts spent beyond each net's first try",
            ).inc(result.attempts - 1)
        if result.stats is not None:
            pressure = metrics.gauge(
                "buffopt_budget_pressure_peak",
                "peak budget pressure across the fleet (fraction of "
                "the candidate budget / deadline consumed)",
            )
            pressure.set_max(
                result.stats.budget_candidate_pressure, resource="candidates"
            )
            pressure.set_max(
                result.stats.budget_time_pressure, resource="deadline"
            )

    @staticmethod
    def _wrap_sentinel(
        item: BatchItem, sentinel: WorkItemFailure
    ) -> NetResult:
        """Turn an executor-side failure sentinel into a structured
        :class:`NetResult` (crash/hang -> ``dispatch`` phase, worker
        exception -> ``worker`` phase)."""
        phase = "worker" if sentinel.kind == "error" else "dispatch"
        error = (
            "WorkerCrashError" if sentinel.kind == "crash"
            else "TimeoutError" if sentinel.kind == "hang"
            else sentinel.error
        )
        return failure_net_result(item, FailureRecord(
            error=error,
            message=sentinel.message,
            phase=phase,
            attempts=sentinel.attempts,
            elapsed=sentinel.elapsed,
        ))

    def _fallback_pass(
        self,
        units: List[BatchItem],
        results: List[Optional[NetResult]],
        journal: Optional[Union[CheckpointJournal, ShardedCheckpoint]],
    ) -> None:
        """Last-resort recovery after the map, per ``config.retry.fallback``.

        ``"serial"`` re-runs crash/hang/worker-exception failures inline
        in the calling process (useful when the pool itself — not the
        net — was the problem; beware that a net which genuinely kills
        its process will now do so here).  ``"aggressive"`` re-runs
        budget- and deadline-failures with a degraded engine
        configuration that slashes the candidate population: the
        ``"pareto"`` rule falls back to ``"timing"``; already-``timing``
        runs fall back to a single-buffer count cap.
        """
        retry = self.config.retry
        if retry is None or retry.fallback is None:
            return
        if retry.fallback == "serial":
            eligible_phases = ("worker", "dispatch")
            setup = self._setup()
        else:  # "aggressive"
            eligible_phases = ("optimize",)
            degraded = replace(
                self.config,
                prune="timing",
                max_buffers=(
                    1 if self.config.prune == "timing"
                    else self.config.max_buffers
                ),
                net_max_candidates=(
                    retry.fallback_max_candidates
                    or self.config.net_max_candidates
                ),
            )
            setup = self._setup(degraded)
        for index, result in enumerate(results):
            if result is None or result is _FOLDED:
                continue  # streaming already folded this success away
            if result.failure is None:
                continue
            failure = result.failure
            if failure.phase not in eligible_phases:
                continue
            if retry.fallback == "aggressive" and failure.error not in (
                "BudgetExceededError", "TimeoutError"
            ):
                continue
            attempt = result.attempts + 1
            try:
                replacement = _optimize_item(
                    setup, units[index], attempt=attempt
                )
            except Exception as exc:  # noqa: BLE001 - keep the fleet alive
                replacement = failure_net_result(units[index], FailureRecord(
                    error=type(exc).__name__,
                    message=str(exc),
                    phase="fallback",
                    attempts=attempt,
                    elapsed=failure.elapsed,
                ))
            results[index] = replacement
            if journal is not None:
                journal.append(replacement)
            self._observe_result(replacement, phase="fallback")

    def optimize_specs(
        self,
        specs: Optional[Sequence[NetSpec]] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        resume: bool = False,
        checkpoint_fsync: bool = True,
        stream_report: bool = False,
        shards: Optional[int] = None,
    ) -> BatchReport:
        """Optimize the workload population from deferred specs.

        ``specs`` defaults to :func:`~repro.workloads.population_specs` of
        this optimizer's workload config — generation then happens inside
        the workers, seeded explicitly per net.  ``checkpoint`` /
        ``resume`` / ``checkpoint_fsync`` / ``stream_report`` / ``shards``
        behave as in :meth:`optimize`.
        """
        if specs is None:
            specs = population_specs(self.workload)
        return self.optimize(
            specs,
            checkpoint=checkpoint,
            resume=resume,
            checkpoint_fsync=checkpoint_fsync,
            stream_report=stream_report,
            shards=shards,
        )
