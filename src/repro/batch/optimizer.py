"""Fleet-scale buffer optimization: many nets, one call.

:class:`BatchOptimizer` runs the DP engine over an iterable of nets —
pre-built :class:`~repro.tree.topology.RoutingTree`s /
:class:`~repro.workloads.GeneratedNet`s, or deferred
:class:`~repro.workloads.NetSpec`s materialized inside the workers — with
a pluggable executor (:mod:`repro.batch.executors`), and returns per-net
results plus an aggregate :class:`BatchReport`.

Design points:

* **Bit-identical to single-net calls.**  Each worker runs exactly
  :func:`optimize_net`, which wraps the same public entry points
  (:func:`~repro.core.noise_delay.buffopt_result` /
  :func:`~repro.core.van_ginneken.delay_opt_result`) a caller would use
  directly; the differential harness asserts equality for every executor.
* **Deterministic under multiprocessing.**  Spec items carry explicit
  per-net seeds (:class:`~repro.workloads.NetSpec`), so worker-side
  generation never depends on inherited RNG state or scheduling order.
* **Telemetry.**  With ``BatchConfig(collect_stats=True)`` every result
  carries an :class:`~repro.core.stats.EngineStats` record and the report
  aggregates them, making ``prune="timing"`` vs ``prune="pareto"``
  ablations measurable at population scale.
* **Light on the wire.**  Workers return assignments and telemetry, not
  solutions-with-trees, unless ``keep_trees`` asks for reconstruction
  material; infeasible nets come back as recorded errors instead of
  poisoning the whole batch.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.noise_delay import buffopt_result
from ..core.solution import BufferSolution
from ..core.stats import EngineStats
from ..core.van_ginneken import delay_opt_result
from ..errors import InfeasibleError, WorkloadError
from ..library.buffers import BufferLibrary, BufferType, default_buffer_library
from ..library.cells import CellLibrary, default_cell_library
from ..library.technology import Technology, default_technology
from ..noise.coupling import CouplingModel
from ..tree.segmenting import segment_tree
from ..tree.topology import RoutingTree
from ..units import UM
from ..workloads.generator import (
    GeneratedNet,
    NetSpec,
    WorkloadConfig,
    generate_net_from_spec,
    population_specs,
)
from .executors import SerialExecutor

#: accepted item types for :meth:`BatchOptimizer.optimize`.
BatchItem = Union[RoutingTree, GeneratedNet, NetSpec]

MODES = ("buffopt", "delay")


@dataclass(frozen=True)
class BatchConfig:
    """Per-net optimization policy shared across the whole batch."""

    #: ``"buffopt"`` — Problem 3 (fewest buffers meeting noise + timing);
    #: ``"delay"`` — DelayOpt (maximum slack, noise ignored).
    mode: str = "buffopt"
    #: wire segmentation applied before the DP; ``None`` skips it (the
    #: trees are then expected to be segmented already).
    max_segment_length: Optional[float] = 500 * UM
    #: Lillis count cap forwarded to the engine (``None`` = uncapped).
    max_buffers: Optional[int] = None
    #: engine pruning rule: ``"timing"`` (paper) or ``"pareto"`` (ablation).
    prune: str = "timing"
    #: BuffOpt slack floor for the fewest-buffers selection.
    min_slack: float = 0.0
    #: collect :class:`~repro.core.stats.EngineStats` per net.
    collect_stats: bool = False
    #: ship each (segmented) tree back so solutions can be materialized.
    keep_trees: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise WorkloadError(
                f"unknown batch mode {self.mode!r} (expected one of {MODES})"
            )
        if (
            self.max_segment_length is not None
            and self.max_segment_length <= 0
        ):
            raise WorkloadError(
                "max_segment_length must be positive or None, got "
                f"{self.max_segment_length}"
            )


@dataclass(frozen=True)
class NetResult:
    """One net's outcome, picklable and tree-free unless trees were kept.

    ``error`` records an :class:`~repro.errors.InfeasibleError` message
    when no legal buffering exists (``ok`` is then False and the solution
    fields are ``None``).
    """

    name: str
    sink_count: int
    node_count: int
    seconds: float
    buffer_count: Optional[int]
    slack: Optional[float]
    noise_feasible: Optional[bool]
    assignment: Optional[Mapping[str, BufferType]]
    candidates_generated: int
    candidates_kept_peak: int
    stats: Optional[EngineStats] = None
    error: Optional[str] = None
    tree: Optional[RoutingTree] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def solution(self, tree: Optional[RoutingTree] = None) -> BufferSolution:
        """Materialize the :class:`BufferSolution` on ``tree`` (defaults
        to the result's own kept tree)."""
        if not self.ok:
            raise InfeasibleError(f"net {self.name!r}: {self.error}")
        target = tree if tree is not None else self.tree
        if target is None:
            raise WorkloadError(
                f"net {self.name!r}: no tree kept (keep_trees=False); "
                "pass the segmented tree explicitly"
            )
        assert self.assignment is not None
        return BufferSolution(target, dict(self.assignment))

    def signature(self) -> Tuple:
        """Deterministic comparison key (excludes wall-clock and trees).

        Two runs of the same batch — any executor, any process count —
        must produce equal signatures; the determinism tests assert this.
        """
        buffers = (
            None
            if self.assignment is None
            else tuple(
                (node, buffer.name)
                for node, buffer in sorted(self.assignment.items())
            )
        )
        return (
            self.name,
            self.sink_count,
            self.node_count,
            self.buffer_count,
            self.slack,
            self.noise_feasible,
            buffers,
            self.candidates_generated,
            self.candidates_kept_peak,
            self.error,
        )


@dataclass
class BatchReport:
    """Per-net results plus batch-level aggregates."""

    results: List[NetResult]
    wall_seconds: float
    executor: str
    mode: str
    #: summed single-net optimization time (excludes dispatch/pickling).
    net_seconds: float = field(init=False)

    def __post_init__(self) -> None:
        self.net_seconds = sum(r.seconds for r in self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok_results(self) -> List[NetResult]:
        return [r for r in self.results if r.ok]

    @property
    def failure_count(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def nets_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return float("inf")
        return len(self.results) / self.wall_seconds

    def total_buffers(self) -> int:
        return sum(r.buffer_count or 0 for r in self.ok_results)

    def buffer_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for result in self.ok_results:
            assert result.buffer_count is not None
            histogram[result.buffer_count] = (
                histogram.get(result.buffer_count, 0) + 1
            )
        return dict(sorted(histogram.items()))

    def total_candidates(self) -> int:
        return sum(r.candidates_generated for r in self.results)

    def aggregate_stats(self) -> Optional[EngineStats]:
        """Fold every net's telemetry into one record (None if absent)."""
        collected = [r.stats for r in self.results if r.stats is not None]
        if not collected:
            return None
        total = EngineStats()
        for stats in collected:
            total.merge_with(stats)
        return total

    def solutions(self) -> Dict[str, BufferSolution]:
        """Materialized solutions for every feasible net (needs kept trees)."""
        return {r.name: r.solution() for r in self.ok_results}

    def signatures(self) -> Tuple[Tuple, ...]:
        return tuple(r.signature() for r in self.results)

    def describe(self) -> str:
        lines = [
            f"batch: {len(self.results)} nets, mode={self.mode}, "
            f"executor={self.executor}",
            f"throughput: {self.nets_per_second():.2f} nets/s "
            f"({self.wall_seconds:.2f} s wall, {self.net_seconds:.2f} s "
            "summed net time)",
            f"buffers inserted: {self.total_buffers()} "
            f"(histogram {self.buffer_histogram()})",
            f"candidates generated: {self.total_candidates()}",
        ]
        if self.failure_count:
            lines.append(f"infeasible nets: {self.failure_count}")
        stats = self.aggregate_stats()
        if stats is not None:
            lines.append("telemetry:")
            lines.extend("  " + line for line in stats.describe().splitlines())
        return "\n".join(lines)


def optimize_net(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: CouplingModel,
    config: BatchConfig,
) -> NetResult:
    """Optimize one net under ``config`` — the exact per-item worker body.

    This is public on purpose: `BatchOptimizer(...).optimize([tree])` and
    `optimize_net(tree, ...)` run the same code path, which is what the
    differential harness pins down.
    """
    start = perf_counter()
    if config.max_segment_length is not None:
        work_tree = segment_tree(tree, config.max_segment_length)
    else:
        work_tree = tree
    error: Optional[str] = None
    outcome = None
    result = None
    try:
        if config.mode == "buffopt":
            result = buffopt_result(
                work_tree,
                library,
                coupling,
                max_buffers=config.max_buffers,
                prune=config.prune,
                collect_stats=config.collect_stats,
            )
            outcome = result.fewest_buffers(min_slack=config.min_slack)
        else:
            result = delay_opt_result(
                work_tree,
                library,
                max_buffers=config.max_buffers,
                prune=config.prune,
                collect_stats=config.collect_stats,
            )
            outcome = result.best(require_noise=False)
    except InfeasibleError as exc:
        error = str(exc)
    seconds = perf_counter() - start
    return NetResult(
        name=work_tree.name,
        sink_count=len(work_tree.sinks),
        node_count=sum(1 for _ in work_tree.nodes()),
        seconds=seconds,
        buffer_count=None if outcome is None else outcome.buffer_count,
        slack=None if outcome is None else outcome.slack,
        noise_feasible=None if outcome is None else outcome.noise_feasible,
        assignment=(
            None
            if outcome is None
            else {ins.node: ins.buffer for ins in outcome.insertions}
        ),
        candidates_generated=0 if result is None else result.candidates_generated,
        candidates_kept_peak=0 if result is None else result.candidates_kept_peak,
        stats=None if result is None else result.stats,
        error=error,
        tree=work_tree if config.keep_trees else None,
    )


@dataclass(frozen=True)
class _WorkerSetup:
    """Everything a worker needs beyond the item itself (pickled once per
    dispatch chunk, not once per net)."""

    library: BufferLibrary
    coupling: CouplingModel
    config: BatchConfig
    workload: WorkloadConfig
    technology: Technology
    cells: CellLibrary


def _optimize_item(setup: _WorkerSetup, item: BatchItem) -> NetResult:
    """Module-level worker entry (must stay picklable for Pool.map)."""
    if isinstance(item, NetSpec):
        item = generate_net_from_spec(
            item, setup.workload, setup.technology, setup.cells
        )
    tree = item.tree if isinstance(item, GeneratedNet) else item
    return optimize_net(tree, setup.library, setup.coupling, setup.config)


class BatchOptimizer:
    """Optimize a fleet of nets with one engine configuration.

    Parameters default to the paper's estimation-mode setup: the 11-buffer
    library, ``lambda = 0.7`` coupling, and the synthetic workload's
    technology/cells for spec materialization.
    """

    def __init__(
        self,
        library: Optional[BufferLibrary] = None,
        coupling: Optional[CouplingModel] = None,
        config: Optional[BatchConfig] = None,
        executor=None,
        technology: Optional[Technology] = None,
        cells: Optional[CellLibrary] = None,
        workload: Optional[WorkloadConfig] = None,
    ):
        self.technology = technology or default_technology()
        self.library = library or default_buffer_library()
        self.coupling = coupling or CouplingModel.estimation_mode(
            self.technology
        )
        self.config = config or BatchConfig()
        self.executor = executor or SerialExecutor()
        self.workload = workload or WorkloadConfig()
        self.cells = cells or default_cell_library(
            noise_margin=self.workload.noise_margin
        )

    def _setup(self) -> _WorkerSetup:
        return _WorkerSetup(
            library=self.library,
            coupling=self.coupling,
            config=self.config,
            workload=self.workload,
            technology=self.technology,
            cells=self.cells,
        )

    def optimize(self, items: Iterable[BatchItem]) -> BatchReport:
        """Run the configured optimization over every item, in order.

        Items may mix trees, generated nets, and specs; specs are
        materialized inside the workers from their explicit seeds.
        """
        units = list(items)
        worker = functools.partial(_optimize_item, self._setup())
        start = perf_counter()
        results = self.executor.map(worker, units)
        wall = perf_counter() - start
        return BatchReport(
            results=results,
            wall_seconds=wall,
            executor=getattr(self.executor, "name", type(self.executor).__name__),
            mode=self.config.mode,
        )

    def optimize_specs(
        self, specs: Optional[Sequence[NetSpec]] = None
    ) -> BatchReport:
        """Optimize the workload population from deferred specs.

        ``specs`` defaults to :func:`~repro.workloads.population_specs` of
        this optimizer's workload config — generation then happens inside
        the workers, seeded explicitly per net.
        """
        if specs is None:
            specs = population_specs(self.workload)
        return self.optimize(specs)
