"""Checkpoint/resume for batch runs: a JSONL journal of finished nets.

A population run over millions of nets will be interrupted — preemption,
OOM, a deploy — and recomputing everything is the one cost a resilient
engine must not pay.  ``BatchOptimizer.optimize(..., checkpoint=path)``
appends one JSON line per completed :class:`~repro.batch.NetResult`
(success *or* structured failure), flushed per line so a ``kill -9``
loses at most the nets in flight; ``resume=True`` reloads the journal
and recomputes only the missing nets.

Format: line 1 is a header carrying a version and a *fingerprint* of the
solution-relevant configuration (mode, segmentation, count cap, pruning
rule, slack floor, workload seed).  Resuming under a different
fingerprint would silently mix incompatible solutions, so it raises
:class:`~repro.errors.WorkloadError` instead.  Every further line is one
result keyed by net name; if a net appears twice (e.g. a fallback pass
upgraded a failure), the *last* line wins.  A torn trailing line —  the
writer was killed mid-``write`` — is ignored on load.

Journaled results are deliberately lean: buffer assignments are stored
by buffer *name* and rebound against the optimizer's library on load;
trees and :class:`~repro.core.stats.EngineStats` are not persisted
(signatures — the determinism currency of the batch layer — survive the
round trip bit-identically, which the checkpoint tests pin down).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from ..errors import WorkloadError
from ..library.buffers import BufferLibrary

#: bump when the journal schema changes incompatibly.
CHECKPOINT_VERSION = 1


def result_to_json(result) -> Dict[str, Any]:
    """Plain-JSON view of a :class:`~repro.batch.NetResult` (no trees/stats)."""
    failure = None if result.failure is None else asdict(result.failure)
    assignment = (
        None
        if result.assignment is None
        else {node: buffer.name for node, buffer in result.assignment.items()}
    )
    return {
        "kind": "result",
        "name": result.name,
        "sink_count": result.sink_count,
        "node_count": result.node_count,
        "seconds": result.seconds,
        "buffer_count": result.buffer_count,
        "slack": result.slack,
        "noise_feasible": result.noise_feasible,
        "assignment": assignment,
        "candidates_generated": result.candidates_generated,
        "candidates_kept_peak": result.candidates_kept_peak,
        "error": result.error,
        "attempts": result.attempts,
        "failure": failure,
        "certified": result.certified,
    }


def result_from_json(record: Dict[str, Any], library: BufferLibrary):
    """Rebuild a :class:`~repro.batch.NetResult` journaled by
    :func:`result_to_json`, rebinding buffer names against ``library``."""
    from .optimizer import FailureRecord, NetResult  # circular at import time

    by_name = {buffer.name: buffer for buffer in library}
    assignment = record["assignment"]
    if assignment is not None:
        try:
            assignment = {
                node: by_name[name] for node, name in assignment.items()
            }
        except KeyError as exc:
            raise WorkloadError(
                f"checkpoint for net {record['name']!r} references buffer "
                f"{exc.args[0]!r}, which this library does not define"
            ) from None
    failure = record.get("failure")
    if failure is not None:
        failure = FailureRecord(**failure)
    return NetResult(
        name=record["name"],
        sink_count=record["sink_count"],
        node_count=record["node_count"],
        seconds=record["seconds"],
        buffer_count=record["buffer_count"],
        slack=record["slack"],
        noise_feasible=record["noise_feasible"],
        assignment=assignment,
        candidates_generated=record["candidates_generated"],
        candidates_kept_peak=record["candidates_kept_peak"],
        error=record["error"],
        attempts=record.get("attempts", 1),
        failure=failure,
        certified=record.get("certified"),
    )


class CheckpointJournal:
    """Append-only JSONL writer, flushed (and fsync-able) per record."""

    def __init__(self, path: Union[str, Path], handle: TextIO):
        self.path = Path(path)
        self._handle = handle

    @classmethod
    def create(
        cls, path: Union[str, Path], fingerprint: Dict[str, Any]
    ) -> "CheckpointJournal":
        """Start a fresh journal (truncating any previous file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("w", encoding="utf-8")
        journal = cls(path, handle)
        journal._write({
            "kind": "header",
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
        })
        return journal

    @classmethod
    def append_to(
        cls, path: Union[str, Path], fingerprint: Dict[str, Any]
    ) -> "CheckpointJournal":
        """Reopen an existing journal for appending (header must match)."""
        path = Path(path)
        header = read_checkpoint_header(path)
        check_fingerprint(header["fingerprint"], fingerprint, path)
        return cls(path, path.open("a", encoding="utf-8"))

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, result) -> None:
        self._write(result_to_json(result))

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_checkpoint_header(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise WorkloadError(
            f"checkpoint {path} has no readable header line"
        ) from None
    if header.get("kind") != "header":
        raise WorkloadError(
            f"checkpoint {path} does not start with a header record"
        )
    if header.get("version") != CHECKPOINT_VERSION:
        raise WorkloadError(
            f"checkpoint {path} is version {header.get('version')!r}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    return header


def check_fingerprint(
    found: Dict[str, Any], expected: Dict[str, Any], path: Union[str, Path]
) -> None:
    if found != expected:
        differing = sorted(
            key
            for key in set(found) | set(expected)
            if found.get(key) != expected.get(key)
        )
        raise WorkloadError(
            f"checkpoint {path} was written under a different batch "
            f"configuration (differs on: {', '.join(differing)}); resuming "
            "would mix incompatible solutions — delete the checkpoint or "
            "rerun with the original configuration"
        )


def load_checkpoint(
    path: Union[str, Path],
    library: BufferLibrary,
    fingerprint: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Load completed results keyed by net name (last line per net wins).

    ``fingerprint`` (when given) must match the journal header.  Torn
    trailing lines are skipped; torn *interior* lines raise, because
    they indicate corruption rather than an interrupted write.
    """
    path = Path(path)
    header = read_checkpoint_header(path)
    if fingerprint is not None:
        check_fingerprint(header["fingerprint"], fingerprint, path)
    results: Dict[str, Any] = {}
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn final line: the writer was killed mid-write
            raise WorkloadError(
                f"checkpoint {path} line {number} is corrupt"
            ) from None
        if record.get("kind") != "result":
            raise WorkloadError(
                f"checkpoint {path} line {number} has unexpected kind "
                f"{record.get('kind')!r}"
            )
        results[record["name"]] = result_from_json(record, library)
    return results
