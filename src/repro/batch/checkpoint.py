"""Checkpoint/resume for batch runs: a JSONL journal of finished nets.

A population run over millions of nets will be interrupted — preemption,
OOM, a deploy — and recomputing everything is the one cost a resilient
engine must not pay.  ``BatchOptimizer.optimize(..., checkpoint=path)``
appends one JSON line per completed :class:`~repro.batch.NetResult`
(success *or* structured failure), flushed per line so a ``kill -9``
loses at most the nets in flight; ``resume=True`` reloads the journal
and recomputes only the missing nets.

Format: line 1 is a header carrying a version and a *fingerprint* of the
solution-relevant configuration (mode, segmentation, count cap, pruning
rule, slack floor, workload seed).  Resuming under a different
fingerprint would silently mix incompatible solutions, so it raises
:class:`~repro.errors.WorkloadError` instead.  Every further line is one
result keyed by net name; if a net appears twice (e.g. a fallback pass
upgraded a failure), the *last* line wins.  A torn trailing line —  the
writer was killed mid-``write`` — is ignored on load.

Journaled results are deliberately lean: buffer assignments are stored
by buffer *name* and rebound against the optimizer's library on load;
trees and :class:`~repro.core.stats.EngineStats` are not persisted
(signatures — the determinism currency of the batch layer — survive the
round trip bit-identically, which the checkpoint tests pin down).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from ..errors import WorkloadError
from ..library.buffers import BufferLibrary

#: bump when the journal schema changes incompatibly.
CHECKPOINT_VERSION = 1

#: counter incremented (on an optional obs registry) whenever a torn
#: trailing line is recovered from — the observable trace of the
#: kill-mid-write path actually firing.  Shared by the batch checkpoint
#: and the service journal, distinguished by the ``journal`` label.
TORN_TAIL_COUNTER = "buffopt_checkpoint_torn_tail_recovered_total"


def record_torn_tail(metrics, journal: str) -> None:
    """Count one recovered torn tail on ``metrics`` (no-op when None)."""
    if metrics is None:
        return
    metrics.counter(
        TORN_TAIL_COUNTER,
        "torn trailing journal lines skipped during recovery",
    ).inc(journal=journal)


def repair_torn_tail(path: Union[str, Path], lines: List[str]) -> None:
    """Truncate a journal's torn final line off the file.

    Recovery *tolerating* the tear is not enough when the journal will
    be appended to afterwards: the next record would concatenate onto
    the unterminated fragment, turning an interrupted write into
    interior corruption on the incarnation after next.  ``lines`` is
    the full ``readlines()`` content whose last entry is the torn
    fragment.  A read-only file (e.g. an archived CI artifact being
    inspected) is left alone.
    """
    keep = sum(len(line.encode("utf-8")) for line in lines[:-1])
    try:
        with open(path, "rb+") as handle:
            handle.truncate(keep)
    except OSError:
        pass


class JournalReader:
    """Torn-tail-tolerant JSONL body reader shared by every journal.

    The batch checkpoint, the sharded fleet checkpoint, and the service
    journal all speak the same dialect: one header line, then one JSON
    record per line, where a torn *final* line means an interrupted
    write (tolerated, counted, truncated off) and a torn *interior* line
    means corruption (refused).  This class is that dialect's reader;
    the callers keep their own header validation and record semantics.

    ``error`` is the exception class corruption raises
    (:class:`~repro.errors.WorkloadError` for batch journals,
    ``ServiceError`` for service ones); ``journal`` labels the shared
    torn-tail counter.
    """

    def __init__(
        self,
        path: Union[str, Path],
        metrics=None,
        journal: str = "batch",
        error: type = WorkloadError,
    ):
        self.path = Path(path)
        self.metrics = metrics
        self.journal = journal
        self.error = error
        #: set when a torn final line was skipped (and truncated off).
        self.torn_tail = False

    def records(self):
        """Yield ``(line_number, record)`` for every body record."""
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    # torn final line: the writer was killed mid-write
                    record_torn_tail(self.metrics, journal=self.journal)
                    repair_torn_tail(self.path, lines)
                    self.torn_tail = True
                    return
                raise self.error(
                    f"journal {self.path} line {number} is corrupt"
                ) from None
            yield number, record


def result_to_json(result) -> Dict[str, Any]:
    """Plain-JSON view of a :class:`~repro.batch.NetResult` (no trees/stats)."""
    failure = None if result.failure is None else asdict(result.failure)
    assignment = (
        None
        if result.assignment is None
        else {node: buffer.name for node, buffer in result.assignment.items()}
    )
    record = {
        "kind": "result",
        "name": result.name,
        "sink_count": result.sink_count,
        "node_count": result.node_count,
        "seconds": result.seconds,
        "buffer_count": result.buffer_count,
        "slack": result.slack,
        "noise_feasible": result.noise_feasible,
        "assignment": assignment,
        "candidates_generated": result.candidates_generated,
        "candidates_kept_peak": result.candidates_kept_peak,
        "error": result.error,
        "attempts": result.attempts,
        "failure": failure,
        "certified": result.certified,
    }
    # power is journaled only when the run computed one, so power-off
    # journals stay byte-identical to the pre-power schema.
    if result.power is not None:
        record["power"] = result.power
    return record


def result_from_json(record: Dict[str, Any], library: BufferLibrary):
    """Rebuild a :class:`~repro.batch.NetResult` journaled by
    :func:`result_to_json`, rebinding buffer names against ``library``."""
    from .optimizer import FailureRecord, NetResult  # circular at import time

    by_name = {buffer.name: buffer for buffer in library}
    assignment = record["assignment"]
    if assignment is not None:
        try:
            assignment = {
                node: by_name[name] for node, name in assignment.items()
            }
        except KeyError as exc:
            raise WorkloadError(
                f"checkpoint for net {record['name']!r} references buffer "
                f"{exc.args[0]!r}, which this library does not define"
            ) from None
    failure = record.get("failure")
    if failure is not None:
        failure = FailureRecord(**failure)
    return NetResult(
        name=record["name"],
        sink_count=record["sink_count"],
        node_count=record["node_count"],
        seconds=record["seconds"],
        buffer_count=record["buffer_count"],
        slack=record["slack"],
        noise_feasible=record["noise_feasible"],
        assignment=assignment,
        candidates_generated=record["candidates_generated"],
        candidates_kept_peak=record["candidates_kept_peak"],
        error=record["error"],
        attempts=record.get("attempts", 1),
        failure=failure,
        certified=record.get("certified"),
        power=record.get("power"),
    )


class CheckpointJournal:
    """Append-only JSONL writer, flushed (and optionally fsynced) per record.

    ``fsync=True`` (the default, and the only behavior before the flag
    existed) forces every record to stable storage, so a machine crash —
    not just a process kill — loses at most the record in flight.
    ``fsync=False`` trades that durability for append throughput: the
    per-line ``flush`` still protects against process death, which is
    the only fault a same-machine restart can observe anyway.
    """

    def __init__(
        self, path: Union[str, Path], handle: TextIO, fsync: bool = True
    ):
        self.path = Path(path)
        self._handle = handle
        self._fsync = fsync

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        fingerprint: Dict[str, Any],
        fsync: bool = True,
        header_extra: Optional[Dict[str, Any]] = None,
    ) -> "CheckpointJournal":
        """Start a fresh journal (truncating any previous file).

        ``header_extra`` merges additional keys into the header record —
        the sharded checkpoint stores its shard topology there, *next
        to* the fingerprint rather than inside it, so resuming under a
        different shard count stays legal.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Truncate, then reopen O_APPEND so flushed lines always land at
        # the true end of file even if another handle appends in between
        # (a plain "w" handle would overwrite them at its own position).
        path.open("w", encoding="utf-8").close()
        handle = path.open("a", encoding="utf-8")
        journal = cls(path, handle, fsync=fsync)
        header = {
            "kind": "header",
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
        }
        if header_extra:
            header.update(header_extra)
        journal._write(header)
        return journal

    @classmethod
    def append_to(
        cls,
        path: Union[str, Path],
        fingerprint: Dict[str, Any],
        fsync: bool = True,
    ) -> "CheckpointJournal":
        """Reopen an existing journal for appending (header must match)."""
        path = Path(path)
        header = read_checkpoint_header(path)
        check_fingerprint(header["fingerprint"], fingerprint, path)
        return cls(path, path.open("a", encoding="utf-8"), fsync=fsync)

    def _write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def append(self, result, seq: Optional[int] = None) -> None:
        """Journal one result; ``seq`` (when given) stamps a global
        write sequence onto the record so loads spanning several shard
        files can order conflicting lines (within one file, line order
        already decides)."""
        record = result_to_json(result)
        if seq is not None:
            record["seq"] = seq
        self._write(record)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_checkpoint_header(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        raise WorkloadError(
            f"checkpoint {path} has no readable header line"
        ) from None
    if header.get("kind") != "header":
        raise WorkloadError(
            f"checkpoint {path} does not start with a header record"
        )
    if header.get("version") != CHECKPOINT_VERSION:
        raise WorkloadError(
            f"checkpoint {path} is version {header.get('version')!r}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    return header


def check_fingerprint(
    found: Dict[str, Any], expected: Dict[str, Any], path: Union[str, Path]
) -> None:
    if found != expected:
        differing = sorted(
            key
            for key in set(found) | set(expected)
            if found.get(key) != expected.get(key)
        )
        raise WorkloadError(
            f"checkpoint {path} was written under a different batch "
            f"configuration (differs on: {', '.join(differing)}); resuming "
            "would mix incompatible solutions — delete the checkpoint or "
            "rerun with the original configuration"
        )


def load_checkpoint(
    path: Union[str, Path],
    library: BufferLibrary,
    fingerprint: Optional[Dict[str, Any]] = None,
    metrics=None,
) -> Dict[str, Any]:
    """Load completed results keyed by net name (last line per net wins).

    ``fingerprint`` (when given) must match the journal header.  Torn
    trailing lines are skipped; torn *interior* lines raise, because
    they indicate corruption rather than an interrupted write.  When a
    torn tail is skipped and ``metrics`` (a
    :class:`~repro.obs.MetricsRegistry`) is given, the recovery is
    counted on :data:`TORN_TAIL_COUNTER` so crash-recovery paths stay
    observable in production.
    """
    path = Path(path)
    header = read_checkpoint_header(path)
    if fingerprint is not None:
        check_fingerprint(header["fingerprint"], fingerprint, path)
    results: Dict[str, Any] = {}
    reader = JournalReader(path, metrics=metrics, journal="batch")
    for number, record in reader.records():
        if record.get("kind") != "result":
            raise WorkloadError(
                f"checkpoint {path} line {number} has unexpected kind "
                f"{record.get('kind')!r}"
            )
        results[record["name"]] = result_from_json(record, library)
    return results
