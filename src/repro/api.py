"""The stable public API: one session, one optimize call, one result.

PRs 1–4 grew four overlapping entry points (``run_dp``,
``buffopt_result``, ``delay_opt_result``, ``BatchConfig`` + four CLI
subcommands); this module is the consolidation seam on top of them:

* :func:`dp_result` — the unified functional entry: one signature, a
  ``mode`` switch (``"buffopt"`` / ``"delay"``), every engine knob.
  ``buffopt_result`` and ``delay_opt_result`` are now deprecation shims
  over it (bit-identical, pinned by the parity tests), and the batch
  layer calls it directly.
* :class:`Session` — the object facade owning the observability wiring
  (:class:`~repro.obs.Tracer`, :class:`~repro.obs.MetricsRegistry`,
  optional JSONL trace / Prometheus exports) plus the library /
  coupling / technology defaults, so ``Session(options).optimize(net)``
  is the whole quickstart::

      from repro.api import Session, SessionOptions

      with Session(SessionOptions(mode="buffopt", engine="fast")) as s:
          result = s.optimize(tree)
          print(result.describe())

All observability is opt-in: a default ``Session`` traces nothing,
meters into an in-memory registry only, and runs the engines byte-for-
byte identically to the raw entry points (the bench gate enforces ≤2 %
facade overhead with instrumentation disabled).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional

from .core.budget import RunBudget
from .core.dp import ENGINE_CHOICES, DPOptions, DPOutcome, DPResult, run_dp
from .core.objective import Objective
from .core.solution import BufferSolution
from .errors import ReproError
from .library.buffers import BufferLibrary, default_buffer_library
from .library.cells import DriverCell
from .library.power import PowerModel, default_power_model
from .library.technology import Technology, default_technology
from .noise.coupling import CouplingModel
from .obs import (
    NULL_TRACER,
    EventSink,
    MetricsRegistry,
    PhaseProfiler,
    Tracer,
)
from .tree.segmenting import segment_tree
from .tree.topology import RoutingTree
from .units import UM

#: the two DP modes the facade exposes (Algorithm 3 vs the baseline).
API_MODES = ("buffopt", "delay")


def resolve_objective(
    mode: Optional[str],
    objective: Optional[Objective],
    *,
    min_slack: float = 0.0,
    owner: str,
) -> Objective:
    """Resolve the legacy ``mode=`` string and the new ``objective=``.

    Exactly the shim discipline every surface shares: an explicit
    ``mode`` alongside an explicit ``objective`` is a conflict; a bare
    ``mode`` warns and maps through :meth:`Objective.legacy` (carrying
    the caller's ``min_slack``, which the legacy selection consumed);
    neither defaults to the legacy buffopt objective.
    """
    if objective is not None:
        if mode is not None and mode != objective.mode:
            raise ValueError(
                f"{owner}: mode={mode!r} conflicts with "
                f"objective.mode={objective.mode!r}; pass only objective="
            )
        return objective
    if mode is None:
        return Objective.legacy("buffopt", min_slack=min_slack)
    warnings.warn(
        f"{owner}: mode= is deprecated; pass "
        "objective=repro.api.Objective(...) instead (see docs/usage.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    return Objective.legacy(mode, min_slack=min_slack)


def dp_result(
    tree: RoutingTree,
    library: BufferLibrary,
    coupling: Optional[CouplingModel] = None,
    *,
    objective: Optional[Objective] = None,
    mode: Optional[str] = None,
    driver: Optional[DriverCell] = None,
    max_buffers: Optional[int] = None,
    enforce_polarity: bool = True,
    prune: str = "timing",
    collect_stats: bool = False,
    budget: Optional[RunBudget] = None,
    engine: str = "reference",
    profile: Optional[PhaseProfiler] = None,
    frontier_cache=None,
    site_prices=None,
    power: Optional[PowerModel] = None,
) -> DPResult:
    """One count-tracking DP run; the union of the legacy entry points.

    ``objective`` is the structured spec (:class:`~repro.api.Objective`)
    naming the DP mode and the downstream selection; pick the outcome
    with ``dp_result(...).select(objective)``.  A buffopt-mode objective
    is the paper's Algorithm 3 (noise-aware; a ``coupling`` model is
    required), a delay-mode one the DelayOpt baseline (``coupling`` is
    ignored — the engine runs silent).  The legacy ``mode=`` string
    remains as a parity-pinned deprecation shim over
    :meth:`Objective.legacy`.

    ``power`` attaches a :class:`~repro.library.PowerModel`, making
    every outcome carry its accumulated buffer + wire power; when the
    objective needs power (``min-power`` / ``power-capped`` /
    ``pareto`` selections) and none is given, the default model is
    used.  ``profile`` optionally installs a
    :class:`~repro.obs.PhaseProfiler` on the engine; ``None`` (the
    default) leaves both engines byte-for-byte uninstrumented.
    ``frontier_cache`` (a :class:`~repro.core.eco.FrontierCache`)
    enables ECO subtree reuse across repeated runs of locally edited
    nets; reference engine only.  ``site_prices`` (node name ->
    nonnegative price) threads Lagrangian shared-site costs into the
    buffer-insertion cost term (see
    :attr:`~repro.core.dp.DPOptions.site_prices`); outcome slacks are
    then *priced* slacks, and ``None``/empty prices are bit-identical
    to an unpriced run.
    """
    if mode is not None and mode not in API_MODES:
        raise ValueError(
            f"unknown mode {mode!r} (expected one of {API_MODES})"
        )
    objective = resolve_objective(mode, objective, owner="dp_result")
    if power is None and objective.power_aware:
        power = default_power_model()
    noise_aware = objective.noise_aware
    if noise_aware:
        if coupling is None:
            raise ValueError(
                "a buffopt objective requires a coupling model (pass "
                "CouplingModel.estimation_mode(technology) or similar)"
            )
    else:
        coupling = CouplingModel.silent()
    options = DPOptions(
        noise_aware=noise_aware,
        track_counts=True,
        max_buffers=max_buffers,
        enforce_polarity=enforce_polarity,
        prune=prune,
        collect_stats=collect_stats,
        budget=budget,
        engine=engine,
        profile=profile,
        frontier_cache=frontier_cache,
        site_prices=site_prices,
        power=power,
    )
    return run_dp(tree, library, coupling=coupling, options=options,
                  driver=driver)


@dataclass(frozen=True)
class SessionOptions:
    """Per-session optimization + observability policy.

    The optimization fields mirror :class:`~repro.batch.BatchConfig`
    (same names, same semantics) so a session and a batch configured
    alike produce identical solutions.
    """

    #: deprecated legacy mode string (``"buffopt"`` / ``"delay"``);
    #: prefer ``objective``.  After construction this always holds the
    #: resolved objective's mode, so downstream consumers (fingerprints,
    #: telemetry labels) keep reading a concrete string.
    mode: Optional[str] = None
    #: DP implementation: ``"reference"``, ``"fast"`` (bit-identical),
    #: ``"lishi"`` (O(bn²), equivalent within float tolerance), or
    #: ``"auto"`` (pick fast/lishi per net by size).
    engine: str = "reference"
    #: Lillis count cap (``None`` = uncapped).
    max_buffers: Optional[int] = None
    #: engine pruning rule: ``"timing"`` (paper) or ``"pareto"``.
    prune: str = "timing"
    #: BuffOpt slack floor for the fewest-buffers selection.
    min_slack: float = 0.0
    #: wire segmentation applied before the DP; ``None`` skips it.
    max_segment_length: Optional[float] = 500 * UM
    enforce_polarity: bool = True
    #: collect :class:`~repro.core.stats.EngineStats` per net.
    collect_stats: bool = False
    #: cooperative per-net deadline / candidate budget (as in batch).
    net_deadline: Optional[float] = None
    net_max_candidates: Optional[int] = None
    #: wrap the DP phase methods with a per-session
    #: :class:`~repro.obs.PhaseProfiler` (per-phase wall time on every
    #: :class:`OptimizeResult`; ``False`` = engines untouched).
    profile_phases: bool = False
    #: write a JSONL span/event trace of the session here (``None`` =
    #: no trace; in-memory spans are kept only when tracing is on).
    trace_path: Optional[str] = None
    #: write Prometheus text metrics here on :meth:`Session.close`.
    metrics_path: Optional[str] = None
    #: the structured optimization objective; ``None`` resolves the
    #: legacy ``mode`` (or, with neither given, the default buffopt
    #: objective).  After construction this is always a concrete
    #: :class:`~repro.api.Objective` consistent with ``mode`` and
    #: ``min_slack``.
    objective: Optional[Objective] = None

    def __post_init__(self) -> None:
        if self.mode is not None and self.mode not in API_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r} (expected one of {API_MODES})"
            )
        resolved = resolve_objective(
            self.mode,
            self.objective,
            min_slack=self.min_slack,
            owner="SessionOptions",
        )
        if resolved.selection == "pareto":
            raise ValueError(
                "Session.optimize selects a single outcome; the 'pareto' "
                "selection returns a frontier — use "
                "dp_result(...).pareto_outcomes() directly"
            )
        # Pin the resolved objective and keep the legacy mirrors (mode,
        # min_slack) coherent with it for downstream consumers.
        object.__setattr__(self, "objective", resolved)
        object.__setattr__(self, "mode", resolved.mode)
        object.__setattr__(self, "min_slack", resolved.min_slack)
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {ENGINE_CHOICES})"
            )
        if self.prune not in ("timing", "pareto"):
            raise ValueError(f"unknown prune rule {self.prune!r}")
        if (
            self.max_segment_length is not None
            and self.max_segment_length <= 0
        ):
            raise ValueError(
                "max_segment_length must be positive or None, got "
                f"{self.max_segment_length}"
            )


@dataclass(frozen=True)
class OptimizeResult:
    """One net's outcome through the facade: selection plus provenance.

    Wraps the full per-count :class:`~repro.core.dp.DPResult` (so every
    outcome stays reachable) together with the mode's selected
    :class:`~repro.core.dp.DPOutcome` and the segmented work tree the
    assignment refers to.
    """

    name: str
    mode: str
    seconds: float
    tree: RoutingTree
    result: DPResult
    outcome: DPOutcome
    #: per-phase engine wall time, present when the session profiles.
    phase_seconds: Optional[Dict[str, float]] = None
    #: the objective the selection answered (provenance).
    objective: Optional[Objective] = None

    @property
    def buffer_count(self) -> int:
        return self.outcome.buffer_count

    @property
    def slack(self) -> float:
        return self.outcome.slack

    @property
    def noise_feasible(self) -> bool:
        return self.outcome.noise_feasible

    @property
    def power(self) -> float:
        """Accumulated solution power (0.0 on power-off runs)."""
        return self.outcome.power

    def solution(self) -> BufferSolution:
        """The selected assignment, materialized on the work tree."""
        return self.result.solution(self.outcome)

    def describe(self) -> str:
        lines = [
            f"{self.name} ({self.mode}): {self.buffer_count} buffer(s), "
            f"slack {self.slack:.4g}, "
            f"noise {'ok' if self.noise_feasible else 'violated'}, "
            f"{self.seconds * 1e3:.2f} ms"
        ]
        if self.phase_seconds:
            shares = "  ".join(
                f"{phase}: {spent * 1e3:.2f} ms"
                for phase, spent in self.phase_seconds.items()
                if spent > 0.0
            )
            if shares:
                lines.append(f"  phases: {shares}")
        return "\n".join(lines)


class Session:
    """The stable facade: defaults, observability, and one entry point.

    Parameters beyond ``options`` override the paper-default substrate
    (11-buffer library, estimation-mode coupling).  ``tracer`` /
    ``metrics`` inject externally owned instrumentation — e.g. the CLI
    shares one registry between a session and a batch — otherwise the
    session builds its own from ``options.trace_path`` /
    ``options.metrics_path``.

    Sessions are context managers; :meth:`close` flushes the Prometheus
    export and closes an owned trace sink.
    """

    def __init__(
        self,
        options: Optional[SessionOptions] = None,
        *,
        library: Optional[BufferLibrary] = None,
        coupling: Optional[CouplingModel] = None,
        technology: Optional[Technology] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        power_model: Optional[PowerModel] = None,
    ):
        self.options = options or SessionOptions()
        self.technology = technology or default_technology()
        self.library = library or default_buffer_library()
        self.coupling = coupling or CouplingModel.estimation_mode(
            self.technology
        )
        # A power-aware objective needs a model; the default one rides
        # the session's technology so overriding the technology is
        # enough to reparametrize power too.
        if power_model is None and self.options.objective.power_aware:
            power_model = default_power_model(self.technology)
        self.power_model = power_model
        self._owns_tracer = tracer is None
        if tracer is not None:
            self.tracer = tracer
        elif self.options.trace_path is not None:
            self.tracer = Tracer(sink=EventSink(self.options.trace_path))
        else:
            self.tracer = NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = (
            PhaseProfiler(metrics=self.metrics)
            if self.options.profile_phases
            else None
        )
        self._nets = self.metrics.counter(
            "buffopt_session_nets_total",
            "nets optimized through the session facade",
        )
        self._seconds = self.metrics.histogram(
            "buffopt_session_optimize_seconds",
            "wall-clock seconds per Session.optimize call",
        )
        self._closed = False

    def _budget(self) -> Optional[RunBudget]:
        if (
            self.options.net_deadline is None
            and self.options.net_max_candidates is None
        ):
            return None
        budget = RunBudget(
            deadline_seconds=self.options.net_deadline,
            max_candidates=self.options.net_max_candidates,
        )
        budget.start()
        return budget

    def optimize(
        self,
        tree: RoutingTree,
        driver: Optional[DriverCell] = None,
    ) -> OptimizeResult:
        """Segment, run the DP, select the mode's outcome, meter it all.

        Raises the engine's own errors (:class:`InfeasibleError`,
        budget/deadline errors) unchanged — the facade adds telemetry,
        never failure semantics.
        """
        options = self.options
        objective = options.objective
        start = perf_counter()
        with self.tracer.span(
            "session.optimize",
            net=tree.name,
            mode=options.mode,
            engine=options.engine,
        ) as span:
            try:
                budget = self._budget()
                if options.max_segment_length is not None:
                    work_tree = segment_tree(
                        tree, options.max_segment_length
                    )
                else:
                    work_tree = tree
                result = dp_result(
                    work_tree,
                    self.library,
                    self.coupling if objective.noise_aware else None,
                    objective=objective,
                    driver=driver,
                    max_buffers=options.max_buffers,
                    enforce_polarity=options.enforce_polarity,
                    prune=options.prune,
                    collect_stats=options.collect_stats,
                    budget=budget,
                    engine=options.engine,
                    profile=self.profiler,
                    power=self.power_model,
                )
                outcome = result.select(objective)
            except ReproError as exc:
                self._nets.inc(
                    mode=options.mode, engine=options.engine,
                    status=type(exc).__name__,
                )
                raise
            seconds = perf_counter() - start
            phase_seconds = (
                None if self.profiler is None else self.profiler.finish()
            )
            span.annotate(
                buffer_count=outcome.buffer_count,
                slack=outcome.slack,
                noise_feasible=outcome.noise_feasible,
                candidates_generated=result.candidates_generated,
            )
        self._nets.inc(mode=options.mode, engine=options.engine, status="ok")
        self._seconds.observe(
            seconds, mode=options.mode, engine=options.engine
        )
        return OptimizeResult(
            name=work_tree.name,
            mode=options.mode,
            seconds=seconds,
            tree=work_tree,
            result=result,
            outcome=outcome,
            phase_seconds=phase_seconds,
            objective=objective,
        )

    def export_metrics(self) -> str:
        """The session's metrics in Prometheus text format."""
        return self.metrics.to_prometheus()

    def close(self) -> None:
        """Write the Prometheus export (if configured), close the trace."""
        if self._closed:
            return
        self._closed = True
        if self.options.metrics_path is not None:
            self.metrics.write_prometheus(self.options.metrics_path)
        if self._owns_tracer:
            self.tracer.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
