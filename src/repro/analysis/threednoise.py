"""Detailed, simulation-based coupled-noise analysis.

Plays the role of the paper's 3dnoise tool [26]: an independent,
more-accurate-than-metric verifier run before and after buffer insertion.
Where 3dnoise used RICE-style moment matching, this implementation
simulates the exact coupled linear circuit (built by
:mod:`repro.analysis.netlist_builder`) with the backward-Euler engine —
at least as accurate for peak-noise purposes, and entirely self-contained.

The analyzer decomposes a buffered net into restoring stages, simulates
each stage under a worst-case simultaneous aggressor ramp, and reports the
peak noise at every stage sink.  Because the Devgan metric is a provable
upper bound for such RC circuits, every detailed peak should sit at or
below the metric value — the relationship the paper exploits in Table II
(3dnoise flags a *subset* of the metric's violations) and which our
property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..core.stages import decompose_stages
from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..library.technology import Technology
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from ..units import UM, format_voltage
from ..circuit.transient import simulate
from .netlist_builder import build_stage_circuit


@dataclass(frozen=True)
class DetailedSinkNoise:
    """Peak simulated noise at one stage sink.

    ``width_at_half_margin`` is the total time the noise waveform spends
    above half the sink's margin.  The paper notes gate failure depends on
    both peak amplitude and pulse width but that "peak amplitude dominates
    pulse width"; reporting the width lets users quantify that second-
    order term (the metric itself is peak-only).
    """

    node: str
    peak: float
    margin: float
    stage_root: str
    is_buffer_input: bool
    width_at_half_margin: float = 0.0
    #: the full noise waveform, present when the analyzer was asked to
    #: keep waveforms (``analyze(..., keep_waveforms=True)``).
    waveform: object = None

    @property
    def slack(self) -> float:
        return self.margin - self.peak

    @property
    def violated(self) -> bool:
        return self.peak > self.margin


@dataclass(frozen=True)
class DetailedNoiseReport:
    """All stage-sink results of one detailed analysis."""

    net: str
    entries: Sequence[DetailedSinkNoise]

    @property
    def violations(self) -> List[DetailedSinkNoise]:
        return [e for e in self.entries if e.violated]

    @property
    def violated(self) -> bool:
        return any(e.violated for e in self.entries)

    @property
    def peak_noise(self) -> float:
        return max(e.peak for e in self.entries)

    @property
    def worst_slack(self) -> float:
        return min(e.slack for e in self.entries)

    def describe(self) -> str:
        lines = [
            f"net {self.net} (detailed): {len(self.entries)} stage sinks, "
            f"{len(self.violations)} violations, peak "
            f"{format_voltage(self.peak_noise)}"
        ]
        for entry in self.violations:
            lines.append(
                f"  VIOLATION at {entry.node}: peak "
                f"{format_voltage(entry.peak)} > margin "
                f"{format_voltage(entry.margin)} (stage {entry.stage_root})"
            )
        return "\n".join(lines)


class DetailedNoiseAnalyzer:
    """Configurable transient noise verifier.

    Parameters
    ----------
    coupling:
        The aggressor model (same object the optimizer used, so both tools
        see identical coupling assumptions — the paper runs BuffOpt and
        3dnoise "all in estimation mode").
    vdd:
        Aggressor swing.
    max_segment_length:
        Spatial discretization of distributed wires (default 50 um).
    steps_per_rise:
        Time resolution: backward-Euler steps per aggressor rise time.
    settle_constants:
        How many RC time constants past the ramp to simulate.
    """

    def __init__(
        self,
        coupling: CouplingModel,
        vdd: float,
        max_segment_length: float = 50 * UM,
        steps_per_rise: int = 40,
        settle_constants: float = 5.0,
    ):
        if steps_per_rise < 4:
            raise AnalysisError(
                f"steps_per_rise must be >= 4, got {steps_per_rise}"
            )
        if settle_constants <= 0:
            raise AnalysisError(
                f"settle_constants must be positive, got {settle_constants}"
            )
        self.coupling = coupling
        self.vdd = vdd
        self.max_segment_length = max_segment_length
        self.steps_per_rise = steps_per_rise
        self.settle_constants = settle_constants

    @classmethod
    def estimation_mode(cls, technology: Technology) -> "DetailedNoiseAnalyzer":
        """Analyzer matching the paper's experimental configuration."""
        return cls(
            coupling=CouplingModel.estimation_mode(technology),
            vdd=technology.vdd,
        )

    def analyze(
        self,
        tree: RoutingTree,
        buffers: Optional[Mapping[str, BufferType]] = None,
        driver_resistance: Optional[float] = None,
        keep_waveforms: bool = False,
    ) -> DetailedNoiseReport:
        """Simulate every stage of ``tree`` and report stage-sink peaks.

        ``keep_waveforms`` attaches each sink's full noise waveform to its
        report entry (for plotting or pulse-shape inspection); off by
        default to keep population sweeps light.
        """
        stages = decompose_stages(tree, buffers, driver_resistance)
        entries: List[DetailedSinkNoise] = []
        for stage in stages:
            if not stage.sinks:
                continue
            built = build_stage_circuit(
                stage,
                self.coupling,
                self.vdd,
                self.max_segment_length,
            )
            time_constant = built.total_resistance * built.total_capacitance
            stop = built.rise_time + self.settle_constants * max(
                time_constant, built.rise_time * 0.1
            )
            step = built.rise_time / self.steps_per_rise
            result = simulate(
                built.circuit,
                stop=stop,
                step=step,
                probes=list(built.probes.values()),
            )
            for sink in stage.sinks:
                waveform = result[built.probes[sink.node.name]]
                entries.append(
                    DetailedSinkNoise(
                        node=sink.node.name,
                        peak=waveform.peak,
                        margin=sink.noise_margin,
                        stage_root=stage.root.name,
                        is_buffer_input=sink.is_buffer_input,
                        width_at_half_margin=waveform.width_above(
                            sink.noise_margin / 2.0
                        ),
                        waveform=waveform if keep_waveforms else None,
                    )
                )
        if not entries:
            raise AnalysisError(f"net {tree.name!r} has no stage sinks")
        return DetailedNoiseReport(net=tree.name, entries=tuple(entries))
