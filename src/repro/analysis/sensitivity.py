"""Coupling-parameter sensitivity of the Devgan metric.

In estimation mode every wire current is ``lambda * C_w * sigma`` (eq. 6),
so the metric's noise at any stage sink is *linear* in the coupling ratio
``lambda`` and in the aggressor slope ``sigma`` separately.  One analysis
therefore yields, per sink, the exact critical values at which the sink
first violates:

    lambda_crit = lambda_0 * NM / Noise(lambda_0)
    sigma_crit  = sigma_0  * NM / Noise(sigma_0)

Designers use this as a robustness margin: "this (buffered) net survives
coupling ratios up to 0.83" is a much more actionable statement than a
pass/fail at one assumed ratio.  The linearity only holds when no wire
carries explicit current/ratio/slope overrides, which the analyzer
checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..noise.coupling import CouplingModel
from ..noise.devgan import sink_noise
from ..tree.topology import RoutingTree


@dataclass(frozen=True)
class SinkSensitivity:
    """Critical coupling parameters for one stage sink."""

    node: str
    noise: float
    margin: float
    #: coupling ratio at which this sink first violates (may exceed 1.0,
    #: meaning no physically possible ratio violates it); inf if immune.
    critical_ratio: float
    #: aggressor slope (V/s) at which this sink first violates; inf if immune.
    critical_slope: float

    @property
    def safety_factor(self) -> float:
        """``margin / noise`` — >1 means the sink passes at the assumed
        parameters, with that much linear headroom."""
        if self.noise == 0.0:
            return math.inf
        return self.margin / self.noise


@dataclass(frozen=True)
class SensitivityReport:
    """Per-sink sensitivities plus net-level minima."""

    net: str
    assumed_ratio: float
    assumed_slope: float
    entries: Sequence[SinkSensitivity]

    @property
    def critical_ratio(self) -> float:
        """The net's first-failure coupling ratio (min over sinks)."""
        return min(e.critical_ratio for e in self.entries)

    @property
    def critical_slope(self) -> float:
        return min(e.critical_slope for e in self.entries)

    @property
    def worst_safety_factor(self) -> float:
        return min(e.safety_factor for e in self.entries)

    def describe(self) -> str:
        lines = [
            f"net {self.net}: coupling sensitivity at ratio="
            f"{self.assumed_ratio}, slope={self.assumed_slope / 1e9:.2f} V/ns"
        ]
        for entry in self.entries:
            ratio = (
                "immune" if math.isinf(entry.critical_ratio)
                else f"{entry.critical_ratio:.3f}"
            )
            lines.append(
                f"  {entry.node}: safety x{entry.safety_factor:.2f}, "
                f"critical ratio {ratio}"
            )
        return "\n".join(lines)


def coupling_sensitivity(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[Mapping[str, BufferType]] = None,
    driver_resistance: Optional[float] = None,
) -> SensitivityReport:
    """Exact critical coupling ratio/slope per stage sink.

    Requires pure estimation mode: raises :class:`AnalysisError` when any
    wire carries an explicit ``current`` / ``coupling_ratio`` / ``slope``
    override (noise is then no longer homogeneous in the model
    parameters; sweep manually in that case).
    """
    if coupling.coupling_ratio <= 0 or coupling.slope <= 0:
        raise AnalysisError(
            "sensitivity needs a positive assumed ratio and slope "
            f"(got {coupling.coupling_ratio}, {coupling.slope})"
        )
    for wire in tree.wires():
        if (
            wire.current is not None
            or wire.coupling_ratio is not None
            or wire.slope is not None
        ):
            raise AnalysisError(
                f"wire {wire.name} carries coupling overrides; the linear "
                "sensitivity analysis only applies in pure estimation mode"
            )

    entries: List[SinkSensitivity] = []
    for result in sink_noise(tree, coupling, buffers, driver_resistance):
        if result.noise <= 0.0:
            critical_ratio = math.inf
            critical_slope = math.inf
        else:
            scale = result.margin / result.noise
            critical_ratio = coupling.coupling_ratio * scale
            critical_slope = coupling.slope * scale
        entries.append(
            SinkSensitivity(
                node=result.node,
                noise=result.noise,
                margin=result.margin,
                critical_ratio=critical_ratio,
                critical_slope=critical_slope,
            )
        )
    return SensitivityReport(
        net=tree.name,
        assumed_ratio=coupling.coupling_ratio,
        assumed_slope=coupling.slope,
        entries=tuple(entries),
    )
