"""Detailed (simulation-based) noise verification — the "3dnoise" role."""

from .awe_noise import AweNoiseAnalyzer, AweNoiseReport, AweSinkNoise
from .netlist_builder import StageCircuit, build_stage_circuit
from .sensitivity import (
    SensitivityReport,
    SinkSensitivity,
    coupling_sensitivity,
)
from .report import (
    NetNoiseAssessment,
    PopulationNoiseSummary,
    assess_net,
    format_table,
    summarize_population,
)
from .threednoise import (
    DetailedNoiseAnalyzer,
    DetailedNoiseReport,
    DetailedSinkNoise,
)

__all__ = [
    "AweNoiseAnalyzer",
    "AweNoiseReport",
    "AweSinkNoise",
    "DetailedNoiseAnalyzer",
    "DetailedNoiseReport",
    "DetailedSinkNoise",
    "NetNoiseAssessment",
    "PopulationNoiseSummary",
    "SensitivityReport",
    "SinkSensitivity",
    "StageCircuit",
    "coupling_sensitivity",
    "assess_net",
    "build_stage_circuit",
    "format_table",
    "summarize_population",
]
