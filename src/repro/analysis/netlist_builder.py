"""Build coupled victim/aggressor circuits from tree stages.

Realizes the paper's Fig. 1 configuration for one restoring stage of a
(possibly buffered) net:

* the stage's driving gate holds the victim quiet through its output
  resistance (a resistor to ground);
* every stage wire becomes a ladder of lumped RC segments; of each
  segment's capacitance, the coupling fraction ``lambda`` connects to the
  aggressor rail and the remainder to ground (exactly the capacitance
  split the Devgan metric assumes, eq. 6);
* the aggressor is an ideal ramp rail (0 -> Vdd at slope ``sigma``) —
  per-wire slope overrides get their own rails;
* stage sinks load the line with their pin capacitance.

The resulting linear circuit is what the backward-Euler transient
simulates; peak voltages at the stage sinks are the detailed noise that
the Devgan metric upper-bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.stages import Stage
from ..errors import AnalysisError
from ..noise.coupling import CouplingModel
from ..circuit.netlist import Circuit
from ..circuit.waveform import PiecewiseLinear


@dataclass(frozen=True)
class StageCircuit:
    """A stage's coupled circuit plus the probe bookkeeping."""

    circuit: Circuit
    #: stage-sink node name in the tree -> circuit node name to probe.
    probes: Dict[str, str]
    #: total capacitance and resistance (for simulation-horizon estimates).
    total_resistance: float
    total_capacitance: float
    rise_time: float


def build_stage_circuit(
    stage: Stage,
    coupling: CouplingModel,
    vdd: float,
    max_segment_length: float,
    min_segments: int = 1,
) -> StageCircuit:
    """Assemble the coupled RC circuit of one stage.

    ``max_segment_length`` controls spatial discretization of the
    distributed wires (smaller = more accurate, slower); wires shorter
    than it still get ``min_segments`` lumps.
    """
    if vdd <= 0:
        raise AnalysisError(f"vdd must be positive, got {vdd}")
    if max_segment_length <= 0:
        raise AnalysisError(
            f"max_segment_length must be positive, got {max_segment_length}"
        )

    circuit = Circuit(name=f"stage_{stage.root.name}")
    root_node = f"n_{stage.root.name}"
    circuit.add_resistor(root_node, "0", stage.resistance, name="Rdrv")

    rails: Dict[float, str] = {}
    total_r = stage.resistance
    total_c = 0.0
    max_slope = 0.0

    def rail_for(slope: float) -> str:
        nonlocal max_slope
        if slope <= 0:
            raise AnalysisError(
                "aggressor slope must be positive for a coupled wire"
            )
        max_slope = max(max_slope, slope)
        if slope not in rails:
            name = f"aggr{len(rails)}"
            rails[slope] = name
            circuit.add_voltage_source(
                name, "0", PiecewiseLinear.ramp(vdd, vdd / slope), name=f"V{name}"
            )
        return rails[slope]

    sink_names = {s.node.name for s in stage.sinks}
    for wire in stage.wires:
        upstream = f"n_{wire.parent.name}"
        downstream = f"n_{wire.child.name}"
        pieces = (
            max(min_segments, math.ceil(wire.length / max_segment_length))
            if wire.length > 0
            else 1
        )
        ratio, slope = _effective_coupling(wire, coupling)
        total_r += wire.resistance
        total_c += wire.capacitance

        previous = upstream
        for piece in range(pieces):
            node = (
                downstream
                if piece == pieces - 1
                else f"n_{wire.parent.name}_{wire.child.name}_{piece}"
            )
            if wire.resistance > 0:
                circuit.add_resistor(
                    previous, node, wire.resistance / pieces
                )
            elif previous != node:
                # Zero-resistance wires still need connectivity.
                circuit.add_resistor(previous, node, 1e-6)
            # Pi-model per segment: half the segment capacitance at each
            # end, so the lumped injection is unbiased with respect to the
            # distributed line (a far-end lump would overshoot the Devgan
            # bound by ~Rw*Iw/(2*pieces)).
            seg_cap = wire.capacitance / pieces
            for endpoint in (previous, node):
                ground_cap = seg_cap * (1.0 - ratio) / 2.0
                couple_cap = seg_cap * ratio / 2.0
                if ground_cap > 0:
                    circuit.add_capacitor(endpoint, "0", ground_cap)
                if couple_cap > 0:
                    circuit.add_capacitor(
                        endpoint, rail_for(slope), couple_cap
                    )
            previous = node

    probes: Dict[str, str] = {}
    for sink in stage.sinks:
        probes[sink.node.name] = f"n_{sink.node.name}"
        if sink.capacitance > 0:
            circuit.add_capacitor(f"n_{sink.node.name}", "0", sink.capacitance)
            total_c += sink.capacitance

    if max_slope == 0.0:
        # No coupled wire in this stage: synthesize a dormant rail so the
        # circuit still has a source (keeps the simulator interface uniform).
        circuit.add_voltage_source(
            "aggr_idle", "0", PiecewiseLinear.constant(0.0), name="Vaggr_idle"
        )
        rise_time = vdd  # arbitrary positive; no coupling, so irrelevant
    else:
        rise_time = vdd / max_slope

    return StageCircuit(
        circuit=circuit,
        probes=probes,
        total_resistance=total_r,
        total_capacitance=total_c,
        rise_time=rise_time,
    )


def _effective_coupling(wire, coupling: CouplingModel) -> Tuple[float, float]:
    """Per-wire (coupling ratio, slope), honoring explicit overrides.

    An explicit ``wire.current`` is converted back into an equivalent
    coupling ratio via eq. 6 so the circuit injects the same charge.
    """
    slope = coupling.slope if wire.slope is None else wire.slope
    if wire.current is not None:
        if wire.current == 0.0:
            return 0.0, slope
        if wire.capacitance <= 0 or slope <= 0:
            raise AnalysisError(
                f"wire {wire.name} has an explicit current but no "
                "capacitance/slope to convert it into a coupling capacitor"
            )
        ratio = wire.current / (wire.capacitance * slope)
        return min(ratio, 1.0), slope
    ratio = coupling.coupling_ratio if wire.coupling_ratio is None else wire.coupling_ratio
    return ratio, slope
