"""Combined metric-vs-detailed noise reporting.

Experiments compare the Devgan metric (fast, conservative) against the
detailed transient verifier (slow, accurate) before and after buffer
insertion — the structure of the paper's Table II.  This module pairs the
two reports for a net and formats population-level summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..library.buffers import BufferType
from ..noise.coupling import CouplingModel
from ..noise.margins import NoiseReport, analyze_noise
from ..tree.topology import RoutingTree
from .threednoise import DetailedNoiseAnalyzer, DetailedNoiseReport


@dataclass(frozen=True)
class NetNoiseAssessment:
    """Metric and detailed reports for one net under one buffering."""

    net: str
    metric: NoiseReport
    detailed: DetailedNoiseReport

    @property
    def metric_violated(self) -> bool:
        return self.metric.violated

    @property
    def detailed_violated(self) -> bool:
        return self.detailed.violated

    @property
    def metric_is_upper_bound(self) -> bool:
        """Whether the metric's worst slack lower-bounds the detailed one.

        Per-sink comparison: every detailed peak must be at or below the
        metric's noise at the same stage sink (tiny tolerance for the
        transient discretization).
        """
        by_node = {entry.node: entry.noise for entry in self.metric.entries}
        tolerance = 1e-6 + 0.02 * max(by_node.values(), default=0.0)
        return all(
            entry.peak <= by_node.get(entry.node, float("inf")) + tolerance
            for entry in self.detailed.entries
        )


def assess_net(
    tree: RoutingTree,
    coupling: CouplingModel,
    analyzer: DetailedNoiseAnalyzer,
    buffers: Optional[Mapping[str, BufferType]] = None,
    driver_resistance: Optional[float] = None,
) -> NetNoiseAssessment:
    """Run both analyses on one (possibly buffered) net."""
    return NetNoiseAssessment(
        net=tree.name,
        metric=analyze_noise(tree, coupling, buffers, driver_resistance),
        detailed=analyzer.analyze(tree, buffers, driver_resistance),
    )


@dataclass(frozen=True)
class PopulationNoiseSummary:
    """Violation counts over a net population (one Table-II column)."""

    label: str
    nets: int
    metric_violations: int
    detailed_violations: int

    def row(self) -> str:
        return (
            f"{self.label:<28} {self.nets:>6} "
            f"{self.metric_violations:>16} {self.detailed_violations:>18}"
        )


def summarize_population(
    label: str, assessments: Sequence[NetNoiseAssessment]
) -> PopulationNoiseSummary:
    """Count metric/detailed violating nets across ``assessments``."""
    return PopulationNoiseSummary(
        label=label,
        nets=len(assessments),
        metric_violations=sum(1 for a in assessments if a.metric_violated),
        detailed_violations=sum(1 for a in assessments if a.detailed_violated),
    )


def format_table(rows: List[PopulationNoiseSummary]) -> str:
    header = (
        f"{'population':<28} {'nets':>6} {'metric violations':>16} "
        f"{'detailed violations':>18}"
    )
    return "\n".join([header, "-" * len(header), *(r.row() for r in rows)])
