"""Moment-matching (RICE/AWE-style) coupled-noise analysis.

The closest reproduction of the paper's actual 3dnoise internals: instead
of time-stepping the coupled circuit, compute transfer-function moments
from each aggressor rail to each stage sink (sparse solves), fit a
reduced two-pole model, and evaluate the ramp response in closed form.
Orders of magnitude fewer solves than the transient for large stages,
at reduced-model accuracy (the classic AWE trade).

Use :class:`AweNoiseAnalyzer` exactly like
:class:`~repro.analysis.threednoise.DetailedNoiseAnalyzer`; the test
suite cross-checks the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..core.stages import decompose_stages
from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..library.technology import Technology
from ..noise.coupling import CouplingModel
from ..tree.topology import RoutingTree
from ..units import UM, format_voltage
from ..circuit.awe import fit_pade, transfer_moments
from ..circuit.mna import assemble
from .netlist_builder import build_stage_circuit


@dataclass(frozen=True)
class AweSinkNoise:
    """Reduced-model peak noise at one stage sink."""

    node: str
    peak: float
    margin: float
    stage_root: str
    #: False when any contributing fit fell back to a single pole.
    stable_fit: bool

    @property
    def slack(self) -> float:
        return self.margin - self.peak

    @property
    def violated(self) -> bool:
        return self.peak > self.margin


@dataclass(frozen=True)
class AweNoiseReport:
    net: str
    entries: Sequence[AweSinkNoise]

    @property
    def violated(self) -> bool:
        return any(e.violated for e in self.entries)

    @property
    def violations(self) -> List[AweSinkNoise]:
        return [e for e in self.entries if e.violated]

    @property
    def peak_noise(self) -> float:
        return max(e.peak for e in self.entries)

    def describe(self) -> str:
        lines = [
            f"net {self.net} (AWE): {len(self.entries)} stage sinks, "
            f"{len(self.violations)} violations, peak "
            f"{format_voltage(self.peak_noise)}"
        ]
        for entry in self.violations:
            lines.append(
                f"  VIOLATION at {entry.node}: peak "
                f"{format_voltage(entry.peak)} > margin "
                f"{format_voltage(entry.margin)}"
            )
        return "\n".join(lines)


class AweNoiseAnalyzer:
    """Moment-matching noise verifier (3dnoise's actual technique)."""

    def __init__(
        self,
        coupling: CouplingModel,
        vdd: float,
        max_segment_length: float = 50 * UM,
        order: int = 4,
        samples: int = 400,
    ):
        if order < 4:
            raise AnalysisError(
                f"two-pole AWE needs moment order >= 4, got {order}"
            )
        self.coupling = coupling
        self.vdd = vdd
        self.max_segment_length = max_segment_length
        self.order = order
        self.samples = samples

    @classmethod
    def estimation_mode(cls, technology: Technology) -> "AweNoiseAnalyzer":
        return cls(
            coupling=CouplingModel.estimation_mode(technology),
            vdd=technology.vdd,
        )

    def analyze(
        self,
        tree: RoutingTree,
        buffers: Optional[Mapping[str, BufferType]] = None,
        driver_resistance: Optional[float] = None,
    ) -> AweNoiseReport:
        stages = decompose_stages(tree, buffers, driver_resistance)
        entries: List[AweSinkNoise] = []
        for stage in stages:
            if not stage.sinks:
                continue
            built = build_stage_circuit(
                stage, self.coupling, self.vdd, self.max_segment_length
            )
            system = assemble(built.circuit)
            # Aggressor rails: ramping voltage sources (slope > 0).
            rails = []
            for index, vsource in enumerate(built.circuit.voltage_sources):
                slope = vsource.waveform.max_slope
                if slope > 0:
                    swing = vsource.waveform.values[-1]
                    rails.append((index, slope, swing / slope))
            for sink in stage.sinks:
                probe = built.probes[sink.node.name]
                if not rails:
                    entries.append(
                        AweSinkNoise(sink.node.name, 0.0, sink.noise_margin,
                                     stage.root.name, True)
                    )
                    continue
                peak, stable = self._combined_peak(system, probe, rails)
                entries.append(
                    AweSinkNoise(
                        node=sink.node.name,
                        peak=peak,
                        margin=sink.noise_margin,
                        stage_root=stage.root.name,
                        stable_fit=stable,
                    )
                )
        if not entries:
            raise AnalysisError(f"net {tree.name!r} has no stage sinks")
        return AweNoiseReport(net=tree.name, entries=tuple(entries))

    def _combined_peak(self, system, probe, rails):
        """Peak of the superposed ramp responses of all rails."""
        fits: List[tuple] = []
        stable = True
        slowest = 0.0
        longest_rise = 0.0
        for index, slope, rise in rails:
            moments = transfer_moments(system, index, probe, self.order)
            approximant = fit_pade(moments)
            stable = stable and approximant.stable
            fits.append((approximant, slope, rise))
            if approximant.poles:
                slowest = max(
                    slowest, max(1.0 / abs(p) for p in approximant.poles)
                )
            longest_rise = max(longest_rise, rise)
        stop = longest_rise + 8.0 * max(slowest, longest_rise * 0.1)
        times = np.linspace(0.0, stop, self.samples)
        peak = 0.0
        for t in times:
            total = sum(
                approximant.ramp_response(float(t), slope, rise)
                for approximant, slope, rise in fits
            )
            peak = max(peak, abs(total))
        return peak, stable
