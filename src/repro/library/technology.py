"""Process technology parameters.

A :class:`Technology` bundles everything the algorithms need to turn a
geometric wire (a length) into electrical quantities:

* ``unit_resistance``  — wire resistance per meter (ohm/m),
* ``unit_capacitance`` — wire capacitance per meter (F/m),
* ``vdd``              — supply voltage (V),
* ``default_coupling_ratio`` — the *estimation mode* ratio ``lambda`` of
  coupling to total wire capacitance (paper Section II-B assumption 3),
* ``default_aggressor_slew`` — rise time of the assumed aggressor (s), from
  which the slope ``sigma = vdd / slew`` follows.

The paper's experiments use ``lambda = 0.7``, rise time 0.25 ns and
Vdd = 1.8 V (slope 7.2 V/ns); :func:`default_technology` reproduces a
late-1990s high-performance process consistent with those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import TechnologyError
from ..units import FF, NS, UM, slope_from_slew


@dataclass(frozen=True)
class Technology:
    """Electrical parameters of the interconnect process.

    All values are SI.  Instances are immutable; use :meth:`scaled` to
    derive variants for sweeps.
    """

    name: str = "generic-0.18um"
    #: wire resistance per meter (ohm/m).
    unit_resistance: float = 0.076 / UM
    #: wire capacitance per meter (F/m).
    unit_capacitance: float = 0.118 * FF / UM
    #: supply voltage (V).
    vdd: float = 1.8
    #: estimation-mode coupling-to-total-capacitance ratio ``lambda``.
    default_coupling_ratio: float = 0.7
    #: assumed aggressor rise time (s).
    default_aggressor_slew: float = 0.25 * NS
    #: free-form notes (e.g. calibration provenance).
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.unit_resistance <= 0:
            raise TechnologyError(
                f"unit_resistance must be positive, got {self.unit_resistance}"
            )
        if self.unit_capacitance <= 0:
            raise TechnologyError(
                f"unit_capacitance must be positive, got {self.unit_capacitance}"
            )
        if self.vdd <= 0:
            raise TechnologyError(f"vdd must be positive, got {self.vdd}")
        if not 0.0 <= self.default_coupling_ratio <= 1.0:
            raise TechnologyError(
                "default_coupling_ratio must lie in [0, 1], got "
                f"{self.default_coupling_ratio}"
            )
        if self.default_aggressor_slew <= 0:
            raise TechnologyError(
                f"default_aggressor_slew must be positive, got "
                f"{self.default_aggressor_slew}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def default_aggressor_slope(self) -> float:
        """Aggressor slope ``sigma = Vdd / rise_time`` in V/s."""
        return slope_from_slew(self.vdd, self.default_aggressor_slew)

    def wire_resistance(self, length: float) -> float:
        """Total resistance (ohm) of a wire of ``length`` meters."""
        self._check_length(length)
        return self.unit_resistance * length

    def wire_capacitance(self, length: float) -> float:
        """Total capacitance (F) of a wire of ``length`` meters."""
        self._check_length(length)
        return self.unit_capacitance * length

    def unit_current(
        self, coupling_ratio: float | None = None, slope: float | None = None
    ) -> float:
        """Estimation-mode aggressor-induced current per meter (A/m).

        Per paper eq. (6) with a single aggressor: ``i = lambda * c * sigma``
        where ``c`` is wire capacitance per unit length.
        """
        ratio = (
            self.default_coupling_ratio if coupling_ratio is None else coupling_ratio
        )
        if not 0.0 <= ratio <= 1.0:
            raise TechnologyError(f"coupling ratio must lie in [0, 1], got {ratio}")
        sigma = self.default_aggressor_slope if slope is None else slope
        if sigma < 0:
            raise TechnologyError(f"slope must be non-negative, got {sigma}")
        return ratio * self.unit_capacitance * sigma

    def scaled(self, **overrides: object) -> "Technology":
        """Return a copy with the given fields replaced (for sweeps)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    @staticmethod
    def _check_length(length: float) -> None:
        if length < 0:
            raise TechnologyError(f"wire length must be non-negative, got {length}")


def default_technology() -> Technology:
    """The technology used by the reproduction experiments.

    Calibrated so that the paper's estimation-mode numbers hold:
    slope = 7.2e9 V/s, and the driverless maximum noise-safe length of
    Theorem 1 (``sqrt(2*NM / (r*i))``) lands in the low-millimeter range
    for an 0.8 V margin — matching the regime in which the paper's
    multi-millimeter global nets need one to four buffers.
    """
    return Technology(
        notes=(
            "Synthetic 0.18um-class global-layer interconnect; see DESIGN.md "
            "substitution table."
        )
    )
