"""Technology, buffer, and cell libraries (the paper's device substrate)."""

from .buffers import (
    BufferLibrary,
    BufferType,
    default_buffer_library,
    single_buffer_library,
)
from .cells import CellLibrary, DriverCell, SinkCell, default_cell_library
from .power import PowerModel, default_power_model
from .technology import Technology, default_technology

__all__ = [
    "BufferLibrary",
    "BufferType",
    "CellLibrary",
    "DriverCell",
    "PowerModel",
    "SinkCell",
    "Technology",
    "default_buffer_library",
    "default_cell_library",
    "default_power_model",
    "default_technology",
    "single_buffer_library",
]
