"""Technology, buffer, and cell libraries (the paper's device substrate)."""

from .buffers import (
    BufferLibrary,
    BufferType,
    default_buffer_library,
    single_buffer_library,
)
from .cells import CellLibrary, DriverCell, SinkCell, default_cell_library
from .technology import Technology, default_technology

__all__ = [
    "BufferLibrary",
    "BufferType",
    "CellLibrary",
    "DriverCell",
    "SinkCell",
    "Technology",
    "default_buffer_library",
    "default_cell_library",
    "default_technology",
    "single_buffer_library",
]
