"""Power models for buffer insertion (switching + short-circuit).

The paper optimizes (delay, noise); this module supplies the third
axis.  Following the RIP hybrid repeater-insertion scheme and the
low-power CMOS optimization protocol (PAPERS.md), the power of a
buffered net is modeled as the sum of

* **switching power** — ``alpha * C * Vdd^2 * f`` for every switched
  capacitance ``C`` (wire segments and buffer input gates), where
  ``alpha`` is the switching-activity factor and ``f`` the clock
  frequency; and
* **short-circuit power** — the brief crowbar current while a buffer's
  input transits, modeled as a fixed fraction of the buffer's own
  switching term (the standard first-order approximation; wires have
  no crowbar path, so the fraction applies to buffers only).

The model is deliberately *monotone and separable*: every inserted
buffer adds ``buffer_power(b) >= 0`` and every traversed wire adds
``wire_power(C) >= 0``, independent of where in the tree they sit.
That is exactly what lets the DP carry a single accumulated power
scalar per candidate and prune on (load, slack, power) dominance
soundly — see ``docs/algorithms.md`` section 11.

The driver cell and the sink input pins switch whether or not any
buffer is inserted, so their (assignment-independent) power is excluded
from the accumulator; reported powers compare solutions, not absolute
chip power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import TechnologyError
from .buffers import BufferType
from .technology import Technology, default_technology


@dataclass(frozen=True)
class PowerModel:
    """Switching + short-circuit power, parametrized on a technology.

    ``activity`` is the signal's switching-activity factor (transitions
    per cycle, typically 0.1-0.3 for global signal nets), ``frequency``
    the clock in Hz, and ``short_circuit_fraction`` the crowbar
    surcharge applied to buffer switching power.  Powers are in watts.
    """

    technology: Technology
    activity: float = 0.15
    frequency: float = 1.0e9
    short_circuit_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.activity <= 1.0:
            raise TechnologyError(
                f"activity must lie in (0, 1], got {self.activity}"
            )
        if not math.isfinite(self.frequency) or self.frequency <= 0.0:
            raise TechnologyError(
                f"frequency must be positive and finite, got {self.frequency}"
            )
        if (
            not math.isfinite(self.short_circuit_fraction)
            or self.short_circuit_fraction < 0.0
        ):
            raise TechnologyError(
                "short_circuit_fraction must be >= 0, got "
                f"{self.short_circuit_fraction}"
            )

    @property
    def _switch_scale(self) -> float:
        """``alpha * Vdd^2 * f`` — the per-farad switching power."""
        return self.activity * self.technology.vdd**2 * self.frequency

    def wire_power(self, capacitance: float) -> float:
        """Switching power of one wire segment of ``capacitance`` farads."""
        return self._switch_scale * capacitance

    def buffer_power(self, buffer: BufferType) -> float:
        """Switching + short-circuit power of one inserted buffer.

        The buffer's switched capacitance is its input gate; the
        short-circuit term rides on top as a fixed fraction.
        """
        return (
            self._switch_scale
            * buffer.input_capacitance
            * (1.0 + self.short_circuit_fraction)
        )

    def to_json(self) -> dict:
        """Parameter block (the technology rides along by name)."""
        return {
            "technology": self.technology.name,
            "activity": self.activity,
            "frequency": self.frequency,
            "short_circuit_fraction": self.short_circuit_fraction,
        }


def default_power_model(
    technology: Optional[Technology] = None,
) -> PowerModel:
    """The standard power model over the default technology."""
    return PowerModel(technology=technology or default_technology())
