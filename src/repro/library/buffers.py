"""Buffer (repeater) types and buffer libraries.

A :class:`BufferType` is the paper's gate model specialized to repeaters:
intrinsic delay ``d``, output (driving) resistance ``Rb``, input capacitance
``Cb``, an input noise margin ``NM`` (the buffer is a restoring stage, so
noise below ``NM`` at its input does not propagate to its output), and an
``inverting`` flag (Lillis-style libraries mix inverting and non-inverting
repeaters; the paper's library holds 5 inverting + 6 non-inverting buffers).

A :class:`BufferLibrary` is an ordered, immutable collection with the
queries the algorithms need (smallest resistance for Algorithms 1/2,
polarity-filtered iteration for Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import TechnologyError
from ..units import FF, PS


@dataclass(frozen=True)
class BufferType:
    """One repeater cell.

    Attributes
    ----------
    name:
        Unique cell name, e.g. ``"buf_x4"``.
    resistance:
        Output driving resistance ``Rb`` (ohm).
    input_capacitance:
        Input pin capacitance ``Cb`` (F).
    intrinsic_delay:
        Intrinsic gate delay ``db`` (s); total gate delay is
        ``db + Rb * C_load``.
    noise_margin:
        Tolerable peak noise at the buffer input (V).
    inverting:
        Whether the cell inverts polarity.
    """

    name: str
    resistance: float
    input_capacitance: float
    intrinsic_delay: float
    noise_margin: float
    inverting: bool = False

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise TechnologyError(
                f"buffer {self.name!r}: resistance must be positive, "
                f"got {self.resistance}"
            )
        if self.input_capacitance < 0:
            raise TechnologyError(
                f"buffer {self.name!r}: input capacitance must be >= 0, "
                f"got {self.input_capacitance}"
            )
        if self.intrinsic_delay < 0:
            raise TechnologyError(
                f"buffer {self.name!r}: intrinsic delay must be >= 0, "
                f"got {self.intrinsic_delay}"
            )
        if self.noise_margin <= 0:
            raise TechnologyError(
                f"buffer {self.name!r}: noise margin must be positive, "
                f"got {self.noise_margin}"
            )

    def gate_delay(self, load: float) -> float:
        """Linear gate delay ``db + Rb * C_load`` (paper eq. 3)."""
        if load < 0:
            raise TechnologyError(f"load must be non-negative, got {load}")
        return self.intrinsic_delay + self.resistance * load


class BufferLibrary:
    """An ordered, immutable collection of :class:`BufferType`.

    Iteration preserves insertion order.  Names must be unique.
    """

    def __init__(self, buffers: Iterable[BufferType]):
        items = tuple(buffers)
        if not items:
            raise TechnologyError("a buffer library must contain at least one buffer")
        names = [b.name for b in items]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise TechnologyError(f"duplicate buffer names: {sorted(duplicates)}")
        self._buffers = items
        self._by_name = {b.name: b for b in items}

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[BufferType]:
        return iter(self._buffers)

    def __len__(self) -> int:
        return len(self._buffers)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> BufferType:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no buffer named {name!r}; have {sorted(self._by_name)}"
            ) from None

    def __repr__(self) -> str:
        return f"BufferLibrary({[b.name for b in self._buffers]})"

    # -- queries ---------------------------------------------------------------

    @property
    def buffers(self) -> Sequence[BufferType]:
        """All buffers, in library order."""
        return self._buffers

    def smallest_resistance(self) -> BufferType:
        """The minimum-``Rb`` buffer.

        Algorithms 1 and 2 remain optimal for multi-buffer libraries when
        restricted to this buffer (paper, remarks after Theorems 3 and 4):
        the smallest resistance always yields the maximum buffer spacing.
        """
        return min(self._buffers, key=lambda b: b.resistance)

    def non_inverting(self) -> "BufferLibrary":
        """Sub-library of non-inverting buffers (raises if none exist)."""
        kept = [b for b in self._buffers if not b.inverting]
        if not kept:
            raise TechnologyError("library has no non-inverting buffers")
        return BufferLibrary(kept)

    def inverting(self) -> "BufferLibrary":
        """Sub-library of inverting buffers (raises if none exist)."""
        kept = [b for b in self._buffers if b.inverting]
        if not kept:
            raise TechnologyError("library has no inverting buffers")
        return BufferLibrary(kept)

    def restricted(self, names: Iterable[str]) -> "BufferLibrary":
        """Sub-library with only the named buffers, in library order."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise KeyError(f"unknown buffer names: {sorted(missing)}")
        return BufferLibrary([b for b in self._buffers if b.name in wanted])


def single_buffer_library(buffer: BufferType) -> BufferLibrary:
    """Convenience wrapper for the single-buffer optimality setting."""
    return BufferLibrary([buffer])


def default_buffer_library(noise_margin: float = 0.8) -> BufferLibrary:
    """The reproduction's 11-buffer library (5 inverting + 6 non-inverting).

    Graded power levels: stronger buffers have lower ``Rb``, higher ``Cb``
    and slightly lower intrinsic delay, mirroring a real repeater family.
    All cells share the design's gate noise margin (paper: 0.8 V).
    """
    non_inverting = [
        BufferType("buf_x1", 720.0, 9.0 * FF, 36.0 * PS, noise_margin, False),
        BufferType("buf_x2", 420.0, 14.0 * FF, 33.0 * PS, noise_margin, False),
        BufferType("buf_x4", 255.0, 22.0 * FF, 31.0 * PS, noise_margin, False),
        BufferType("buf_x8", 160.0, 34.0 * FF, 29.0 * PS, noise_margin, False),
        BufferType("buf_x16", 105.0, 52.0 * FF, 28.0 * PS, noise_margin, False),
        BufferType("buf_x32", 70.0, 80.0 * FF, 27.0 * PS, noise_margin, False),
    ]
    inverting = [
        BufferType("inv_x2", 360.0, 10.0 * FF, 19.0 * PS, noise_margin, True),
        BufferType("inv_x4", 215.0, 16.0 * FF, 18.0 * PS, noise_margin, True),
        BufferType("inv_x8", 135.0, 25.0 * FF, 17.0 * PS, noise_margin, True),
        BufferType("inv_x16", 88.0, 39.0 * FF, 16.0 * PS, noise_margin, True),
        BufferType("inv_x32", 60.0, 60.0 * FF, 16.0 * PS, noise_margin, True),
    ]
    return BufferLibrary(non_inverting + inverting)
