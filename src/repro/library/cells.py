"""Driver and sink cells.

The buffer-insertion algorithms only see two kinds of non-repeater gates:

* the **driver** at the net's source — modeled, like any gate in the paper,
  by an intrinsic delay ``dd`` and an output resistance ``Rd``;
* **sinks** — input pins with a pin capacitance ``Ci``, a required arrival
  time ``RAT`` (timing) and a noise margin ``NM`` (noise).

:class:`CellLibrary` provides graded driver/sink cells so workloads can draw
realistic values.  Per-sink RATs live on the routing tree, not here, because
they are instance data rather than cell data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import TechnologyError
from ..units import FF, PS


@dataclass(frozen=True)
class DriverCell:
    """A source gate: intrinsic delay plus output resistance."""

    name: str
    resistance: float
    intrinsic_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise TechnologyError(
                f"driver {self.name!r}: resistance must be positive, "
                f"got {self.resistance}"
            )
        if self.intrinsic_delay < 0:
            raise TechnologyError(
                f"driver {self.name!r}: intrinsic delay must be >= 0, "
                f"got {self.intrinsic_delay}"
            )

    def gate_delay(self, load: float) -> float:
        """Linear gate delay ``dd + Rd * C_load`` (paper eq. 3)."""
        if load < 0:
            raise TechnologyError(f"load must be non-negative, got {load}")
        return self.intrinsic_delay + self.resistance * load


@dataclass(frozen=True)
class SinkCell:
    """A sink input pin: capacitance plus tolerable noise margin."""

    name: str
    input_capacitance: float
    noise_margin: float

    def __post_init__(self) -> None:
        if self.input_capacitance < 0:
            raise TechnologyError(
                f"sink {self.name!r}: input capacitance must be >= 0, "
                f"got {self.input_capacitance}"
            )
        if self.noise_margin <= 0:
            raise TechnologyError(
                f"sink {self.name!r}: noise margin must be positive, "
                f"got {self.noise_margin}"
            )


class CellLibrary:
    """Graded driver and sink cells for workload generation."""

    def __init__(self, drivers: Iterable[DriverCell], sinks: Iterable[SinkCell]):
        self._drivers = tuple(drivers)
        self._sinks = tuple(sinks)
        if not self._drivers:
            raise TechnologyError("cell library needs at least one driver")
        if not self._sinks:
            raise TechnologyError("cell library needs at least one sink")
        names = [c.name for c in (*self._drivers, *self._sinks)]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise TechnologyError(f"duplicate cell names: {sorted(duplicates)}")

    @property
    def drivers(self) -> Sequence[DriverCell]:
        return self._drivers

    @property
    def sinks(self) -> Sequence[SinkCell]:
        return self._sinks

    def driver(self, name: str) -> DriverCell:
        for cell in self._drivers:
            if cell.name == name:
                return cell
        raise KeyError(f"no driver named {name!r}")

    def sink(self, name: str) -> SinkCell:
        for cell in self._sinks:
            if cell.name == name:
                return cell
        raise KeyError(f"no sink named {name!r}")

    def __iter__(self) -> Iterator[object]:
        yield from self._drivers
        yield from self._sinks

    def __repr__(self) -> str:
        return (
            f"CellLibrary(drivers={[d.name for d in self._drivers]}, "
            f"sinks={[s.name for s in self._sinks]})"
        )


def default_cell_library(noise_margin: float = 0.8) -> CellLibrary:
    """Graded cells for the synthetic microprocessor workload.

    Driver strengths span weak latch outputs to strong clock-class drivers;
    sink pins span small-to-large receivers.  All sinks share the paper's
    0.8 V tolerable noise margin by default.
    """
    drivers = [
        DriverCell("drv_weak", 900.0, 45.0 * PS),
        DriverCell("drv_x1", 560.0, 40.0 * PS),
        DriverCell("drv_x2", 330.0, 36.0 * PS),
        DriverCell("drv_x4", 190.0, 33.0 * PS),
        DriverCell("drv_x8", 120.0, 30.0 * PS),
        DriverCell("drv_x16", 80.0, 28.0 * PS),
    ]
    sinks = [
        SinkCell("pin_small", 8.0 * FF, noise_margin),
        SinkCell("pin_med", 15.0 * FF, noise_margin),
        SinkCell("pin_large", 28.0 * FF, noise_margin),
        SinkCell("pin_xlarge", 50.0 * FF, noise_margin),
    ]
    return CellLibrary(drivers, sinks)
