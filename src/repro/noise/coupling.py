"""Aggressor coupling models (paper Section II-B, eq. 6).

The aggressor-induced noise *current* on a victim wire is

    I_w = sum over aggressors j of  k_j * C_w * sigma_j

where ``k_j`` is the coupling-to-wire-capacitance ratio of aggressor ``j``
and ``sigma_j = Vdd / rise_time`` its switching slope.  Two usage modes:

* **Explicit mode** — wires were segmented so each piece couples to a known
  aggressor set (paper Fig. 2); each aggressor is an :class:`Aggressor`
  and :func:`aggressor_current` sums eq. 6.  A wire may also carry a fully
  explicit ``current`` (the paper's Fig. 3 style).
* **Estimation mode** — before routing, assume one aggressor everywhere
  with a fixed coupling ratio ``lambda`` and slope ``sigma`` (Section II-B
  assumptions 1–3).  :meth:`CouplingModel.estimation_mode` builds this from
  a :class:`~repro.library.Technology`; the paper's experiments use
  ``lambda = 0.7`` and ``sigma = 1.8 V / 0.25 ns = 7.2 V/ns``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError
from ..library.technology import Technology
from ..tree.topology import Wire


@dataclass(frozen=True)
class Aggressor:
    """One switching neighbor of a victim wire.

    ``coupling_ratio`` is the ratio of coupling capacitance to the victim
    wire's own capacitance (``k_j`` in eq. 6); ``slope`` is the aggressor
    signal slope in V/s.
    """

    coupling_ratio: float
    slope: float
    name: str = "aggressor"

    def __post_init__(self) -> None:
        if self.coupling_ratio < 0:
            raise AnalysisError(
                f"aggressor {self.name!r}: coupling ratio must be >= 0, "
                f"got {self.coupling_ratio}"
            )
        if self.slope < 0:
            raise AnalysisError(
                f"aggressor {self.name!r}: slope must be >= 0, got {self.slope}"
            )


def aggressor_current(wire_capacitance: float, aggressors: Sequence[Aggressor]) -> float:
    """Total induced current on a wire (paper eq. 6)."""
    if wire_capacitance < 0:
        raise AnalysisError(
            f"wire capacitance must be >= 0, got {wire_capacitance}"
        )
    return sum(a.coupling_ratio * wire_capacitance * a.slope for a in aggressors)


@dataclass(frozen=True)
class CouplingModel:
    """Resolves the noise current of any wire.

    Resolution order per wire: an explicit ``wire.current`` wins; otherwise
    eq. 6 with the wire's own ``coupling_ratio`` / ``slope`` overrides when
    present, falling back to this model's defaults.
    """

    coupling_ratio: float
    slope: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coupling_ratio <= 1.0:
            raise AnalysisError(
                f"coupling_ratio must lie in [0, 1], got {self.coupling_ratio}"
            )
        if self.slope < 0:
            raise AnalysisError(f"slope must be >= 0, got {self.slope}")

    @classmethod
    def estimation_mode(cls, technology: Technology) -> "CouplingModel":
        """The paper's pre-routing single-aggressor assumption."""
        return cls(
            coupling_ratio=technology.default_coupling_ratio,
            slope=technology.default_aggressor_slope,
        )

    @classmethod
    def silent(cls) -> "CouplingModel":
        """A no-aggressor model (every derived current is zero)."""
        return cls(coupling_ratio=0.0, slope=0.0)

    def wire_current(self, wire: Wire) -> float:
        """The total aggressor-induced current ``I_w`` of ``wire`` (A)."""
        if wire.current is not None:
            return wire.current
        ratio = self.coupling_ratio if wire.coupling_ratio is None else wire.coupling_ratio
        slope = self.slope if wire.slope is None else wire.slope
        return ratio * wire.capacitance * slope

    def unit_current(self, unit_capacitance: float) -> float:
        """Current per meter for a wire of the given capacitance per meter."""
        return self.coupling_ratio * unit_capacitance * self.slope
