"""Aggressor-window wire segmentation (the paper's Fig. 2 scheme).

When the neighborhood of a victim net is known (post-routing), each wire
couples to *different* aggressors along *different* spans.  The paper's
Fig. 2 handles this by segmenting the victim's wires so that every piece
is "completely coupled to either zero, one, or two of the aggressor
nets"; eq. 6 then sums the active aggressors per piece.

:func:`apply_aggressor_windows` implements exactly that: given windows —
intervals along specific wires, each carrying an
:class:`~repro.noise.coupling.Aggressor` — it returns a copy of the tree
whose wires are split at every window boundary, with each piece's noise
current set explicitly from eq. 6 over its active aggressor set.  Wires
(and spans) with no window get zero current, i.e. the silent-neighbor
assumption; everything downstream (the metric, Algorithms 1–3, the
detailed verifier) consumes the result unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..tree.topology import Node, RoutingTree, Wire
from ..tree.transform import copy_node, copy_wire, fresh_name
from .coupling import Aggressor, aggressor_current


@dataclass(frozen=True)
class AggressorWindow:
    """One aggressor running parallel to a span of one victim wire.

    ``start`` / ``end`` are distances from the wire's *parent* end, in
    meters, with ``0 <= start < end <= wire length`` (checked when the
    window is applied).
    """

    parent: str
    child: str
    start: float
    end: float
    aggressor: Aggressor

    def __post_init__(self) -> None:
        if self.start < 0:
            raise AnalysisError(f"window start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise AnalysisError(
                f"window must have positive extent, got "
                f"[{self.start}, {self.end}]"
            )

    @property
    def wire_key(self) -> Tuple[str, str]:
        return (self.parent, self.child)


def apply_aggressor_windows(
    tree: RoutingTree,
    windows: Sequence[AggressorWindow],
) -> RoutingTree:
    """Segment ``tree`` per the Fig. 2 scheme and stamp explicit currents.

    Returns a new tree; the input is untouched.  Split-point nodes are
    feasible buffer sites (they are legitimate positions, exactly like
    ordinary segmentation nodes).

    Raises
    ------
    AnalysisError
        If a window references an unknown wire or extends beyond it.
    """
    by_wire: Dict[Tuple[str, str], List[AggressorWindow]] = {}
    known = {(w.parent.name, w.child.name): w for w in tree.wires()}
    for window in windows:
        wire = known.get(window.wire_key)
        if wire is None:
            raise AnalysisError(
                f"window references unknown wire "
                f"{window.parent}->{window.child}"
            )
        if window.end > wire.length + 1e-12:
            raise AnalysisError(
                f"window [{window.start}, {window.end}] exceeds wire "
                f"{wire.name} of length {wire.length}"
            )
        by_wire.setdefault(window.wire_key, []).append(window)

    copies: Dict[str, Node] = {n.name: copy_node(n) for n in tree.nodes()}
    taken = set(copies)
    new_nodes: List[Node] = list(copies.values())
    new_wires: List[Wire] = []

    for wire in tree.wires():
        parent_copy = copies[wire.parent.name]
        child_copy = copies[wire.child.name]
        wire_windows = by_wire.get((wire.parent.name, wire.child.name))
        if not wire_windows:
            piece = copy_wire(wire, parent_copy, child_copy)
            piece.current = 0.0  # silent neighbors outside all windows
            new_wires.append(piece)
            continue
        raw = sorted(
            {0.0, wire.length}
            | {w.start for w in wire_windows}
            | {w.end for w in wire_windows}
        )
        # Collapse boundaries closer than float dust so a window ending
        # within epsilon of the wire end cannot create two "last" pieces.
        epsilon = wire.length * 1e-9
        boundaries = [raw[0]]
        for value in raw[1:]:
            if value - boundaries[-1] > epsilon:
                boundaries.append(value)
        boundaries[-1] = wire.length
        cursor = parent_copy
        for index, (lo, hi) in enumerate(zip(boundaries, boundaries[1:])):
            last = index == len(boundaries) - 2
            if last:
                endpoint = child_copy
            else:
                name = fresh_name(
                    f"{wire.parent.name}__win{index}__{wire.child.name}", taken
                )
                taken.add(name)
                endpoint = Node(name=name, feasible=True,
                                position=_interp(wire, hi))
                new_nodes.append(endpoint)
            share = (hi - lo) / wire.length
            active = [
                w.aggressor for w in wire_windows
                if w.start <= lo + epsilon and w.end >= hi - epsilon
            ]
            piece = Wire(
                parent=cursor,
                child=endpoint,
                length=wire.length * share,
                resistance=wire.resistance * share,
                capacitance=wire.capacitance * share,
                current=aggressor_current(wire.capacitance * share, active),
            )
            new_wires.append(piece)
            cursor = endpoint

    return RoutingTree(
        new_nodes, new_wires, driver=tree.driver,
        name=tree.name, allow_nonbinary=not tree.is_binary,
    )


def uniform_window(
    tree: RoutingTree,
    parent: str,
    child: str,
    aggressor: Aggressor,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> AggressorWindow:
    """Convenience: a window spanning (a part of) one wire of ``tree``."""
    wire = None
    for candidate in tree.wires():
        if candidate.parent.name == parent and candidate.child.name == child:
            wire = candidate
            break
    if wire is None:
        raise AnalysisError(f"no wire {parent}->{child} in {tree.name!r}")
    return AggressorWindow(
        parent=parent,
        child=child,
        start=0.0 if start is None else start,
        end=wire.length if end is None else end,
        aggressor=aggressor,
    )


def _interp(wire: Wire, distance_from_parent: float):
    if wire.parent.position is None or wire.child.position is None:
        return None
    if wire.length == 0:
        return wire.parent.position
    fraction = distance_from_parent / wire.length
    (x0, y0), (x1, y1) = wire.parent.position, wire.child.position
    return (x0 + (x1 - x0) * fraction, y0 + (y1 - y0) * fraction)
