"""Noise-margin bookkeeping and violation reports.

Thin conveniences above :mod:`repro.noise.devgan`: uniform-margin setup for
experiments, and a :class:`NoiseReport` that experiments and the CLI print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..tree.topology import RoutingTree
from ..units import format_voltage
from .coupling import CouplingModel
from .devgan import BufferMap, StageSinkNoise, sink_noise


@dataclass(frozen=True)
class NoiseReport:
    """Summary of a noise analysis over one tree."""

    net: str
    entries: Sequence[StageSinkNoise]

    @property
    def violations(self) -> List[StageSinkNoise]:
        return [e for e in self.entries if e.violated]

    @property
    def violated(self) -> bool:
        return any(e.violated for e in self.entries)

    @property
    def worst_slack(self) -> float:
        return min(e.slack for e in self.entries)

    @property
    def peak_noise(self) -> float:
        return max(e.noise for e in self.entries)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"net {self.net}: {len(self.entries)} stage sinks, "
            f"{len(self.violations)} violations, "
            f"peak noise {format_voltage(self.peak_noise)}, "
            f"worst slack {format_voltage(self.worst_slack)}"
        ]
        for entry in self.violations:
            lines.append(
                f"  VIOLATION at {entry.node}: noise "
                f"{format_voltage(entry.noise)} > margin "
                f"{format_voltage(entry.margin)} (stage {entry.stage_root})"
            )
        return "\n".join(lines)


def analyze_noise(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> NoiseReport:
    """Run the Devgan metric and wrap the result in a :class:`NoiseReport`."""
    entries = sink_noise(tree, coupling, buffers, driver_resistance)
    return NoiseReport(net=tree.name, entries=tuple(entries))
