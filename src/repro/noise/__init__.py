"""Devgan coupled-noise metric and aggressor models (paper Section II-B)."""

from .coupling import Aggressor, CouplingModel, aggressor_current
from .devgan import (
    StageSinkNoise,
    downstream_currents,
    has_noise_violation,
    noise_slacks,
    noise_violations,
    sink_noise,
    wire_noise,
    worst_noise_slack,
)
from .margins import NoiseReport, analyze_noise
from .windows import AggressorWindow, apply_aggressor_windows, uniform_window

__all__ = [
    "Aggressor",
    "AggressorWindow",
    "CouplingModel",
    "NoiseReport",
    "StageSinkNoise",
    "apply_aggressor_windows",
    "uniform_window",
    "aggressor_current",
    "analyze_noise",
    "downstream_currents",
    "has_noise_violation",
    "noise_slacks",
    "noise_violations",
    "sink_noise",
    "wire_noise",
    "worst_noise_slack",
]
