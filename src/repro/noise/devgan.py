"""The Devgan coupled-noise metric on routing trees (paper Section II-B).

Structure mirrors the Elmore engine — the paper's footnote 5 analogy:

=================  =======================
Elmore / timing    Devgan / noise
=================  =======================
capacitance C(v)   downstream current I(v)
wire delay         wire noise
RAT                noise margin NM
slack q(v)         noise slack NS(v)
=================  =======================

Per-wire quantities (eqs. 7–9):

* ``I(v)`` — total downstream current at ``v``: the sum of the induced
  currents of every wire in the (stage-local) subtree below ``v``; a
  buffer is a cut, since a restoring gate does not pass noise current.
* ``Noise(w)`` for ``w = (u, v)`` — ``R_w * (I_w / 2 + I(v))``: the wire's
  own distributed current sees half its resistance (pi-model), and all
  deeper current crosses the full ``R_w``.
* Noise at a stage sink ``t`` from the stage's driving gate at ``u`` —
  ``R_gate(u) * I(u) + sum of Noise(w) along path(u, t)``.

A *stage sink* is a real sink (margin from its :class:`SinkSpec`) or a
buffer input (margin from the :class:`~repro.library.BufferType`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..errors import AnalysisError
from ..library.buffers import BufferType
from ..tree.topology import RoutingTree, Wire
from .coupling import CouplingModel

BufferMap = Mapping[str, BufferType]


def wire_noise(wire: Wire, wire_current: float, downstream_current: float) -> float:
    """Noise added by one wire (paper eq. 8)."""
    return wire.resistance * (wire_current / 2.0 + downstream_current)


def downstream_currents(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
) -> Dict[str, float]:
    """``I(v)`` for every node (paper eq. 7), cut at buffered nodes.

    The value stored for a buffered node is the current *its own output
    stage* sees (useful for checking the buffer's drive); its contribution
    to the parent stage is zero.
    """
    buffers = buffers or {}
    currents: Dict[str, float] = {}
    for node in tree.postorder():
        total = 0.0
        for child in node.children:
            wire = child.parent_wire
            assert wire is not None
            child_current = 0.0 if child.name in buffers else currents[child.name]
            total += coupling.wire_current(wire) + child_current
        currents[node.name] = total
    return currents


@dataclass(frozen=True)
class StageSinkNoise:
    """Noise arriving at one stage sink (a real sink or a buffer input)."""

    node: str
    noise: float
    margin: float
    #: name of the gate node driving this stage ('' means the net's driver).
    stage_root: str

    @property
    def slack(self) -> float:
        return self.margin - self.noise

    @property
    def violated(self) -> bool:
        return self.noise > self.margin


def sink_noise(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> List[StageSinkNoise]:
    """Peak Devgan noise at every stage sink of the (buffered) tree.

    ``driver_resistance`` defaults to ``tree.driver.resistance`` and is the
    ``R_gate`` of the source stage (paper eq. 9).  Buffered internal nodes
    root their own stages with their own output resistance; their *inputs*
    are stage sinks of the enclosing stage, with the buffer's noise margin.
    """
    buffers = buffers or {}
    for name in buffers:
        if not tree.node(name).is_internal:
            raise AnalysisError(f"buffer on non-internal node {name!r}")
    if driver_resistance is None:
        if tree.driver is None:
            raise AnalysisError(
                f"tree {tree.name!r} has no driver; pass driver_resistance"
            )
        driver_resistance = tree.driver.resistance

    currents = downstream_currents(tree, coupling, buffers)
    results: List[StageSinkNoise] = []

    # accumulated[v]: noise from the current stage root's output to node v.
    accumulated: Dict[str, float] = {}
    stage_root: Dict[str, str] = {}
    source = tree.source
    accumulated[source.name] = driver_resistance * currents[source.name]
    stage_root[source.name] = source.name

    for node in tree.preorder():
        if node is not source:
            wire = node.parent_wire
            assert wire is not None
            parent = wire.parent
            wire_i = coupling.wire_current(wire)
            downstream = 0.0 if node.name in buffers else currents[node.name]
            noise_here = accumulated[parent.name] + wire_noise(
                wire, wire_i, downstream
            )
            if node.name in buffers:
                buffer = buffers[node.name]
                results.append(
                    StageSinkNoise(
                        node=node.name,
                        noise=noise_here,
                        margin=buffer.noise_margin,
                        stage_root=stage_root[parent.name],
                    )
                )
                # The buffer restores the signal: a new stage starts here.
                accumulated[node.name] = buffer.resistance * currents[node.name]
                stage_root[node.name] = node.name
            else:
                accumulated[node.name] = noise_here
                stage_root[node.name] = stage_root[parent.name]
                if node.is_sink:
                    assert node.sink is not None
                    results.append(
                        StageSinkNoise(
                            node=node.name,
                            noise=noise_here,
                            margin=node.sink.noise_margin,
                            stage_root=stage_root[node.name],
                        )
                    )
    return results


def noise_slacks(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
) -> Dict[str, float]:
    """``NS(v)`` for every node (paper eq. 12), stage-local.

    ``NS(sink) = NM(sink)``; climbing a wire subtracts its noise; branches
    take the child minimum.  A buffered child contributes the *buffer's*
    margin (its input is the stage sink seen from above).  For a buffered
    node the stored value describes its own downstream stage.
    """
    buffers = buffers or {}
    currents = downstream_currents(tree, coupling, buffers)
    slacks: Dict[str, float] = {}
    for node in tree.postorder():
        if node.is_sink:
            assert node.sink is not None
            slacks[node.name] = node.sink.noise_margin
            continue
        best = None
        for child in node.children:
            wire = child.parent_wire
            assert wire is not None
            if child.name in buffers:
                child_slack = buffers[child.name].noise_margin
                downstream = 0.0
            else:
                child_slack = slacks[child.name]
                downstream = currents[child.name]
            value = child_slack - wire_noise(
                wire, coupling.wire_current(wire), downstream
            )
            best = value if best is None else min(best, value)
        if best is None:
            raise AnalysisError(
                f"internal node {node.name!r} has no children; invalid tree"
            )
        slacks[node.name] = best
    return slacks


def noise_violations(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> List[StageSinkNoise]:
    """Stage sinks whose Devgan noise exceeds their margin (eq. 11)."""
    return [
        entry
        for entry in sink_noise(tree, coupling, buffers, driver_resistance)
        if entry.violated
    ]


def has_noise_violation(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> bool:
    """Whether any stage sink violates its noise margin."""
    return bool(noise_violations(tree, coupling, buffers, driver_resistance))


def worst_noise_slack(
    tree: RoutingTree,
    coupling: CouplingModel,
    buffers: Optional[BufferMap] = None,
    driver_resistance: Optional[float] = None,
) -> float:
    """The minimum ``margin - noise`` over all stage sinks."""
    entries = sink_noise(tree, coupling, buffers, driver_resistance)
    return min(entry.slack for entry in entries)
