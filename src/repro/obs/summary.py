"""Trace digestion for ``buffopt trace summarize``.

Reads a JSONL trace written by :class:`~repro.obs.tracing.Tracer` (via
an :class:`~repro.obs.events.EventSink`) and folds it into per-span-name
aggregates — count, total/mean/min/max wall time, plus any candidate
counters the spans captured — and per-event-name counts.  The rendered
table is the per-phase time breakdown the ISSUE's tentpole asks for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from .events import read_events


@dataclass
class SpanAggregate:
    """All spans of one name, folded."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0
    candidates_generated: int = 0
    candidates_pruned: int = 0

    def add(self, record: Dict[str, Any]) -> None:
        duration = record.get("duration")
        if duration is None:
            return
        self.count += 1
        self.total_seconds += duration
        self.min_seconds = min(self.min_seconds, duration)
        self.max_seconds = max(self.max_seconds, duration)
        attributes = record.get("attributes") or {}
        self.candidates_generated += attributes.get(
            "candidates_generated", 0
        ) or 0
        self.candidates_pruned += attributes.get("candidates_pruned", 0) or 0

    @property
    def mean_seconds(self) -> float:
        return 0.0 if self.count == 0 else self.total_seconds / self.count


@dataclass
class TraceSummary:
    """One trace file, digested."""

    path: str
    records: int
    spans: Dict[str, SpanAggregate] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "records": self.records,
            "spans": {
                name: {
                    "count": agg.count,
                    "total_seconds": agg.total_seconds,
                    "mean_seconds": agg.mean_seconds,
                    "min_seconds": (
                        0.0 if agg.count == 0 else agg.min_seconds
                    ),
                    "max_seconds": agg.max_seconds,
                    "candidates_generated": agg.candidates_generated,
                    "candidates_pruned": agg.candidates_pruned,
                }
                for name, agg in sorted(self.spans.items())
            },
            "events": dict(sorted(self.events.items())),
        }

    def describe(self) -> str:
        lines = [f"trace {self.path}: {self.records} record(s)"]
        if self.spans:
            ordered = sorted(
                self.spans.values(), key=lambda a: -a.total_seconds
            )
            grand_total = sum(a.total_seconds for a in ordered)
            lines.append(
                f"{'span':28s} {'count':>7s} {'total':>10s} {'mean':>10s} "
                f"{'max':>10s} {'share':>6s}"
            )
            for agg in ordered:
                share = (
                    0.0 if grand_total <= 0
                    else 100.0 * agg.total_seconds / grand_total
                )
                lines.append(
                    f"{agg.name:28s} {agg.count:7d} "
                    f"{agg.total_seconds * 1e3:8.2f}ms "
                    f"{agg.mean_seconds * 1e3:8.2f}ms "
                    f"{agg.max_seconds * 1e3:8.2f}ms "
                    f"{share:5.1f}%"
                )
            generated = sum(a.candidates_generated for a in ordered)
            pruned = sum(a.candidates_pruned for a in ordered)
            if generated or pruned:
                lines.append(
                    f"candidates: {generated} generated, {pruned} pruned "
                    "(from span counters)"
                )
        if self.events:
            counts = "  ".join(
                f"{name}: {count}"
                for name, count in sorted(self.events.items())
            )
            lines.append(f"events: {counts}")
        return "\n".join(lines)


def summarize_trace(path: Union[str, "Any"]) -> TraceSummary:
    """Digest one JSONL trace file (torn tails tolerated on read)."""
    records = read_events(path)
    summary = TraceSummary(path=str(path), records=len(records))
    for record in records:
        kind = record.get("type")
        if kind == "span":
            name = str(record.get("name", "?"))
            aggregate = summary.spans.get(name)
            if aggregate is None:
                aggregate = summary.spans[name] = SpanAggregate(name=name)
            aggregate.add(record)
        elif kind == "event":
            name = str(record.get("name", "?"))
            summary.events[name] = summary.events.get(name, 0) + 1
    return summary
