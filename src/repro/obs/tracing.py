"""Nested wall-clock spans and point events over a JSONL sink.

A :class:`Tracer` hands out :class:`Span`\\ s two ways:

* ``with tracer.span("batch.map") as span:`` — the common case: the
  span joins a stack, so nested ``span()`` calls parent automatically
  and the span ends (and is journaled) when the block exits, even on
  exceptions (the span is then annotated with the error class).
* ``tracer.start_span(...)`` / ``tracer.end_span(span)`` — explicit
  lifetimes for overlapping work (the resilient executor runs many
  per-attempt spans concurrently; a stack cannot model that).

Spans measure ``time.monotonic`` wall time.  Passing an
:class:`~repro.core.stats.EngineStats` record to ``span(...,
stats=...)`` snapshots its candidate counters at entry and annotates
the span with the deltas at exit — "this merge pass generated 1 204
candidates and pruned 890" falls out of the span record directly.

Everything is in-memory unless the tracer owns an
:class:`~repro.obs.events.EventSink`; then every finished span and
every event is also journaled as one JSONL record.  A
:data:`NULL_TRACER` no-op twin keeps call sites branch-free when
tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ObservabilityError
from .events import TRACE_VERSION, EventSink

#: EngineStats counters snapshot at span boundaries (entry vs exit).
_STATS_COUNTERS = (
    "candidates_generated", "candidates_pruned", "candidates_dead"
)


@dataclass
class Span:
    """One named, timed region of work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    _stats: Any = field(default=None, repr=False)
    _stats_entry: Optional[Dict[str, int]] = field(default=None, repr=False)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ObservabilityError(
                f"span {self.name!r} (id {self.span_id}) has not ended"
            )
        return self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the span (merged into the record)."""
        self.attributes.update(attributes)

    def to_record(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "v": TRACE_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.duration,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager binding one stacked span to a ``with`` block."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is not None:
            self._span.annotate(error=exc_type.__name__)
        self._tracer._end_stacked(self._span)


class Tracer:
    """Span/event collector; optionally journals to an event sink.

    ``clock`` defaults to ``time.monotonic`` (wall time immune to NTP
    steps); tests inject a fake clock for deterministic timings.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        clock=time.monotonic,
    ):
        self.sink = sink
        self._clock = clock
        self._next_id = 1
        self._stack: List[Span] = []
        #: finished spans, in end order (the natural JSONL order).
        self.spans: List[Span] = []
        #: point events, in emission order.
        self.events: List[Dict[str, Any]] = []

    # -- span lifecycle ----------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open stacked span (parent of new spans)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, stats: Any = None, **attributes: Any):
        """Open a stacked span; use as ``with tracer.span(...) as s:``."""
        opened = self.start_span(name, stats=stats, **attributes)
        self._stack.append(opened)
        return _SpanContext(self, opened)

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        stats: Any = None,
        **attributes: Any,
    ) -> Span:
        """Open a free-standing span (explicit ``end_span`` required).

        ``parent`` defaults to the innermost stacked span, so explicit
        per-attempt spans still nest under the batch span.
        """
        if parent is None:
            parent = self.current
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=self._clock(),
            attributes=dict(attributes),
        )
        self._next_id += 1
        if stats is not None:
            span._stats = stats
            span._stats_entry = {
                counter: getattr(stats, counter)
                for counter in _STATS_COUNTERS
            }
        return span

    def end_span(self, span: Span, **attributes: Any) -> Span:
        """Finish a span: stamp the end time, capture stats deltas,
        record it, and journal it to the sink (if any)."""
        if not span.open:
            raise ObservabilityError(
                f"span {span.name!r} (id {span.span_id}) already ended"
            )
        if attributes:
            span.annotate(**attributes)
        span.end = self._clock()
        if span._stats is not None and span._stats_entry is not None:
            for counter, entry in span._stats_entry.items():
                span.attributes[counter] = (
                    getattr(span._stats, counter) - entry
                )
            span._stats = None
        self.spans.append(span)
        if self.sink is not None:
            self.sink.emit(span.to_record())
        return span

    def _end_stacked(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} (id {span.span_id}) is not the "
                "innermost stacked span; span() blocks must nest"
            )
        self._stack.pop()
        self.end_span(span)

    # -- point events ------------------------------------------------------

    def event(self, name: str, **attributes: Any) -> Dict[str, Any]:
        """Emit a point-in-time event under the current span (if any)."""
        record = {
            "type": "event",
            "v": TRACE_VERSION,
            "name": name,
            "time": self._clock(),
            "span_id": None if self.current is None else self.current.span_id,
            "attributes": attributes,
        }
        self.events.append(record)
        if self.sink is not None:
            self.sink.emit(record)
        return record

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Close the owned sink; open stacked spans are a caller bug."""
        if self._stack:
            raise ObservabilityError(
                "tracer closed with open span(s): "
                + ", ".join(s.name for s in self._stack)
            )
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullSpan:
    """The do-nothing span the null tracer hands out everywhere."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    attributes: Dict[str, Any] = {}
    open = False
    duration = 0.0

    def annotate(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible no-op tracer: every call collapses to a constant.

    Call sites write ``tracer = tracer or NULL_TRACER`` once and then
    trace unconditionally; with the null tracer each call is a bare
    attribute lookup plus an immediate return, so disabled tracing adds
    no measurable cost (enforced by the bench overhead gate).
    """

    enabled = False
    sink = None
    spans: List[Span] = []
    events: List[Dict[str, Any]] = []
    current = None

    def span(self, name: str, stats: Any = None, **attributes: Any):
        return _NULL_SPAN

    def start_span(self, name, parent=None, stats=None, **attributes):
        return _NULL_SPAN

    def end_span(self, span, **attributes):
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: the shared no-op tracer (stateless, so one instance serves everyone).
NULL_TRACER = NullTracer()
