"""Zero-dependency counters / gauges / histograms with two exporters.

A :class:`MetricsRegistry` holds named metrics; each metric holds one
value (or histogram state) per label set.  Exporters:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` comments, ``name{label="v"} value``
  samples, histogram ``_bucket``/``_sum``/``_count`` series with
  cumulative ``le`` buckets);
* :meth:`MetricsRegistry.to_json` — a plain-dict view for programmatic
  consumers (``buffopt batch --json`` rides this).

:func:`parse_prometheus` parses the text format back into samples — the
round-trip is pinned by the obs test suite and powers
``buffopt trace summarize`` on ``.prom`` files.

Everything is process-local, and — since the service layer shares one
registry across HTTP handler and worker threads — **thread-safe**: each
metric guards its read-modify-write updates with its own lock, and
``samples()`` snapshots the state under that lock before yielding, so an
exporter running concurrently with writers sees a consistent point-in-
time view.  Worker-*process*-side telemetry still travels through
:class:`~repro.core.stats.EngineStats` as it always has.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: histogram bucket bounds in seconds, tuned for DP phase / net timings.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: a label set, normalized to a sorted tuple of (name, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ObservabilityError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


class _Metric:
    """Shared naming / label plumbing of the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        #: guards every read-modify-write; exporters snapshot under it.
        self._lock = threading.Lock()

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        """Yield ``(sample_name, label_key, value)`` triples."""
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (events, candidates, retries)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        with self._lock:
            snapshot = list(self._values.items())
        for key, value in snapshot:
            yield self.name, key, value


class Gauge(_Metric):
    """A value that can go anywhere (pressure ratios, frontier peaks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the running maximum (peaks across many runs)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = max(
                self._values.get(key, -math.inf), float(value)
            )

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        with self._lock:
            snapshot = list(self._values.items())
        for key, value in snapshot:
            yield self.name, key, value


class _HistogramState:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.bucket_counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds in ascending order; an implicit
    ``+Inf`` bucket always exists, so ``observe`` never loses a sample.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help)
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {buckets}"
            )
        self.buckets = ordered
        self._states: Dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[index] += 1
            state.sum += value
            state.count += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            state = self._states.get(_label_key(labels))
            return 0 if state is None else state.count

    def sum(self, **labels: Any) -> float:
        with self._lock:
            state = self._states.get(_label_key(labels))
            return 0.0 if state is None else state.sum

    def samples(self) -> Iterator[Tuple[str, LabelKey, float]]:
        with self._lock:
            snapshot = [
                (key, list(state.bucket_counts), state.sum, state.count)
                for key, state in self._states.items()
            ]
        for key, bucket_counts, state_sum, state_count in snapshot:
            for bound, bucket_count in zip(self.buckets, bucket_counts):
                le = key + (("le", _format_value(bound)),)
                yield f"{self.name}_bucket", tuple(sorted(le)), bucket_count
            inf = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket", tuple(sorted(inf)), state_count
            yield f"{self.name}_sum", key, state_sum
            yield f"{self.name}_count", key, state_count


class MetricsRegistry:
    """An ordered collection of metrics with idempotent registration.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered under the same kind (so call sites
    don't have to thread metric handles around) and raise when the name
    is reused under a different kind.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def _register(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, cannot re-register as a "
                        f"{cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # -- exporters ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, key, value in metric.samples():
                lines.append(
                    f"{sample_name}{_format_labels(key)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, Any]:
        """A plain-dict view: ``{name: {type, help, samples: [...]}}``."""
        out: Dict[str, Any] = {}
        for metric in self:
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": [
                    {
                        "name": sample_name,
                        "labels": dict(key),
                        "value": value,
                    }
                    for sample_name, key, value in metric.samples()
                ],
            }
        return out

    def write_prometheus(self, path) -> None:
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_prometheus(), encoding="utf-8")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Dict[LabelKey, float]]:
    """Parse exposition text into ``{sample_name: {label_key: value}}``.

    Covers exactly what :meth:`MetricsRegistry.to_prometheus` emits
    (including histogram ``_bucket``/``_sum``/``_count`` series and
    escaped label values); malformed sample lines raise
    :class:`~repro.errors.ObservabilityError`.
    """
    samples: Dict[str, Dict[LabelKey, float]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ObservabilityError(
                f"unparseable exposition line {number}: {line!r}"
            )
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for name, value in _LABEL_PAIR_RE.findall(raw):
                labels[name] = _unescape(value)
        key = tuple(sorted(labels.items()))
        samples.setdefault(match.group("name"), {})[key] = _parse_number(
            match.group("value")
        )
    return samples
