"""Opt-in phase profiling of the DP engines.

Both engines (:class:`repro.core.dp._Engine` and
:class:`repro.core.fast_engine.FastEngine`) dispatch their per-node
phases through ``self._merge_children`` / ``self._insert_buffers`` /
``self._apply_wire`` / ``self._prune``, so a profiler can wrap the
*instance* attributes — shadowing the class methods on one engine
object — without touching the hot path of unprofiled runs at all:
:func:`repro.core.dp.run_dp` installs the profiler only when
``DPOptions.profile`` is set, and the engines are byte-for-byte
untouched otherwise (the bench gate pins the ≤2 % disabled-overhead
contract).

Wrapping never changes arguments or return values, so profiled runs
stay bit-identical to unprofiled ones (asserted by the differential
obs tests, for both engines).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional

#: engine method -> canonical phase name (matches
#: :data:`repro.core.stats.PHASES` minus "finalize", which is not a
#: per-node method).
PHASE_METHODS = (
    ("_merge_children", "merge"),
    ("_insert_buffers", "buffering"),
    ("_apply_wire", "wire"),
    ("_prune", "prune"),
)


class PhaseProfiler:
    """Accumulates per-phase wall time and call counts across runs.

    One profiler may be installed on many engine instances (e.g. every
    net of a batch); the counters aggregate.  When ``metrics`` is given,
    each run's per-phase totals are also observed into the
    ``buffopt_dp_phase_seconds`` histogram at :meth:`finish` time —
    per-call observation would distort the very phases being measured.
    """

    def __init__(self, metrics=None, histogram_name: str = "buffopt_dp_phase_seconds"):
        self.phase_seconds: Dict[str, float] = {
            phase: 0.0 for _, phase in PHASE_METHODS
        }
        self.calls: Dict[str, int] = {phase: 0 for _, phase in PHASE_METHODS}
        self.runs = 0
        self._histogram = (
            None
            if metrics is None
            else metrics.histogram(
                histogram_name,
                "wall-clock seconds per DP phase per run",
            )
        )
        self._run_marks: Optional[Dict[str, float]] = None

    def install(self, engine: Any) -> Any:
        """Wrap the phase methods of one engine instance; returns it.

        Called by :func:`repro.core.dp.run_dp` right after engine
        construction when ``DPOptions.profile`` is set.
        """
        for method_name, phase in PHASE_METHODS:
            setattr(
                engine, method_name,
                self._wrap(getattr(engine, method_name), phase),
            )
        self.runs += 1
        self._run_marks = dict(self.phase_seconds)
        return engine

    def _wrap(self, bound_method, phase: str):
        seconds = self.phase_seconds
        calls = self.calls

        def timed(*args, **kwargs):
            start = perf_counter()
            try:
                return bound_method(*args, **kwargs)
            finally:
                seconds[phase] += perf_counter() - start
                calls[phase] += 1

        return timed

    def finish(self) -> Dict[str, float]:
        """Flush the latest run's per-phase totals to the histogram (if
        metered) and return them."""
        marks = self._run_marks or {phase: 0.0 for phase in self.phase_seconds}
        run = {
            phase: self.phase_seconds[phase] - marks.get(phase, 0.0)
            for phase in self.phase_seconds
        }
        self._run_marks = None
        if self._histogram is not None:
            for phase, spent in run.items():
                self._histogram.observe(spent, phase=phase)
        return run

    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def describe(self) -> str:
        total = self.total_seconds()
        lines = [
            f"profiled {self.runs} run(s), "
            f"{total * 1e3:.2f} ms in phase methods"
        ]
        for _, phase in PHASE_METHODS:
            spent = self.phase_seconds[phase]
            share = 0.0 if total <= 0 else 100.0 * spent / total
            lines.append(
                f"  {phase:10s} {spent * 1e3:9.2f} ms  ({share:5.1f}%)  "
                f"{self.calls[phase]} call(s)"
            )
        return "\n".join(lines)
