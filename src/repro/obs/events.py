"""JSONL event sink: the durable backend of the tracing layer.

One :class:`EventSink` owns one append-only JSONL file.  The writer
discipline is the same torn-tail-tolerant one the batch checkpoint
journal uses (:mod:`repro.batch.checkpoint`): every record is a single
``json.dumps`` line flushed per write, so a ``kill -9`` loses at most
the record in flight; :func:`read_events` skips a torn *final* line but
raises on interior corruption, which indicates real damage rather than
an interrupted write.

Records are plain dicts; the tracing layer writes ``{"type": "span",
...}`` and ``{"type": "event", ...}`` records (see
:mod:`repro.obs.tracing`), but the sink itself is schema-agnostic so
other subsystems can journal through it too.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, TextIO, Union

from ..errors import ObservabilityError

#: bump when the trace record schema changes incompatibly.
TRACE_VERSION = 1


class EventSink:
    """Append-only JSONL writer, flushed per record.

    ``fsync=True`` additionally fsyncs every record (the checkpoint
    journal's durability level); the default leaves durability to the
    OS because traces are diagnostics, not recovery state.

    Writes are serialized by an internal lock, so concurrent server
    handler threads can share one sink without interleaved or torn
    lines (the obs concurrency test hammers this).
    """

    def __init__(
        self,
        path: Union[str, Path],
        append: bool = False,
        fsync: bool = False,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle: TextIO = self.path.open(
            "a" if append else "w", encoding="utf-8"
        )
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as one flushed JSONL line."""
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._handle.closed:
                raise ObservabilityError(
                    f"event sink {self.path} is closed; no further records "
                    "can be written"
                )
            self._handle.write(line)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every record of a JSONL trace, tolerating a torn tail.

    A torn *final* line (the writer was killed mid-``write``) is
    silently dropped; a torn interior line raises
    :class:`~repro.errors.ObservabilityError` because it means the file
    was corrupted, not merely interrupted.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    records: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines):
                break  # torn final line: the writer was killed mid-write
            raise ObservabilityError(
                f"trace {path} line {number} is corrupt"
            ) from None
    return records
