"""Structured observability: tracing, metrics, profiling, trace digestion.

Zero-dependency instrumentation for the whole stack, carrying one hard
contract: **no overhead when off**.  Every hook is either gated by a
single ``is None`` check (the DP ``profile=`` hook) or routed through
:data:`~repro.obs.tracing.NULL_TRACER` (batch / resilience / fuzz call
sites), and instrumentation never changes candidate arithmetic — traced
runs are bit-identical to untraced ones (pinned by the obs differential
tests and the bench overhead gate).

Layers:

* :mod:`repro.obs.tracing` — :class:`Tracer` with nested spans (stacked
  or explicit for overlapping work), point events, EngineStats deltas
  captured at span boundaries;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters /
  gauges / histograms with Prometheus-text and JSON exporters (and a
  parser for round-trips);
* :mod:`repro.obs.events` — the JSONL :class:`EventSink` (checkpoint-
  journal writer discipline: flush per record, torn tails tolerated);
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`, the opt-in wrapper
  around the DP phase methods of both engines;
* :mod:`repro.obs.summary` — ``buffopt trace summarize`` digestion.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from .events import TRACE_VERSION, EventSink, read_events
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .profile import PHASE_METHODS, PhaseProfiler
from .summary import SpanAggregate, TraceSummary, summarize_trace
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventSink",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_METHODS",
    "PhaseProfiler",
    "Span",
    "SpanAggregate",
    "TRACE_VERSION",
    "TraceSummary",
    "Tracer",
    "parse_prometheus",
    "read_events",
    "summarize_trace",
]
