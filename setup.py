"""Setuptools shim.

The execution environment has no `wheel` package and no network, so PEP
660 editable installs (which build a wheel) fail; this setup.py lets
`pip install -e .` take the legacy `setup.py develop` path.  Metadata
lives here; tool configuration stays in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Alpert/Devgan/Quay, 'Buffer Insertion for Noise "
        "and Delay Optimization' (DAC 1998 / TCAD 1999)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "pytest-cov"],
    },
    entry_points={"console_scripts": ["buffopt = repro.cli:main"]},
)
