"""Figure bench: the Theorem 1/2 characterization sweeps.

The paper's evaluation section is table-only; its theory figures (maximum
noise-safe length behaviour, the Fig. 7 iterated spacing, the Theorem 2
existence curve) are regenerated here as data series with their shapes
asserted, and written to ``results/figures.txt``.
"""

from conftest import write_result

from repro.experiments import build_all_figures, format_figures
from repro.experiments.figures import (
    spacing_by_buffer,
    theorem1_vs_driver_resistance,
    theorem2_margin_curve,
)


def test_figures_sweeps(benchmark, experiment, results_dir):
    series = benchmark(build_all_figures, experiment)
    assert len(series) >= 5

    lmax = theorem1_vs_driver_resistance(experiment)
    assert all(a > b for a, b in zip(lmax.y, lmax.y[1:]))  # monotone down

    first, repeat, ceiling = spacing_by_buffer(experiment)
    assert all(y < ceiling.y[0] for y in repeat.y)  # under driverless bound

    t2 = theorem2_margin_curve(experiment)
    # superlinear growth: doubling the span more than doubles the noise
    assert t2.y[-1] > 2 * t2.y[len(t2.y) // 2 - 1]

    write_result(results_dir, "figures.txt", format_figures(series))
