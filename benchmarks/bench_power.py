"""Power bench: the accumulator's cost and the power-capped fleet.

Standalone script (what CI runs in ``--smoke`` mode)::

    PYTHONPATH=src python benchmarks/bench_power.py           # full
    PYTHONPATH=src python benchmarks/bench_power.py --smoke   # quick CI

Three measurements:

1. **Zero-cost identity** — one chain net (60 sinks in smoke, 150
   full), both modes, all three engines, timed with and without a
   power model.  The power-off runs must stay bit-identical between
   reference and fast — the accumulator may cost nothing when absent.
   The power-on factor per engine/mode is measured and *reported*,
   not gated: a power run keeps a per-count (slack, power) frontier
   where the power-off DP keeps one best slack, so it solves a
   strictly larger problem — the number here prices that frontier,
   it is not an "accumulator overhead".
2. **Power-capped fleet** — the :mod:`repro.workloads` power family
   (12 nets smoke, 60 full) in delay mode, where the zero-buffer
   outcome always survives and every cap is feasible by construction:
   ``power_capped`` must answer without raising on every net, the
   majority of caps must *bind* (the capped choice gives up slack
   against the uncapped optimum), and every selected solution must
   survive the certificate's independent power re-derivation.
3. The full run writes ``BENCH_power.json`` at the repo root — the
   overhead ratios and fleet stats with git SHA / seed attribution, so
   the power path's cost trajectory stays diffable across PRs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter

from repro.core.dp import DPOptions, run_dp
from repro.library.buffers import default_buffer_library
from repro.library.power import default_power_model
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.verify import certify_claim
from repro.workloads import (
    PowerWorkloadConfig,
    WorkloadConfig,
    generate_power_population,
)

from bench_engines import EIGHT_BUFFER_NAMES, chain_net

MODES = ("delay", "buffopt")
ENGINE_ORDER = ("reference", "fast", "lishi")


def _signature(result):
    return tuple(
        (o.buffer_count, o.slack, o.noise_feasible, tuple(
            sorted((i.node, i.buffer.name) for i in o.insertions)
        ))
        for o in result.outcomes
    )


def power_overhead(sinks: int, repeats: int):
    """Best-of-``repeats`` (mode, engine) timings, power off vs on.

    Returns ``{mode: {engine: {"off_s", "on_s", "overhead"}}}`` and
    asserts the power-off identity contracts along the way.
    """
    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    power = default_power_model()
    tree = chain_net(sinks)
    timings = {}
    for mode in MODES:
        noise_aware = mode == "buffopt"
        per_engine = {}
        off_results = {}
        for engine in ENGINE_ORDER:
            off_best = on_best = float("inf")
            for _ in range(repeats):
                start = perf_counter()
                off = run_dp(tree, library, coupling, DPOptions(
                    noise_aware=noise_aware, track_counts=True,
                    max_buffers=4, engine=engine,
                ))
                off_best = min(off_best, perf_counter() - start)

                start = perf_counter()
                on = run_dp(tree, library, coupling, DPOptions(
                    noise_aware=noise_aware, track_counts=True,
                    max_buffers=4, engine=engine, power=power,
                ))
                on_best = min(on_best, perf_counter() - start)
            off_results[engine] = off
            assert all(o.power == 0.0 for o in off.outcomes), (
                f"{mode} [{engine}]: power-off outcomes carry power"
            )
            assert all(o.power > 0.0 for o in on.outcomes), (
                f"{mode} [{engine}]: power-on outcomes carry no power"
            )
            per_engine[engine] = {
                "off_s": off_best,
                "on_s": on_best,
                "overhead": on_best / off_best - 1.0,
            }
        assert _signature(off_results["reference"]) == \
            _signature(off_results["fast"]), (
                f"{mode}: power-off fast diverged from reference"
            )
        timings[mode] = per_engine
    return timings


def power_fleet(nets: int, seed: int):
    """The power-capped family end to end; returns (ok, stats)."""
    config = PowerWorkloadConfig(
        base=WorkloadConfig(nets=nets, seed=seed), noise_aware=False,
    )
    library = default_buffer_library()
    power = default_power_model()
    coupling = CouplingModel.silent()
    binding = certified = 0
    ok = True
    population = generate_power_population(config, library, power)
    start = perf_counter()
    for net in population:
        result = run_dp(net.tree, library, coupling, DPOptions(
            noise_aware=False, power=power,
        ))
        try:
            chosen = result.select(net.objective)
        except Exception as exc:  # InfeasibleError means a broken cap
            print(
                f"FAIL: {net.name}: cap {net.power_cap!r} infeasible: "
                f"{exc}",
                file=sys.stderr,
            )
            ok = False
            continue
        if chosen.power > net.power_cap:
            print(
                f"FAIL: {net.name}: selected power {chosen.power!r} "
                f"exceeds the cap {net.power_cap!r}",
                file=sys.stderr,
            )
            ok = False
        best = max(o.slack for o in result.outcomes)
        if chosen.slack < best:
            binding += 1
        certificate = certify_claim(
            net.tree,
            {i.node: i.buffer for i in chosen.insertions},
            coupling,
            claimed_slack=chosen.slack,
            claimed_noise_feasible=chosen.noise_feasible,
            claimed_buffer_count=chosen.buffer_count,
            claimed_power=chosen.power,
            power_model=power,
        )
        if certificate.ok:
            certified += 1
        else:
            print(
                f"FAIL: {net.name}: {certificate.describe()}",
                file=sys.stderr,
            )
            ok = False
    seconds = perf_counter() - start
    if certified != len(population):
        ok = False
    stats = {
        "nets": len(population),
        "binding": binding,
        "certified": certified,
        "fleet_s": round(seconds, 3),
    }
    print(
        f"power fleet: {stats['nets']} nets, caps all feasible, "
        f"{binding} binding, {certified}/{stats['nets']} "
        f"certificate-clean in {seconds:.2f}s"
    )
    if binding < len(population) // 2:
        print(
            f"FAIL: caps bind on only {binding} of {len(population)} "
            "nets — the family lost its teeth",
            file=sys.stderr,
        )
        ok = False
    return ok, stats


def write_artifact(path, sinks, repeats, seed, timings, fleet_stats, smoke):
    from conftest import _git_sha

    modes = {}
    for mode, per_engine in timings.items():
        modes[mode] = {
            engine: {
                "off_ms": round(t["off_s"] * 1e3, 3),
                "on_ms": round(t["on_s"] * 1e3, 3),
                "power_on_factor": round(t["on_s"] / t["off_s"], 2),
            }
            for engine, t in per_engine.items()
        }
    artifact = {
        "kind": "power-bench",
        "sinks": sinks,
        "library": list(EIGHT_BUFFER_NAMES),
        "repeats": repeats,
        "seed": seed,
        "smoke": smoke,
        "git_sha": _git_sha(),
        "modes": modes,
        "fleet": fleet_stats,
    }
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # 150 sinks keeps the full power-on sweep to ~30s: the (slack,
    # power) frontier makes each run ~20-100x a power-off one.
    parser.add_argument("--sinks", type=int, default=150)
    parser.add_argument("--nets", type=int, default=60)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1]
        / "BENCH_power.json",
        help="where the full run writes its JSON artifact",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small net + fleet, correctness-only (CI gate, no perf "
        "assertions, no artifact)",
    )
    args = parser.parse_args(argv)

    sinks = 60 if args.smoke else args.sinks
    nets = 12 if args.smoke else args.nets
    repeats = 2 if args.smoke else args.repeats

    print(f"power bench: {sinks}-sink chain, 8-buffer library, "
          f"best of {repeats}")
    timings = power_overhead(sinks, repeats)
    for mode, per_engine in timings.items():
        for engine in ENGINE_ORDER:
            t = per_engine[engine]
            print(
                f"{mode:8s} {engine:9s}: off {t['off_s'] * 1e3:9.2f} ms   "
                f"on {t['on_s'] * 1e3:9.2f} ms   "
                f"({t['on_s'] / t['off_s']:.1f}x — the (slack, power) "
                "frontier, reported not gated)"
            )
    print("power-off identity held on every engine/mode")

    ok, fleet_stats = power_fleet(nets, args.seed)
    if not ok:
        return 1

    if args.smoke:
        return 0

    write_artifact(
        args.out, sinks, repeats, args.seed, timings, fleet_stats,
        args.smoke,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
