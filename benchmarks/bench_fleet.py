"""Fleet-machinery bench: shard throughput, fold overhead, ECO reuse.

Standalone script (what CI's fleet lane runs in ``--smoke`` mode)::

    PYTHONPATH=src python benchmarks/bench_fleet.py           # 100k records
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke   # quick CI

Three measurements, none of which run the DP at scale (the DP has its
own benches — this lane times the *fleet* layer that PR 8 added):

* **shard append + recovery throughput** — synthetic records journaled
  across 1/4/16 shards (fsync off, the fleet setting), then recovered;
  prints records/s for both directions.
* **streaming-fold overhead** — a real small fleet run retained vs
  streamed; the streamed run must not be materially slower (asserted
  only against gross regression: > 1.5x).
* **ECO reuse** — one subtree edit on a segmented tree, cold re-run vs
  frontier-cache re-run; prints the reuse fraction and the speedup, and
  asserts the cached run reuses >= 50 % of node visits.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    ShardedCheckpoint,
    load_sharded_checkpoint,
)
from repro.library.buffers import default_buffer_library
from repro.workloads import WorkloadConfig, population_specs

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))
from fleet_smoke import synthetic_results  # noqa: E402


def shard_throughput(records, shard_counts):
    library = default_buffer_library()
    fingerprint = {"bench": "fleet", "records": records}
    for shards in shard_counts:
        workdir = Path(tempfile.mkdtemp(prefix="bench-fleet-"))
        try:
            directory = workdir / "fleet.ckpt"
            checkpoint = ShardedCheckpoint.create(
                directory, shards, fingerprint, fsync=False
            )
            start = perf_counter()
            for result in synthetic_results(records, library):
                checkpoint.append(result)
            checkpoint.close()
            append_s = perf_counter() - start

            start = perf_counter()
            recovery = load_sharded_checkpoint(
                directory, library, fingerprint=fingerprint
            )
            recover_s = perf_counter() - start
            assert len(recovery.results) == records
            print(
                f"shards={shards:3d}  append {records / append_s:9.0f} "
                f"rec/s ({append_s:.2f} s)   recover "
                f"{records / recover_s:9.0f} rec/s ({recover_s:.2f} s)"
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


def fold_overhead(nets, repeats):
    workload = WorkloadConfig(nets=nets, seed=13)
    specs = population_specs(workload)
    config = BatchConfig(max_buffers=4, keep_trees=False)

    def best_of(stream):
        times = []
        for _ in range(repeats):
            start = perf_counter()
            BatchOptimizer(config=config, workload=workload).optimize(
                specs, stream_report=stream
            )
            times.append(perf_counter() - start)
        return min(times)

    retained_s, streamed_s = best_of(False), best_of(True)
    ratio = streamed_s / retained_s
    print(
        f"streaming-fold overhead: {ratio:.3f}x "
        f"({retained_s:.2f} s retained vs {streamed_s:.2f} s streamed, "
        f"{nets} nets, best of {repeats})"
    )
    return ratio


def eco_reuse():
    from repro import (
        CouplingModel, DriverCell, TreeBuilder, default_technology,
    )
    from repro.api import dp_result
    from repro.core import FrontierCache
    from repro.tree.segmenting import segment_tree
    from repro.units import FF, PS, UM

    tech = default_technology()
    builder = TreeBuilder(tech)
    builder.add_source(
        "so",
        driver=DriverCell("drv", resistance=250.0, intrinsic_delay=30 * PS),
    )
    builder.add_internal("root")
    builder.add_wire("so", "root", length=800 * UM)
    frontier, serial = ["root"], 0
    for level in range(5):
        nxt = []
        for parent in frontier:
            for _ in range(2):
                serial += 1
                if level == 4:
                    node = f"s{serial}"
                    builder.add_sink(
                        node, capacitance=(10 + (serial % 7) * 3) * FF,
                        noise_margin=0.8,
                        required_arrival=(1500 + 100 * (serial % 5)) * PS,
                    )
                else:
                    node = f"i{serial}"
                    builder.add_internal(node)
                builder.add_wire(
                    parent, node, length=(400 + 150 * (serial % 4)) * UM
                )
                nxt.append(node)
        frontier = nxt
    tree = segment_tree(builder.build("bench_eco"), 500 * UM)
    library = default_buffer_library()
    coupling = CouplingModel.estimation_mode(tech)

    cache = FrontierCache()
    dp_result(tree, library, coupling, frontier_cache=cache)
    sink = next(n for n in tree.postorder() if n.sink is not None)
    sink.parent_wire.resistance *= 1.11

    start = perf_counter()
    dp_result(tree, library, coupling)
    cold_s = perf_counter() - start
    reused0, computed0 = cache.reused_nodes, cache.computed_nodes
    start = perf_counter()
    dp_result(tree, library, coupling, frontier_cache=cache)
    warm_s = perf_counter() - start
    reused = cache.reused_nodes - reused0
    computed = cache.computed_nodes - computed0
    fraction = reused / (reused + computed)
    print(
        f"ECO after 1-subtree edit: reused {reused}/{reused + computed} "
        f"node visits ({fraction:.0%}), {cold_s / max(warm_s, 1e-9):.1f}x "
        f"faster than cold ({cold_s:.2f} s -> {warm_s:.2f} s)"
    )
    return fraction


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=100_000)
    parser.add_argument("--fold-nets", type=int, default=60)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI sizing: 20k records, 16-net fold, single repeat",
    )
    args = parser.parse_args(argv)

    records = 20_000 if args.smoke else args.records
    fold_nets = 16 if args.smoke else args.fold_nets
    repeats = 1 if args.smoke else 3

    shard_throughput(records, (1, 4, 16))
    ratio = fold_overhead(fold_nets, repeats)
    fraction = eco_reuse()

    failures = []
    if ratio > 1.5:
        failures.append(f"streaming fold {ratio:.2f}x slower than retained")
    if fraction < 0.5:
        failures.append(f"ECO reuse only {fraction:.0%} (target >= 50%)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
