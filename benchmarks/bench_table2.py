"""Table II bench: detailed (transient) verification before/after BuffOpt.

Times the 3dnoise-role verifier over the whole population and regenerates
Table II.  Asserted shape (paper: 423 metric / 386 detailed before, 0/0
after): most nets violate before, the detailed count is a subset of the
metric count, and after BuffOpt both analyses report zero.
"""

from conftest import write_result

from repro.experiments import build_table2, format_table2


def test_table2_detailed_verification(
    benchmark, experiment, population_run, results_dir
):
    table = benchmark.pedantic(
        build_table2,
        args=(experiment, population_run),
        rounds=1,
        iterations=1,
    )
    assert table.metric_before > 0.5 * table.nets
    assert table.detailed_before <= table.metric_before
    assert table.detailed_only_before == 0  # Devgan is an upper bound
    assert table.metric_after == 0
    assert table.detailed_after == 0
    write_result(results_dir, "table2.txt", format_table2(table))
