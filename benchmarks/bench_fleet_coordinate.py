"""Fleet-coordination bench: convergence gate, overhead, duality gap.

Standalone script (what CI's fleet-coordinate lane runs in ``--smoke``
mode)::

    PYTHONPATH=src python benchmarks/bench_fleet_coordinate.py
    PYTHONPATH=src python benchmarks/bench_fleet_coordinate.py --smoke

Three measurements over seeded spec fleets on a deliberately tight
shared-site fabric:

* **convergence gate** — the price loop must reach a capacity-feasible
  round *within the round budget without the repair pass* (repair is
  the safety net, not the mechanism; a coordinator that always leans on
  it has a broken price loop).  Prints rounds-to-feasibility and
  re-optimization counts.
* **coordination overhead** — wall time of the coordinated run against
  the uncoordinated single-pass batch of the same fleet; prints the
  multiple and the re-optimization ratio (total DP runs / fleet size).
* **duality gap** — in delay mode the run reports a Lagrangian dual
  bound; the gate asserts ``primal <= dual`` and prints the relative
  gap, the paper-style certificate that the coordinated solution is
  near-optimal, not merely feasible.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from repro.batch import BatchConfig, BatchOptimizer
from repro.fleet import FleetConfig, FleetCoordinator, PriceSchedule
from repro.units import PS
from repro.workloads import WorkloadConfig, population_specs


def coordinated_run(specs, workload, config):
    coordinator = FleetCoordinator(config=config, workload=workload)
    start = perf_counter()
    result = coordinator.coordinate(specs)
    return result, perf_counter() - start


def uncoordinated_run(specs, workload, batch_config):
    optimizer = BatchOptimizer(config=batch_config, workload=workload)
    start = perf_counter()
    report = optimizer.optimize(specs)
    return report, perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nets", type=int, default=48)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument("--sites", type=int, default=6)
    parser.add_argument("--capacity", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=25)
    parser.add_argument(
        "--step", type=float, default=20 * PS,
        help="initial subgradient step (default 20 ps on the slack scale)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fleet, correctness-only (CI gate, no perf assertions)",
    )
    parser.add_argument(
        "--out", help="write the measured numbers as JSON to this path",
    )
    args = parser.parse_args(argv)

    nets = 16 if args.smoke else args.nets
    sites = 4 if args.smoke else args.sites
    capacity = 2 if args.smoke else args.capacity
    workload = WorkloadConfig(nets=nets, seed=args.seed)
    specs = population_specs(workload)

    batch_config = BatchConfig(mode="delay", keep_trees=False)
    config = FleetConfig(
        batch=batch_config,
        sites_per_family=sites,
        base_capacity=capacity,
        max_rounds=args.rounds,
        schedule=PriceSchedule(step=args.step),
        repair=False,  # the gate is on the price loop, not the safety net
        tight_bound=True,
    )
    print(
        f"fleet-coordinate bench: {nets} nets over {sites} shared sites "
        f"(capacity {capacity}), budget {args.rounds} rounds"
    )

    result, fleet_s = coordinated_run(specs, workload, config)
    reoptimizations = sum(r.reoptimized for r in result.rounds)
    print(
        f"convergence: {len(result.rounds)} rounds, "
        f"{reoptimizations} re-optimizations "
        f"({reoptimizations / nets:.2f} DP runs per net), {fleet_s:.2f} s"
    )
    if not result.converged:
        print(
            f"FAIL: price loop did not reach feasibility in "
            f"{args.rounds} rounds (max violation "
            f"{result.rounds[-1].max_violation})",
            file=sys.stderr,
        )
        return 1
    if result.failed_count:
        print(f"FAIL: {result.failed_count} nets failed", file=sys.stderr)
        return 1

    _, batch_s = uncoordinated_run(specs, workload, batch_config)
    overhead = fleet_s / batch_s if batch_s > 0 else float("inf")
    print(
        f"overhead: coordinated {fleet_s:.2f} s vs uncoordinated "
        f"{batch_s:.2f} s ({overhead:.2f}x)"
    )

    primal = result.primal_total
    dual = result.dual_bound
    if primal is None or dual is None:
        print("FAIL: delay-mode run reported no primal/dual pair",
              file=sys.stderr)
        return 1
    if primal > dual + 1e-12 + 1e-9 * abs(dual):
        print(
            f"FAIL: weak duality violated (primal {primal!r} > "
            f"dual {dual!r})",
            file=sys.stderr,
        )
        return 1
    gap = dual - primal
    rel = gap / abs(dual) if dual else 0.0
    print(
        f"duality gap: primal {primal:.3e} s, dual {dual:.3e} s "
        f"(gap {gap:.3e} s, {100 * rel:.2f}% of the bound)"
    )

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({
                "kind": "bench-fleet-coordinate",
                "smoke": args.smoke,
                "nets": nets,
                "sites": sites,
                "capacity": capacity,
                "rounds": len(result.rounds),
                "reoptimizations": reoptimizations,
                "coordinated_seconds": fleet_s,
                "uncoordinated_seconds": batch_s,
                "primal_total": primal,
                "dual_bound": dual,
                "duality_gap": gap,
            }, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.smoke:
        return 0
    # Full mode additionally gates on the loop being *economical*: the
    # coordinated run must not spend more than round-budget DP runs per
    # net (targeted re-optimization is the point of the price loop).
    if reoptimizations > nets * args.rounds / 2:
        print(
            f"FAIL: {reoptimizations} re-optimizations for {nets} nets — "
            "targeting is not pruning the per-round re-runs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
