"""Batch engine bench: serial vs multiprocessing throughput.

Two entry points:

* standalone script (what CI runs in ``--smoke`` mode)::

      PYTHONPATH=src python benchmarks/bench_batch.py            # 200 nets
      PYTHONPATH=src python benchmarks/bench_batch.py --smoke    # quick CI

  Runs the same generated workload through the serial, process, and
  chunked executors, checks the three report signatures are identical,
  and prints a throughput comparison.  Exits non-zero if the executors
  disagree, or if multiprocessing fails to beat serial on a multi-core
  host for a full-size (>= 200 net) run.  On single-CPU hosts the
  speedup is reported but not asserted — there is nothing to win.

* pytest bench (rides the existing suite)::

      pytest benchmarks/bench_batch.py --benchmark-only
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    default_worker_count,
    make_executor,
)
from repro.workloads import WorkloadConfig, population_specs


def run_fleet(specs, workload, executor, mode="buffopt", collect_stats=False):
    optimizer = BatchOptimizer(
        config=BatchConfig(
            mode=mode,
            max_buffers=4,
            collect_stats=collect_stats,
            keep_trees=False,
        ),
        executor=executor,
        workload=workload,
    )
    return optimizer.optimize(specs)


def compare_executors(nets, seed, workers, chunk_size, mode):
    workload = WorkloadConfig(nets=nets, seed=seed)
    specs = population_specs(workload)
    reports = {}
    for executor in (
        make_executor("serial"),
        make_executor("process", workers=workers),
        make_executor("chunked", workers=workers, chunk_size=chunk_size),
    ):
        start = perf_counter()
        report = run_fleet(specs, workload, executor, mode=mode)
        elapsed = perf_counter() - start
        reports[executor.name] = (report, elapsed)
        print(
            f"{executor.describe():34s} {nets / elapsed:8.2f} nets/s  "
            f"({elapsed:.2f} s, {report.total_buffers()} buffers, "
            f"{report.failure_count} infeasible)"
        )
    return reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nets", type=int, default=200)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the parallel executors (default: all CPUs, "
        "min 2 so the pool machinery is always exercised)",
    )
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--mode", choices=["buffopt", "delay"],
                        default="buffopt")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fleet, correctness-only (CI gate, no perf assertions)",
    )
    args = parser.parse_args(argv)

    nets = 24 if args.smoke else args.nets
    cpus = default_worker_count()
    # Always exercise a real pool, even on one CPU: correctness of the
    # process path matters everywhere; its speed only where cores exist.
    workers = args.workers or max(2, cpus)

    print(f"batch bench: {nets} nets, mode={args.mode}, "
          f"{cpus} CPUs, {workers} workers")
    reports = compare_executors(
        nets, args.seed, workers, args.chunk_size, args.mode
    )

    signatures = {
        name: report.signatures() for name, (report, _) in reports.items()
    }
    baseline = signatures["serial"]
    for name, signature in signatures.items():
        if signature != baseline:
            print(f"FAIL: executor {name!r} diverged from serial results",
                  file=sys.stderr)
            return 1
    print("all executors returned identical solutions")

    serial_s = reports["serial"][1]
    best_parallel = min(reports["process"][1], reports["chunked"][1])
    speedup = serial_s / best_parallel
    print(f"best parallel speedup over serial: {speedup:.2f}x")
    if args.smoke:
        return 0
    if cpus > 1 and nets >= 200 and speedup <= 1.0:
        print(
            f"FAIL: multiprocessing did not beat serial on {cpus} CPUs",
            file=sys.stderr,
        )
        return 1
    if cpus == 1:
        print("single-CPU host: speedup not asserted "
              "(pool overhead only; re-run on a multi-core machine)")
    return 0


# -- pytest-benchmark integration (shares the suite's fixtures) ------------


def test_batch_serial_vs_process(benchmark, experiment, results_dir):
    from conftest import write_result

    # Reuse the session experiment's workload but a small fleet: this
    # bench times executor overhead, not the DP itself.
    workload = WorkloadConfig(nets=min(60, len(experiment.nets)),
                             seed=experiment.workload.seed)
    specs = population_specs(workload)

    serial = benchmark(
        lambda: run_fleet(specs, workload, make_executor("serial"))
    )
    start = perf_counter()
    parallel = run_fleet(
        specs, workload, make_executor("process", workers=max(2, default_worker_count()))
    )
    parallel_s = perf_counter() - start
    assert parallel.signatures() == serial.signatures()

    text = "\n".join([
        f"batch bench ({len(specs)} nets, buffopt, max_buffers=4)",
        f"serial:  {serial.nets_per_second():8.2f} nets/s",
        f"process: {len(specs) / parallel_s:8.2f} nets/s "
        f"({default_worker_count()} CPUs)",
    ])
    write_result(results_dir, "batch.txt", text)


if __name__ == "__main__":
    raise SystemExit(main())
