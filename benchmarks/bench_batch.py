"""Batch engine bench: serial vs multiprocessing throughput.

Two entry points:

* standalone script (what CI runs in ``--smoke`` mode)::

      PYTHONPATH=src python benchmarks/bench_batch.py            # 200 nets
      PYTHONPATH=src python benchmarks/bench_batch.py --smoke    # quick CI

  Runs the same generated workload through the serial, process, and
  chunked executors, checks the three report signatures are identical,
  and prints a throughput comparison.  Exits non-zero if the executors
  disagree, or if multiprocessing fails to beat serial on a multi-core
  host for a full-size (>= 200 net) run.  On single-CPU hosts the
  speedup is reported but not asserted — there is nothing to win.

  Two resilience measurements ride along: the happy-path overhead of
  the per-net :class:`~repro.core.budget.RunBudget` guard (target
  < 3 %, asserted only against gross regression), and a drill run with
  1 % injected faults through the :class:`~repro.batch.ResilientExecutor`
  (healthy nets must stay bit-identical to the serial baseline).

* pytest bench (rides the existing suite)::

      pytest benchmarks/bench_batch.py --benchmark-only
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.batch import (
    BatchConfig,
    BatchOptimizer,
    default_worker_count,
    make_executor,
)
from repro.workloads import WorkloadConfig, population_specs


def run_fleet(
    specs,
    workload,
    executor,
    mode="buffopt",
    collect_stats=False,
    faults=None,
    **config_kwargs,
):
    optimizer = BatchOptimizer(
        config=BatchConfig(
            mode=mode,
            max_buffers=4,
            collect_stats=collect_stats,
            keep_trees=False,
            **config_kwargs,
        ),
        executor=executor,
        workload=workload,
        faults=faults,
    )
    return optimizer.optimize(specs)


def compare_executors(nets, seed, workers, chunk_size, mode):
    workload = WorkloadConfig(nets=nets, seed=seed)
    specs = population_specs(workload)
    reports = {}
    for executor in (
        make_executor("serial"),
        make_executor("process", workers=workers),
        make_executor("chunked", workers=workers, chunk_size=chunk_size),
    ):
        start = perf_counter()
        report = run_fleet(specs, workload, executor, mode=mode)
        elapsed = perf_counter() - start
        reports[executor.name] = (report, elapsed)
        print(
            f"{executor.describe():34s} {nets / elapsed:8.2f} nets/s  "
            f"({elapsed:.2f} s, {report.total_buffers()} buffers, "
            f"{report.failure_count} infeasible)"
        )
    return reports


def budget_overhead(specs, workload, mode, repeats=3):
    """Happy-path cost of the per-node budget check, in percent.

    Times the serial fleet with budgets disabled and with a generous
    (never-tripping) budget enabled, best-of-``repeats`` each to shave
    scheduler noise, and verifies the guarded run is bit-identical.
    """
    def best_of(**config_kwargs):
        times, report = [], None
        for _ in range(repeats):
            start = perf_counter()
            report = run_fleet(
                specs, workload, make_executor("serial"), mode=mode,
                **config_kwargs,
            )
            times.append(perf_counter() - start)
        return min(times), report

    bare_s, bare = best_of()
    guarded_s, guarded = best_of(
        net_deadline=3600.0, net_max_candidates=10**9
    )
    if guarded.signatures() != bare.signatures():
        return None, bare
    overhead = (guarded_s - bare_s) / bare_s * 100.0
    print(
        f"budget-guard overhead: {overhead:+.2f}% "
        f"({bare_s:.3f} s bare vs {guarded_s:.3f} s guarded, "
        f"best of {repeats}; target < 3%)"
    )
    return overhead, bare


def fault_drill(specs, workload, mode, baseline, rate=0.01):
    """Run the fleet with ``rate`` injected transient faults through the
    resilient executor; healthy-net signatures must match ``baseline``."""
    from repro.batch import FaultPlan, ResilientExecutor, RetryPolicy

    # At least one fault, even on smoke-size fleets where 1% rounds to 0.
    plan = FaultPlan.sample(
        [spec.name for spec in specs],
        rate=max(rate, 1.0 / len(specs)),
        seed=7,
        kind="raise",
    )
    executor = ResilientExecutor(
        workers=max(2, default_worker_count()),
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.005),
    )
    start = perf_counter()
    report = run_fleet(specs, workload, executor, mode=mode, faults=plan)
    elapsed = perf_counter() - start
    print(
        f"fault drill ({plan.describe()}): "
        f"{len(specs) / elapsed:8.2f} nets/s  ({elapsed:.2f} s, "
        f"{report.retry_count()} retries, "
        f"{report.failure_count} unrecovered)"
    )
    ok = report.failure_count == 0 and (
        report.signatures() == baseline.signatures()
    )
    if not ok:
        print("FAIL: fault drill diverged from the serial baseline",
              file=sys.stderr)
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nets", type=int, default=200)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the parallel executors (default: all CPUs, "
        "min 2 so the pool machinery is always exercised)",
    )
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--mode", choices=["buffopt", "delay"],
                        default="buffopt")
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fleet, correctness-only (CI gate, no perf assertions)",
    )
    args = parser.parse_args(argv)

    nets = 24 if args.smoke else args.nets
    cpus = default_worker_count()
    # Always exercise a real pool, even on one CPU: correctness of the
    # process path matters everywhere; its speed only where cores exist.
    workers = args.workers or max(2, cpus)

    print(f"batch bench: {nets} nets, mode={args.mode}, "
          f"{cpus} CPUs, {workers} workers")
    reports = compare_executors(
        nets, args.seed, workers, args.chunk_size, args.mode
    )

    signatures = {
        name: report.signatures() for name, (report, _) in reports.items()
    }
    baseline = signatures["serial"]
    for name, signature in signatures.items():
        if signature != baseline:
            print(f"FAIL: executor {name!r} diverged from serial results",
                  file=sys.stderr)
            return 1
    print("all executors returned identical solutions")

    serial_s = reports["serial"][1]
    best_parallel = min(reports["process"][1], reports["chunked"][1])
    speedup = serial_s / best_parallel
    print(f"best parallel speedup over serial: {speedup:.2f}x")

    workload = WorkloadConfig(nets=nets, seed=args.seed)
    specs = population_specs(workload)
    overhead, baseline = budget_overhead(
        specs, workload, args.mode, repeats=1 if args.smoke else 3
    )
    if overhead is None:
        print("FAIL: budget-guarded run diverged from the bare run",
              file=sys.stderr)
        return 1
    # The 3% number is the target; only a gross regression (the guard
    # visibly dominating the DP) fails the bench — small fleets on noisy
    # CI boxes jitter by more than the guard costs.
    if not args.smoke and overhead > 10.0:
        print(
            f"FAIL: budget-guard overhead {overhead:.2f}% is grossly over "
            "the 3% target",
            file=sys.stderr,
        )
        return 1

    if not fault_drill(specs, workload, args.mode, baseline):
        return 1

    if args.smoke:
        return 0
    if cpus > 1 and nets >= 200 and speedup <= 1.0:
        print(
            f"FAIL: multiprocessing did not beat serial on {cpus} CPUs",
            file=sys.stderr,
        )
        return 1
    if cpus == 1:
        print("single-CPU host: speedup not asserted "
              "(pool overhead only; re-run on a multi-core machine)")
    return 0


# -- pytest-benchmark integration (shares the suite's fixtures) ------------


def test_batch_serial_vs_process(benchmark, experiment, results_dir):
    from conftest import write_result

    # Reuse the session experiment's workload but a small fleet: this
    # bench times executor overhead, not the DP itself.
    workload = WorkloadConfig(nets=min(60, len(experiment.nets)),
                             seed=experiment.workload.seed)
    specs = population_specs(workload)

    serial = benchmark(
        lambda: run_fleet(specs, workload, make_executor("serial"))
    )
    start = perf_counter()
    parallel = run_fleet(
        specs, workload, make_executor("process", workers=max(2, default_worker_count()))
    )
    parallel_s = perf_counter() - start
    assert parallel.signatures() == serial.signatures()

    text = "\n".join([
        f"batch bench ({len(specs)} nets, buffopt, max_buffers=4)",
        f"serial:  {serial.nets_per_second():8.2f} nets/s",
        f"process: {len(specs) / parallel_s:8.2f} nets/s "
        f"({default_worker_count()} CPUs)",
    ])
    write_result(results_dir, "batch.txt", text)


if __name__ == "__main__":
    raise SystemExit(main())
