"""Shared fixtures for the benchmark suite.

Population size defaults to 120 nets so ``pytest benchmarks/
--benchmark-only`` finishes in a few minutes; set ``REPRO_BENCH_NETS=500``
to regenerate the tables at the paper's full scale.  Each table bench
writes its regenerated table to ``benchmarks/results/`` so the artifacts
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib
import subprocess

import pytest

from repro.experiments import (
    bench_population_size,
    default_experiment,
    run_population,
)
from repro.workloads import WorkloadConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _git_sha() -> str:
    """Current commit SHA (with a -dirty suffix), or "unknown"."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha + ("-dirty" if dirty else "")
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture(scope="session")
def experiment():
    return default_experiment(nets=bench_population_size())


@pytest.fixture(scope="session")
def population_run(experiment):
    """One shared BuffOpt + DelayOpt(1..4) sweep over the population."""
    return run_population(experiment)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(
    results_dir: pathlib.Path,
    name: str,
    text: str,
    seed: int = WorkloadConfig.seed,
) -> None:
    """Persist one benchmark artifact plus an attribution sidecar.

    Alongside the plain-text table, ``<name>.meta.json`` records the git
    SHA and the RNG seed (plus the population size) that produced it, so
    bench trajectories stay attributable across PRs.
    """
    (results_dir / name).write_text(text + "\n")
    meta = {
        "name": name,
        "git_sha": _git_sha(),
        "seed": seed,
        "nets": bench_population_size(),
    }
    (results_dir / f"{name}.meta.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(text)
