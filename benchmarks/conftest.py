"""Shared fixtures for the benchmark suite.

Population size defaults to 120 nets so ``pytest benchmarks/
--benchmark-only`` finishes in a few minutes; set ``REPRO_BENCH_NETS=500``
to regenerate the tables at the paper's full scale.  Each table bench
writes its regenerated table to ``benchmarks/results/`` so the artifacts
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import (
    bench_population_size,
    default_experiment,
    run_population,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment():
    return default_experiment(nets=bench_population_size())


@pytest.fixture(scope="session")
def population_run(experiment):
    """One shared BuffOpt + DelayOpt(1..4) sweep over the population."""
    return run_population(experiment)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print()
    print(text)
