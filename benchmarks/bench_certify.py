"""Certification overhead: what does ``batch --certify`` cost?

The certifier re-walks each net once per selected outcome, so its cost
should be a small constant factor on top of the DP (which explores the
whole candidate frontier).  These benches time the checker alone, the
exhaustive oracle at its default site bound, and the end-to-end batch
overhead of turning ``certify=True`` on — and assert everything it
audits actually passes.
"""

import pytest

from repro import CouplingModel, DriverCell, default_technology, segment_tree
from repro.batch import BatchConfig, BatchOptimizer
from repro.core.noise_delay import buffopt_result
from repro.library import default_buffer_library
from repro.units import FF, MM, NS, UM
from repro.verify import certify_result, exhaustive_oracle, seeded_tree

TECH = default_technology()
LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(TECH)
DRIVER = DriverCell("drv", 250.0, 30e-12)


@pytest.fixture(scope="module")
def audited_result():
    from repro import two_pin_net

    net = two_pin_net(TECH, 8 * MM, DRIVER, 20 * FF, 0.8,
                      required_arrival=2.5 * NS)
    tree = segment_tree(net, 500 * UM)
    return tree, buffopt_result(tree, LIBRARY, COUPLING)


def test_certifier_throughput(benchmark, audited_result):
    _, result = audited_result
    certificate = benchmark(certify_result, result, COUPLING)
    assert certificate.ok, certificate.describe()


def test_oracle_at_site_bound(benchmark):
    inverter = next(b.name for b in LIBRARY if b.inverting)
    small = LIBRARY.restricted(["buf_x1", inverter])
    tree = seeded_tree(0, max_internal=4, with_rats=True)
    sites = sum(1 for n in tree.nodes() if n.is_internal and n.feasible)
    assert sites <= 6
    oracle = benchmark(
        exhaustive_oracle, tree, small, COUPLING, max_sites=6
    )
    assert oracle.enumerated >= 1


@pytest.mark.parametrize("certify", [False, True],
                         ids=["baseline", "certify"])
def test_batch_certify_overhead(benchmark, certify):
    from repro.workloads import WorkloadConfig, population_specs

    workload = WorkloadConfig(nets=12)
    optimizer = BatchOptimizer(
        config=BatchConfig(certify=certify), workload=workload
    )
    specs = population_specs(workload)
    report = benchmark(optimizer.optimize, specs)
    assert report.failure_count == 0
    if certify:
        assert report.certified_count == 12
