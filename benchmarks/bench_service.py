"""Service bench: loadtest latency percentiles + a chaos consistency leg.

Standalone script (what CI runs in ``--smoke`` mode)::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # quick CI

Two measurements:

1. **Loadtest** — N concurrent HTTP clients against a live
   ``ThreadingHTTPServer`` + resilient-supervision service; reports
   nearest-rank p50/p95/p99 latency, throughput, and the shed-retry
   count.  The harness retries 429/503 responses, so "dropped" must be
   zero by construction or the bench fails.

2. **Chaos consistency** — the same request stream against a server
   with deterministic fault injection (worker crash / hang / slow-start
   at the configured rate, hangs killed by the hard deadline), plus a
   torn journal tail and a mid-stream server restart that must recover
   from the journal.  Every response's deterministic ``result`` payload
   must equal the fault-free baseline's, and nothing may be dropped —
   the ISSUE's acceptance bar, measured rather than asserted in a unit
   test.

The full run writes ``BENCH_service.json`` at the repo root (git SHA /
seed attribution, same sidecar conventions as ``BENCH_engines.json``)
so service-latency trajectories stay diffable across PRs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import threading
import time

from repro.batch.resilience import RetryPolicy
from repro.service import (
    ChaosConfig,
    HttpServiceClient,
    InProcessClient,
    LoadTestConfig,
    OptimizationService,
    ServiceConfig,
    make_http_server,
    run_loadtest,
    tear_journal_tail,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from conftest import _git_sha  # noqa: E402


def _serve(service):
    """Bind the HTTP surface on a free port; return (server, thread)."""
    server = make_http_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(service, server, thread):
    service.drain()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def loadtest_leg(config: LoadTestConfig, workers: int) -> dict:
    service = OptimizationService(ServiceConfig(
        workers=workers,
        queue_limit=max(8, config.requests // 4),
        retry=RetryPolicy(max_attempts=3, backoff_seconds=0.02, seed=7),
    )).start()
    server, thread = _serve(service)
    try:
        client = HttpServiceClient(f"http://127.0.0.1:{server.port}")
        report = run_loadtest(client, config)
    finally:
        _stop(service, server, thread)
    if report["dropped"]:
        raise SystemExit(
            f"loadtest dropped {report['dropped']} requests — the "
            "zero-drop bar failed"
        )
    return report


def baseline_responses(config: LoadTestConfig) -> dict:
    """Fault-free serial run: net name -> deterministic result payload."""
    service = OptimizationService(ServiceConfig(
        workers=1, queue_limit=config.requests + 1, supervision="inline",
    )).start()
    client = InProcessClient(service)
    results = {}
    try:
        for payload in config.payloads():
            status, body = client.submit(payload)
            assert status == 200, (status, body)
            results[payload["net"]["name"]] = body["result"]
    finally:
        service.drain()
    return results


def chaos_leg(
    config: LoadTestConfig,
    workers: int,
    rate: float,
    journal: pathlib.Path,
    restart_after_fraction: float = 0.5,
) -> dict:
    """Chaos + restart-mid-load run; returns the consistency report."""
    baseline = baseline_responses(config)
    chaos = ChaosConfig(
        rate=rate,
        seed=config.seed + 1,
        kinds=("raise", "exit", "hang", "slow"),
        hang_seconds=5.0,
        slow_seconds=0.1,
    )
    names = sorted({p["net"]["name"] for p in config.payloads()})
    faulted = chaos.faulted(names)

    def service_config() -> ServiceConfig:
        return ServiceConfig(
            workers=workers,
            queue_limit=config.requests + 1,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.02, seed=7),
            hard_deadline=1.0,
            journal_path=journal,
            chaos=chaos,
        )

    if journal.exists():
        journal.unlink()
    payloads = config.payloads()
    split = max(1, int(len(payloads) * restart_after_fraction))

    # Phase 1: run the first half, then kill without draining (the
    # journal, not the process, carries the state) and tear its tail.
    service = OptimizationService(service_config()).start()
    client = InProcessClient(service)
    first = {}
    for payload in payloads[:split]:
        status, body = client.submit(payload)
        assert status == 200, (status, body)
        first[payload["net"]["name"]] = body["result"]
    # leave queued work behind: async-submit the rest, don't wait.
    for payload in payloads[split:]:
        client.submit(dict(payload, wait=False))
    # abandon the service (simulated crash) and tear the journal tail.
    tear_journal_tail(journal)

    # Phase 2: restart; recovery must serve phase-1 results from cache
    # and finish the abandoned work from the journal.
    restarted = OptimizationService(service_config()).start()
    client2 = InProcessClient(restarted)
    responses = {}
    mismatches = []
    dropped = 0
    cache_hits = 0
    try:
        for payload in payloads:
            status, body = client2.submit(payload)
            if status != 200:
                dropped += 1
                continue
            name = payload["net"]["name"]
            responses[name] = body["result"]
            if body.get("cached"):
                cache_hits += 1
            if body["result"] != baseline[name]:
                mismatches.append(name)
    finally:
        restarted.drain()
        service.drain()  # reap phase-1 threads (journal already replayed)
    return {
        "requests": len(payloads),
        "unique_nets": len(names),
        "fault_rate_configured": rate,
        "nets_faulted": len(faulted),
        "fault_fraction_actual": len(faulted) / len(names),
        "recovered_results": restarted.recovered_results,
        "recovered_jobs": restarted.recovered_jobs,
        "torn_tail_recovered": True,
        "cache_hits_after_restart": cache_hits,
        "dropped": dropped,
        "mismatched": mismatches,
        "identical_to_baseline": not mismatches and not dropped,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_service.json",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller fleet, same checks)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        config = LoadTestConfig(
            clients=4, requests=24, unique_nets=16, seed=args.seed,
            max_sinks=5,
        )
        workers, chaos_rate = 2, 0.20
    else:
        config = LoadTestConfig(
            clients=8, requests=120, unique_nets=64, seed=args.seed,
            max_sinks=8,
        )
        workers, chaos_rate = 4, 0.15

    print(
        f"loadtest: {config.clients} clients x {config.requests} requests "
        f"over HTTP ...", file=sys.stderr,
    )
    started = time.perf_counter()
    load_report = run_load = loadtest_leg(config, workers)
    print(
        f"  p50 {run_load['latency_seconds']['p50'] * 1e3:.1f} ms  "
        f"p95 {run_load['latency_seconds']['p95'] * 1e3:.1f} ms  "
        f"p99 {run_load['latency_seconds']['p99'] * 1e3:.1f} ms  "
        f"({run_load['throughput_rps']:.1f} req/s)", file=sys.stderr,
    )

    # The chaos-leg journal is working state (torn, recovered, replayed),
    # not a result — keep it out of benchmarks/results/.
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="buffopt-bench-service-"))
    journal = scratch / "service.journal"
    print(
        f"chaos: rate {chaos_rate:.0%} + torn tail + restart mid-load ...",
        file=sys.stderr,
    )
    try:
        chaos_report = chaos_leg(config, workers, chaos_rate, journal)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    print(
        f"  faulted {chaos_report['nets_faulted']}/"
        f"{chaos_report['unique_nets']} nets, dropped "
        f"{chaos_report['dropped']}, identical="
        f"{chaos_report['identical_to_baseline']}", file=sys.stderr,
    )
    if not chaos_report["identical_to_baseline"]:
        print("CHAOS CONSISTENCY FAILED", file=sys.stderr)
        return 1
    if chaos_report["fault_fraction_actual"] < 0.05:
        print("chaos leg faulted < 5% of nets — raise the rate",
              file=sys.stderr)
        return 1

    sidecar = {
        "git_sha": _git_sha(),
        "kind": "service-bench",
        "seed": args.seed,
        "smoke": args.smoke,
    }
    sidecar.update({
        "loadtest": load_report,
        "chaos": chaos_report,
        "wall_seconds": round(time.perf_counter() - started, 3),
    })
    args.out.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
