"""Verifier comparison: backward-Euler transient vs AWE moment matching.

Both stand in for the paper's 3dnoise; this bench times them over the
same nets and asserts they agree on peaks (within reduced-model
tolerance) and on every violation verdict — the reason either can back
the Table II sign-off.
"""

from conftest import write_result

from repro.analysis import AweNoiseAnalyzer, DetailedNoiseAnalyzer


def _sample(experiment, count=25):
    return [net.tree for net in experiment.nets[:count]]


def test_transient_verifier(benchmark, experiment):
    analyzer = DetailedNoiseAnalyzer.estimation_mode(experiment.technology)
    trees = _sample(experiment)

    def sweep():
        return [analyzer.analyze(tree).violated for tree in trees]

    verdicts = benchmark(sweep)
    assert any(verdicts)


def test_awe_verifier(benchmark, experiment, results_dir):
    transient = DetailedNoiseAnalyzer.estimation_mode(experiment.technology)
    awe = AweNoiseAnalyzer.estimation_mode(experiment.technology)
    trees = _sample(experiment)

    def sweep():
        return [awe.analyze(tree) for tree in trees]

    reports = benchmark(sweep)

    lines = [
        "Verifier cross-check (transient vs AWE moment matching)",
        f"{'net':<10} {'transient (V)':>14} {'AWE (V)':>10} {'verdicts':>9}",
    ]
    disagreements = 0
    for tree, awe_report in zip(trees, reports):
        reference = transient.analyze(tree)
        same = awe_report.violated == reference.violated
        disagreements += not same
        lines.append(
            f"{tree.name:<10} {reference.peak_noise:>14.4f} "
            f"{awe_report.peak_noise:>10.4f} "
            f"{'agree' if same else 'DIFFER':>9}"
        )
        assert abs(awe_report.peak_noise - reference.peak_noise) <= (
            0.08 * reference.peak_noise + 2e-3
        ), tree.name
    assert disagreements == 0
    write_result(results_dir, "verifiers.txt", "\n".join(lines))
