"""Ablation benches for the design choices DESIGN.md calls out.

1. **Pruning rule** — the paper prunes candidates on (load, slack) only;
   the 4-field Pareto alternative keeps more candidates.  Measures both
   and asserts the quality relation (Pareto never worse, never cheaper).
2. **Wire segmenting granularity** — the Alpert–Devgan quality/run-time
   trade-off: finer segmentation weakly improves slack and monotonically
   grows the DP size.
3. **Smallest-resistance reduction** — Algorithms 1/2 with a full library
   must match the single min-R buffer run exactly.
4. **Single- vs multi-buffer optimality gap** — Theorem 5 guarantees
   optimality for |B| = 1; measures the empirical delay gap of the
   11-buffer library against its best single-buffer sub-library.
"""

import math

import pytest

from repro import (
    CouplingModel,
    DPOptions,
    DriverCell,
    default_buffer_library,
    default_technology,
    insert_buffers_multi_sink,
    run_dp,
    segment_tree,
    two_pin_net,
)
from repro.library import single_buffer_library
from repro.units import FF, MM, NS, UM

TECH = default_technology()
LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(TECH)
DRIVER = DriverCell("drv", 250.0, 30e-12)


def _net(segments_um=500):
    net = two_pin_net(TECH, 10 * MM, DRIVER, 20 * FF, 0.8,
                      required_arrival=2.5 * NS)
    return segment_tree(net, segments_um * UM)


@pytest.mark.parametrize("prune", ["timing", "pareto"])
def test_pruning_rule_ablation(benchmark, prune):
    tree = _net()

    def run():
        return run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(noise_aware=True, prune=prune),
        )

    result = benchmark(run)
    # Stash for the cross-check below via function attributes.
    test_pruning_rule_ablation.results[prune] = (
        result.best().slack, result.candidates_kept_peak
    )
    if len(test_pruning_rule_ablation.results) == 2:
        (q_t, kept_t) = test_pruning_rule_ablation.results["timing"]
        (q_p, kept_p) = test_pruning_rule_ablation.results["pareto"]
        assert q_p >= q_t - 1e-15  # Pareto keeps every (C,q) survivor
        assert kept_p >= kept_t


test_pruning_rule_ablation.results = {}


@pytest.mark.parametrize("segment_um", [2000, 1000, 500, 250])
def test_segmentation_quality_tradeoff(benchmark, segment_um):
    tree = _net(segment_um)

    def run():
        result = run_dp(tree, LIBRARY, COUPLING, DPOptions(noise_aware=True))
        return result.best()

    outcome = benchmark(run)
    record = test_segmentation_quality_tradeoff.results
    record[segment_um] = outcome.slack
    finer = sorted(record, reverse=True)
    slacks = [record[s] for s in finer]
    # finer segmentation (smaller max length) never hurts slack
    assert all(b >= a - 1e-12 for a, b in zip(slacks, slacks[1:]))


test_segmentation_quality_tradeoff.results = {}


def test_smallest_resistance_reduction(benchmark):
    """Algorithm 2 with the full library == with only its min-R buffer."""
    net = two_pin_net(TECH, 9 * MM, DRIVER, 20 * FF, 0.8)

    def run_full():
        return insert_buffers_multi_sink(net, LIBRARY, COUPLING)

    full = benchmark(run_full)
    reduced = insert_buffers_multi_sink(
        net, LIBRARY.smallest_resistance(), COUPLING
    )
    assert full.buffer_count == reduced.buffer_count
    for a, b in zip(full.placements, reduced.placements):
        assert math.isclose(
            a.distance_from_child, b.distance_from_child, rel_tol=1e-12
        )


def test_noise_aware_segmentation(benchmark):
    """Footnote-3 extension: Theorem-1-seeded sites vs fine uniform grid.

    The noise-aware tree must reach the continuous-optimal buffer count
    with a small fraction of the uniform grid's nodes (and DP time).
    """
    from repro import two_pin_net
    from repro.core import (
        buffopt_result,
        insert_buffers_multi_sink,
        noise_aware_segmentation,
    )

    net = two_pin_net(TECH, 12 * MM, DRIVER, 20 * FF, 0.8,
                      required_arrival=4 * NS)
    continuous = insert_buffers_multi_sink(net, LIBRARY, COUPLING)

    def run():
        sited = noise_aware_segmentation(net, LIBRARY, COUPLING)
        result = buffopt_result(sited, LIBRARY, COUPLING, max_buffers=8)
        return sited, result.fewest_buffers()

    sited, outcome = benchmark(run)
    assert outcome.buffer_count == continuous.buffer_count
    uniform = segment_tree(net, 250e-6)
    assert len(sited) < len(uniform) / 5


def test_wire_sizing_extension(benchmark):
    """Lillis simultaneous sizing: cost of the width menu vs its benefit.

    Runs the noise-aware DP with a 3-width menu and checks the sized
    slack weakly dominates the drawn-width slack (sizing can only help).
    """
    from repro.core import WireSizingSpec

    tree = _net()
    spec = WireSizingSpec(widths=(1.0, 1.5, 2.0), area_fraction=0.7)

    def run_sized():
        return run_dp(
            tree, LIBRARY, COUPLING,
            DPOptions(noise_aware=True, sizing=spec),
        )

    sized = benchmark(run_sized)
    plain = run_dp(tree, LIBRARY, COUPLING, DPOptions(noise_aware=True))
    assert sized.best().slack >= plain.best().slack - 1e-15
    assert sized.candidates_generated > plain.candidates_generated


def test_single_vs_multi_buffer_gap(benchmark):
    """Empirical Theorem-5 gap: the 11-buffer BuffOpt vs the best
    single-buffer sub-library (slack units)."""
    tree = _net()

    def run_multi():
        return run_dp(
            tree, LIBRARY, COUPLING, DPOptions(noise_aware=True)
        ).best()

    multi = benchmark(run_multi)
    best_single = max(
        (
            run_dp(
                tree, single_buffer_library(buffer), COUPLING,
                DPOptions(noise_aware=True),
            ).best().slack
            for buffer in LIBRARY
        ),
    )
    # the library can only help; the gap is the benefit of mixing sizes
    assert multi.slack >= best_single - 1e-15
