"""Micro-benchmarks of the three algorithms and their scaling knobs."""

import pytest

from repro import (
    CouplingModel,
    DriverCell,
    SinkSite,
    default_buffer_library,
    default_technology,
    insert_buffers_multi_sink,
    insert_buffers_single_sink,
    segment_tree,
    steiner_tree,
    two_pin_net,
)
from repro.core import buffopt_result, optimize_delay
from repro.units import FF, MM, NS, UM

TECH = default_technology()
LIBRARY = default_buffer_library()
COUPLING = CouplingModel.estimation_mode(TECH)
DRIVER = DriverCell("drv", 250.0, 30e-12)


def _fan_tree(sinks):
    import numpy as np

    rng = np.random.default_rng(sinks)
    sites = [
        SinkSite(
            f"s{i}",
            (float(rng.uniform(0, 8 * MM)), float(rng.uniform(0, 8 * MM))),
            capacitance=15 * FF,
            noise_margin=0.8,
            required_arrival=3 * NS,
        )
        for i in range(sinks)
    ]
    return steiner_tree(TECH, (0.0, 0.0), sites, driver=DRIVER, name=f"fan{sinks}")


def test_algorithm1_long_line(benchmark):
    """Algorithm 1 is linear time: a 14 mm two-pin net."""
    net = two_pin_net(TECH, 14 * MM, DRIVER, 20 * FF, 0.8)
    solution = benchmark(
        insert_buffers_single_sink, net, LIBRARY, COUPLING
    )
    assert solution.buffer_count >= 3


@pytest.mark.parametrize("sinks", [4, 16, 48])
def test_algorithm2_fanout_scaling(benchmark, sinks):
    """Algorithm 2 on growing Steiner fan-outs (quadratic worst case,
    near-linear in practice since merge forks are rare)."""
    tree = _fan_tree(sinks)
    solution = benchmark(insert_buffers_multi_sink, tree, LIBRARY, COUPLING)
    assert solution.buffer_count >= 1


@pytest.mark.parametrize("segment_um", [1000, 500, 250])
def test_buffopt_segmentation_scaling(benchmark, segment_um):
    """Algorithm 3 runtime vs segmentation granularity (the [1] knob)."""
    net = two_pin_net(TECH, 10 * MM, DRIVER, 20 * FF, 0.8,
                      required_arrival=3 * NS)
    tree = segment_tree(net, segment_um * UM)

    def run():
        result = buffopt_result(tree, LIBRARY, COUPLING, max_buffers=6)
        return result.fewest_buffers()

    outcome = benchmark(run)
    assert outcome.buffer_count >= 2


def test_delayopt_multisink(benchmark):
    tree = segment_tree(_fan_tree(16), 500 * UM)
    solution = benchmark(optimize_delay, tree, LIBRARY)
    assert solution.buffer_count >= 1
