"""Table III bench: BuffOpt vs DelayOpt(k) noise avoidance.

Two timed kernels — the noise-aware BuffOpt sweep and the count-limited
DelayOpt sweep — over the same segmented nets, plus the regenerated
Table III from the shared population run.  Asserted shape (paper):
DelayOpt(4) inserts far more buffers than BuffOpt yet still leaves
violations at small k, while BuffOpt leaves none.
"""

from conftest import write_result

from repro.core import buffopt_result, delay_opt_result
from repro.experiments import build_table3, format_table3
from repro.tree import segment_tree


def _segmented(experiment, count=40):
    return [
        segment_tree(net.tree, experiment.max_segment_length)
        for net in experiment.nets[:count]
    ]


def test_buffopt_sweep(benchmark, experiment):
    trees = _segmented(experiment)

    def sweep():
        total = 0
        for tree in trees:
            result = buffopt_result(
                tree, experiment.library, experiment.coupling, max_buffers=6
            )
            total += result.fewest_buffers().buffer_count
        return total

    total = benchmark(sweep)
    assert total > 0


def test_delayopt_sweep(benchmark, experiment):
    trees = _segmented(experiment)

    def sweep():
        total = 0
        for tree in trees:
            result = delay_opt_result(tree, experiment.library, max_buffers=4)
            total += result.best(require_noise=False).buffer_count
        return total

    total = benchmark(sweep)
    assert total > 0


def test_table3_shape(benchmark, population_run, results_dir):
    table = benchmark.pedantic(
        build_table3, args=(population_run,), rounds=1, iterations=1
    )
    by_method = {row.method: row for row in table.rows}
    buffopt = by_method["BuffOpt"]
    assert buffopt.violations == 0
    assert by_method["DelayOpt(1)"].violations > 0
    assert by_method["DelayOpt(4)"].total_buffers > buffopt.total_buffers
    # broad trend only: per-k violations need not be strictly monotone
    violations = [by_method[f"DelayOpt({k})"].violations for k in (1, 2, 3, 4)]
    assert violations[0] >= violations[-1]
    assert violations[0] > violations[2]
    write_result(results_dir, "table3.txt", format_table3(table))
