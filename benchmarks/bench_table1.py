"""Table I bench: workload generation and the sink-distribution table.

Regenerates the paper's Table I (sink distribution of the test nets) and
times the seeded synthetic-population generator.
"""

from conftest import write_result

from repro.experiments import build_table1, format_table1
from repro.workloads import WorkloadConfig, generate_population


def test_table1_generation(benchmark, experiment, results_dir):
    nets = len(experiment.nets)

    def generate():
        return generate_population(
            WorkloadConfig(nets=nets, seed=experiment.workload.seed)
        )

    population = benchmark(generate)
    assert len(population) == nets

    table = build_table1(experiment)
    assert sum(table.histogram.values()) == nets
    # Table-I shape: single-sink nets dominate, a multi-sink tail exists.
    assert table.histogram.get(1, 0) > 0.4 * nets
    assert max(table.histogram) >= 8
    write_result(results_dir, "table1.txt", format_table1(table))
