"""Table IV bench: delay penalty of noise-aware optimization.

Times the matched-count DelayOpt comparison and regenerates Table IV.
Asserted shape (paper): DelayOpt's delay reduction upper-bounds BuffOpt's
at every matched buffer count, and the weighted-average penalty is small
(paper < 2 %; asserted < 5 % for reduced populations).
"""

from conftest import write_result

from repro.experiments import build_table4, format_table4


def test_table4_delay_penalty(benchmark, experiment, population_run, results_dir):
    table = benchmark.pedantic(
        build_table4,
        args=(experiment, population_run),
        rounds=1,
        iterations=1,
    )
    assert table.rows
    for row in table.rows:
        assert row.delayopt_reduction >= row.buffopt_reduction - 1e-12
    assert table.average_penalty_percent < 5.0
    write_result(results_dir, "table4.txt", format_table4(table))
