"""Engine bench: reference vs fast DP, head-to-head and at fleet scale.

Two entry points:

* standalone script (what CI runs in ``--smoke`` mode)::

      PYTHONPATH=src python benchmarks/bench_engines.py           # full
      PYTHONPATH=src python benchmarks/bench_engines.py --smoke   # quick CI

  Two measurements:

  1. **Head-to-head** — one 500-sink net (60 in smoke) with an 8-buffer
     library, timed under both engines in delay and noise-aware modes.
     Outcomes must be bit-identical; the full run additionally asserts
     the fast engine is >= 2x faster (the ISSUE acceptance bar).
  2. **Seeded regression family** — the 200-net generated workload
     (24 in smoke) run through :class:`~repro.batch.BatchOptimizer`
     under both engines in both modes with ``certify=True``: every
     result signature must match between engines and every net must
     pass independent certification.

* pytest bench (rides the existing suite)::

      pytest benchmarks/bench_engines.py --benchmark-only
"""

from __future__ import annotations

import argparse
import random
import sys
from time import perf_counter

from repro.batch import BatchConfig, BatchOptimizer, SerialExecutor
from repro.core.dp import DPOptions, run_dp
from repro.library.buffers import default_buffer_library
from repro.library.cells import DriverCell
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.tree.builder import TreeBuilder
from repro.units import FF, MM
from repro.workloads import WorkloadConfig, population_specs

#: the 8-cell library the head-to-head runs under (6 buffers, 2 inverters).
EIGHT_BUFFER_NAMES = (
    "buf_x1", "buf_x2", "buf_x4", "buf_x8",
    "buf_x16", "buf_x32", "inv_x2", "inv_x4",
)

MODES = ("delay", "buffopt")


def chain_net(sinks: int, seed: int = 19981101):
    """A ``sinks``-sink spine: one stub sink per segment, paper-style."""
    rng = random.Random(seed)
    builder = TreeBuilder(default_technology())
    builder.add_source("src", driver=DriverCell("drv", 120.0))
    previous = "src"
    for index in range(sinks):
        internal = f"n{index}"
        builder.add_internal(internal)
        builder.add_wire(
            previous, internal, length=rng.uniform(0.05 * MM, 0.4 * MM)
        )
        sink = f"s{index}"
        builder.add_sink(
            sink,
            capacitance=rng.uniform(2 * FF, 40 * FF),
            required_arrival=rng.uniform(0.5, 3.0),
            noise_margin=rng.uniform(0.3, 1.2),
        )
        builder.add_wire(internal, sink, length=rng.uniform(0.05 * MM, 0.3 * MM))
        previous = internal
    return builder.build(f"chain{sinks}")


def head_to_head(sinks: int, repeats: int):
    """Best-of-``repeats`` engine timings per mode on one big net.

    Returns ``{mode: (reference_s, fast_s)}``; asserts outcome equality
    (raises AssertionError on divergence — that is the whole point).
    """
    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(sinks)
    timings = {}
    for mode in MODES:
        noise_aware = mode == "buffopt"
        results = {}
        seconds = {}
        for engine in ("reference", "fast"):
            options = DPOptions(
                noise_aware=noise_aware,
                track_counts=True,
                max_buffers=4,
                engine=engine,
            )
            best = float("inf")
            for _ in range(repeats):
                start = perf_counter()
                result = run_dp(tree, library, coupling, options)
                best = min(best, perf_counter() - start)
            results[engine] = result
            seconds[engine] = best
        assert results["reference"].outcomes == results["fast"].outcomes, (
            f"{mode}: engines disagree on {tree.name}"
        )
        assert (
            results["reference"].candidates_generated
            == results["fast"].candidates_generated
        )
        timings[mode] = (seconds["reference"], seconds["fast"])
    return timings


def overhead_gate(sinks: int, repeats: int, budget: float = 0.02) -> bool:
    """The no-overhead-when-off contract, measured and gated.

    Baseline is the raw ``run_dp`` call; the candidate is the
    :func:`repro.api.dp_result` facade with all instrumentation
    disabled — it must stay within ``budget`` (2 %) of the baseline,
    best-of-``repeats`` each, interleaved to even out thermal drift.
    The traced+profiled run is measured and reported alongside (not
    gated) so regressions in *enabled* overhead stay visible too.
    """
    from repro.api import dp_result
    from repro.obs import PhaseProfiler

    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(sinks)
    options = DPOptions(
        noise_aware=True, track_counts=True, max_buffers=4,
        engine="reference",
    )
    profiler = PhaseProfiler()
    raw_best = facade_best = traced_best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        raw = run_dp(tree, library, coupling, options)
        raw_best = min(raw_best, perf_counter() - start)

        start = perf_counter()
        plain = dp_result(
            tree, library, coupling, mode="buffopt", max_buffers=4
        )
        facade_best = min(facade_best, perf_counter() - start)

        start = perf_counter()
        traced = dp_result(
            tree, library, coupling, mode="buffopt", max_buffers=4,
            profile=profiler,
        )
        traced_best = min(traced_best, perf_counter() - start)
        profiler.finish()

    assert raw.outcomes == plain.outcomes == traced.outcomes, (
        "facade/profiled runs diverged from the raw engine"
    )
    overhead = facade_best / raw_best - 1.0
    traced_overhead = traced_best / raw_best - 1.0
    print(
        f"facade overhead (obs disabled): {overhead * 100:+5.2f}% "
        f"(gate: <= {budget * 100:.0f}%)   "
        f"traced+profiled: {traced_overhead * 100:+5.2f}% (reported only)"
    )
    if overhead > budget:
        print(
            f"FAIL: disabled-instrumentation facade overhead "
            f"{overhead * 100:.2f}% exceeds the {budget * 100:.0f}% budget "
            f"on the {sinks}-sink net",
            file=sys.stderr,
        )
        return False
    return True


def regression_family(nets: int, seed: int):
    """Both engines over the seeded fleet, certified; returns True if OK."""
    workload = WorkloadConfig(nets=nets, seed=seed)
    specs = population_specs(workload)
    ok = True
    for mode in MODES:
        signatures = {}
        certified = {}
        for engine in ("reference", "fast"):
            optimizer = BatchOptimizer(
                config=BatchConfig(
                    mode=mode,
                    max_buffers=4,
                    keep_trees=False,
                    certify=True,
                    engine=engine,
                ),
                executor=SerialExecutor(),
                workload=workload,
            )
            report = optimizer.optimize_specs(specs)
            signatures[engine] = report.signatures()
            certified[engine] = report.certified_count
        if signatures["reference"] != signatures["fast"]:
            print(
                f"FAIL: {mode}: fast engine diverged from reference on "
                f"the {nets}-net family",
                file=sys.stderr,
            )
            ok = False
        if certified["fast"] != nets or certified["reference"] != nets:
            print(
                f"FAIL: {mode}: certification not clean "
                f"(reference {certified['reference']}/{nets}, "
                f"fast {certified['fast']}/{nets})",
                file=sys.stderr,
            )
            ok = False
        if ok:
            print(
                f"{mode}: {nets} nets bit-identical across engines, "
                f"{certified['fast']}/{nets} certificate-clean"
            )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sinks", type=int, default=500)
    parser.add_argument("--nets", type=int, default=200)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small net + fleet, correctness-only (CI gate, no perf "
        "assertions)",
    )
    args = parser.parse_args(argv)

    sinks = 60 if args.smoke else args.sinks
    nets = 24 if args.smoke else args.nets
    repeats = 2 if args.smoke else args.repeats

    print(f"engine bench: {sinks}-sink chain, 8-buffer library, "
          f"best of {repeats}")
    timings = head_to_head(sinks, repeats)
    worst = float("inf")
    for mode, (reference_s, fast_s) in timings.items():
        speedup = reference_s / fast_s if fast_s > 0 else float("inf")
        worst = min(worst, speedup)
        print(f"{mode:8s}: reference {reference_s * 1e3:9.2f} ms   "
              f"fast {fast_s * 1e3:9.2f} ms   speedup {speedup:.2f}x")
    print("head-to-head outcomes identical in both modes")

    if not overhead_gate(sinks, max(repeats, 5)):
        return 1

    if not regression_family(nets, args.seed):
        return 1

    if args.smoke:
        return 0
    if worst < 2.0:
        print(
            f"FAIL: fast engine speedup {worst:.2f}x is under the 2x bar "
            f"on the {sinks}-sink net",
            file=sys.stderr,
        )
        return 1
    return 0


# -- pytest-benchmark integration (shares the suite's fixtures) ------------


def test_fast_engine_head_to_head(benchmark, results_dir):
    from conftest import write_result

    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(120)
    options = dict(noise_aware=True, track_counts=True, max_buffers=4)

    fast = benchmark(
        lambda: run_dp(
            tree, library, coupling, DPOptions(engine="fast", **options)
        )
    )
    start = perf_counter()
    reference = run_dp(
        tree, library, coupling, DPOptions(engine="reference", **options)
    )
    reference_s = perf_counter() - start
    assert reference.outcomes == fast.outcomes

    text = "\n".join([
        "engine bench (120-sink chain, buffopt, 8-buffer library)",
        f"reference: {reference_s * 1e3:8.2f} ms (single run)",
        "fast:      see pytest-benchmark stats",
    ])
    write_result(results_dir, "engines.txt", text)


if __name__ == "__main__":
    raise SystemExit(main())
