"""Engine bench: reference vs fast vs lishi DP, head-to-head and at scale.

Two entry points:

* standalone script (what CI runs in ``--smoke`` mode)::

      PYTHONPATH=src python benchmarks/bench_engines.py           # full
      PYTHONPATH=src python benchmarks/bench_engines.py --smoke   # quick CI

  Three measurements:

  1. **Head-to-head** — one 500-sink net (60 in smoke) with an 8-buffer
     library, timed under all three engines in delay and noise-aware
     modes.  Fast must stay bit-identical to the reference; lishi is
     held to *semantic equivalence* (equal outcome sets, slacks within
     the documented 1e-9 relative tolerance, equal noise verdicts —
     see ``tests/core/equivalence.py``).  The full run asserts the fast
     engine is >= 2x over the reference and the lishi engine >= 2x over
     fast in delay mode (the ISSUE acceptance bars).
  2. **Seeded regression family** — the 200-net generated workload
     (24 in smoke) run through :class:`~repro.batch.BatchOptimizer`:
     reference and fast signatures must match bit-for-bit, and the
     lishi fleet must come back certificate-clean on every net.
  3. The **no-overhead-when-off** facade gate (unchanged).

  The full run writes ``BENCH_engines.json`` at the repo root: all
  three engines' timings, the speedup ratios, and git SHA / seed
  attribution, so engine-perf trajectories stay diffable across PRs.

* pytest bench (rides the existing suite)::

      pytest benchmarks/bench_engines.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import random
import sys
from time import perf_counter

from repro.batch import BatchConfig, BatchOptimizer, SerialExecutor
from repro.core.dp import DPOptions, run_dp
from repro.library.buffers import default_buffer_library
from repro.library.cells import DriverCell
from repro.library.technology import default_technology
from repro.noise.coupling import CouplingModel
from repro.tree.builder import TreeBuilder
from repro.units import FF, MM
from repro.workloads import WorkloadConfig, population_specs

#: the 8-cell library the head-to-head runs under (6 buffers, 2 inverters).
EIGHT_BUFFER_NAMES = (
    "buf_x1", "buf_x2", "buf_x4", "buf_x8",
    "buf_x16", "buf_x32", "inv_x2", "inv_x4",
)

MODES = ("delay", "buffopt")
ENGINE_ORDER = ("reference", "fast", "lishi")

#: semantic-equivalence tolerance, mirrored from tests/core/equivalence.py.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def chain_net(sinks: int, seed: int = 19981101):
    """A ``sinks``-sink spine: one stub sink per segment, paper-style."""
    rng = random.Random(seed)
    builder = TreeBuilder(default_technology())
    builder.add_source("src", driver=DriverCell("drv", 120.0))
    previous = "src"
    for index in range(sinks):
        internal = f"n{index}"
        builder.add_internal(internal)
        builder.add_wire(
            previous, internal, length=rng.uniform(0.05 * MM, 0.4 * MM)
        )
        sink = f"s{index}"
        builder.add_sink(
            sink,
            capacitance=rng.uniform(2 * FF, 40 * FF),
            required_arrival=rng.uniform(0.5, 3.0),
            noise_margin=rng.uniform(0.3, 1.2),
        )
        builder.add_wire(internal, sink, length=rng.uniform(0.05 * MM, 0.3 * MM))
        previous = internal
    return builder.build(f"chain{sinks}")


def _outcome_map(result):
    return {
        o.buffer_count: (o.slack, o.noise_feasible) for o in result.outcomes
    }


def assert_semantically_equal(reference, other, context):
    """The lishi contract: equal selections within the float tolerance."""
    ref_map = _outcome_map(reference)
    other_map = _outcome_map(other)
    assert ref_map.keys() == other_map.keys(), (
        f"{context}: outcome count sets differ: "
        f"{sorted(ref_map)} vs {sorted(other_map)}"
    )
    for count, (ref_slack, ref_feasible) in ref_map.items():
        other_slack, other_feasible = other_map[count]
        assert math.isclose(
            ref_slack, other_slack, rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), (
            f"{context}: slack diverged at count {count}: "
            f"{ref_slack!r} vs {other_slack!r}"
        )
        assert ref_feasible == other_feasible, (
            f"{context}: noise feasibility diverged at count {count}"
        )


def head_to_head(sinks: int, repeats: int):
    """Best-of-``repeats`` timings per (mode, engine) on one big net.

    Returns ``{mode: {engine: seconds}}``; asserts fast's bit-identity
    and lishi's semantic equivalence (raises AssertionError on
    divergence — that is the whole point).
    """
    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(sinks)
    timings = {}
    for mode in MODES:
        noise_aware = mode == "buffopt"
        results = {}
        seconds = {}
        for engine in ENGINE_ORDER:
            options = DPOptions(
                noise_aware=noise_aware,
                track_counts=True,
                max_buffers=4,
                engine=engine,
            )
            best = float("inf")
            for _ in range(repeats):
                start = perf_counter()
                result = run_dp(tree, library, coupling, options)
                best = min(best, perf_counter() - start)
            results[engine] = result
            seconds[engine] = best
        assert results["reference"].outcomes == results["fast"].outcomes, (
            f"{mode}: fast engine disagrees with reference on {tree.name}"
        )
        assert (
            results["reference"].candidates_generated
            == results["fast"].candidates_generated
        )
        assert_semantically_equal(
            results["reference"], results["lishi"], f"{mode} [lishi]"
        )
        timings[mode] = seconds
    return timings


def overhead_gate(sinks: int, repeats: int, budget: float = 0.02) -> bool:
    """The no-overhead-when-off contract, measured and gated.

    Baseline is the raw ``run_dp`` call; the candidate is the
    :func:`repro.api.dp_result` facade with all instrumentation
    disabled — it must stay within ``budget`` (2 %) of the baseline,
    best-of-``repeats`` each, interleaved to even out thermal drift.
    The traced+profiled run is measured and reported alongside (not
    gated) so regressions in *enabled* overhead stay visible too.
    """
    from repro.api import dp_result
    from repro.obs import PhaseProfiler

    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(sinks)
    options = DPOptions(
        noise_aware=True, track_counts=True, max_buffers=4,
        engine="reference",
    )
    profiler = PhaseProfiler()
    raw_best = facade_best = traced_best = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        raw = run_dp(tree, library, coupling, options)
        raw_best = min(raw_best, perf_counter() - start)

        start = perf_counter()
        plain = dp_result(
            tree, library, coupling, mode="buffopt", max_buffers=4
        )
        facade_best = min(facade_best, perf_counter() - start)

        start = perf_counter()
        traced = dp_result(
            tree, library, coupling, mode="buffopt", max_buffers=4,
            profile=profiler,
        )
        traced_best = min(traced_best, perf_counter() - start)
        profiler.finish()

    assert raw.outcomes == plain.outcomes == traced.outcomes, (
        "facade/profiled runs diverged from the raw engine"
    )
    overhead = facade_best / raw_best - 1.0
    traced_overhead = traced_best / raw_best - 1.0
    print(
        f"facade overhead (obs disabled): {overhead * 100:+5.2f}% "
        f"(gate: <= {budget * 100:.0f}%)   "
        f"traced+profiled: {traced_overhead * 100:+5.2f}% (reported only)"
    )
    if overhead > budget:
        print(
            f"FAIL: disabled-instrumentation facade overhead "
            f"{overhead * 100:.2f}% exceeds the {budget * 100:.0f}% budget "
            f"on the {sinks}-sink net",
            file=sys.stderr,
        )
        return False
    return True


def regression_family(nets: int, seed: int):
    """All three engines over the seeded fleet; returns True if OK.

    Reference and fast must produce bit-identical signatures; the lishi
    fleet is independently certified on every net (its signatures may
    legally differ in the last float digits, so certification — not
    signature equality — is its gate here; the semantic-equivalence
    comparison runs in the head-to-head and the test suite).
    """
    workload = WorkloadConfig(nets=nets, seed=seed)
    specs = population_specs(workload)
    ok = True
    for mode in MODES:
        signatures = {}
        certified = {}
        for engine in ENGINE_ORDER:
            optimizer = BatchOptimizer(
                config=BatchConfig(
                    mode=mode,
                    max_buffers=4,
                    keep_trees=False,
                    certify=True,
                    engine=engine,
                ),
                executor=SerialExecutor(),
                workload=workload,
            )
            report = optimizer.optimize_specs(specs)
            signatures[engine] = report.signatures()
            certified[engine] = report.certified_count
        if signatures["reference"] != signatures["fast"]:
            print(
                f"FAIL: {mode}: fast engine diverged from reference on "
                f"the {nets}-net family",
                file=sys.stderr,
            )
            ok = False
        for engine in ENGINE_ORDER:
            if certified[engine] != nets:
                print(
                    f"FAIL: {mode}: {engine} certification not clean "
                    f"({certified[engine]}/{nets})",
                    file=sys.stderr,
                )
                ok = False
        if ok:
            print(
                f"{mode}: {nets} nets bit-identical reference/fast, "
                f"all engines {nets}/{nets} certificate-clean"
            )
    return ok


def write_artifact(path, sinks, repeats, seed, timings, smoke):
    """Persist the three-way timings + ratios with git/seed attribution."""
    from conftest import _git_sha

    modes = {}
    for mode, seconds in timings.items():
        reference_s = seconds["reference"]
        fast_s = seconds["fast"]
        lishi_s = seconds["lishi"]
        modes[mode] = {
            "reference_ms": round(reference_s * 1e3, 3),
            "fast_ms": round(fast_s * 1e3, 3),
            "lishi_ms": round(lishi_s * 1e3, 3),
            "speedup_fast_over_reference": round(reference_s / fast_s, 3),
            "speedup_lishi_over_fast": round(fast_s / lishi_s, 3),
            "speedup_lishi_over_reference": round(reference_s / lishi_s, 3),
        }
    artifact = {
        "kind": "engine-bench",
        "sinks": sinks,
        "library": list(EIGHT_BUFFER_NAMES),
        "repeats": repeats,
        "seed": seed,
        "smoke": smoke,
        "git_sha": _git_sha(),
        "modes": modes,
    }
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sinks", type=int, default=500)
    parser.add_argument("--nets", type=int, default=200)
    parser.add_argument("--seed", type=int, default=19981101)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1]
        / "BENCH_engines.json",
        help="where the full run writes its JSON artifact",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small net + fleet, correctness-only (CI gate, no perf "
        "assertions, no artifact)",
    )
    args = parser.parse_args(argv)

    sinks = 60 if args.smoke else args.sinks
    nets = 24 if args.smoke else args.nets
    repeats = 2 if args.smoke else args.repeats

    print(f"engine bench: {sinks}-sink chain, 8-buffer library, "
          f"best of {repeats}")
    timings = head_to_head(sinks, repeats)
    worst_fast = worst_lishi_delay = float("inf")
    for mode, seconds in timings.items():
        fast_speedup = seconds["reference"] / seconds["fast"]
        lishi_speedup = seconds["fast"] / seconds["lishi"]
        worst_fast = min(worst_fast, fast_speedup)
        if mode == "delay":
            worst_lishi_delay = lishi_speedup
        print(
            f"{mode:8s}: reference {seconds['reference'] * 1e3:9.2f} ms   "
            f"fast {seconds['fast'] * 1e3:9.2f} ms   "
            f"lishi {seconds['lishi'] * 1e3:9.2f} ms   "
            f"(fast {fast_speedup:.2f}x over ref, "
            f"lishi {lishi_speedup:.2f}x over fast)"
        )
    print("head-to-head: fast bit-identical, lishi semantically "
          "equivalent, both modes")

    if not overhead_gate(sinks, max(repeats, 5)):
        return 1

    if not regression_family(nets, args.seed):
        return 1

    if args.smoke:
        return 0

    write_artifact(args.out, sinks, repeats, args.seed, timings, args.smoke)
    if worst_fast < 2.0:
        print(
            f"FAIL: fast engine speedup {worst_fast:.2f}x is under the 2x "
            f"bar on the {sinks}-sink net",
            file=sys.stderr,
        )
        return 1
    if worst_lishi_delay < 2.0:
        print(
            f"FAIL: lishi engine delay-mode speedup {worst_lishi_delay:.2f}x "
            f"over fast is under the 2x bar on the {sinks}-sink net",
            file=sys.stderr,
        )
        return 1
    return 0


# -- pytest-benchmark integration (shares the suite's fixtures) ------------


def test_fast_engine_head_to_head(benchmark, results_dir):
    from conftest import write_result

    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(120)
    options = dict(noise_aware=True, track_counts=True, max_buffers=4)

    fast = benchmark(
        lambda: run_dp(
            tree, library, coupling, DPOptions(engine="fast", **options)
        )
    )
    start = perf_counter()
    reference = run_dp(
        tree, library, coupling, DPOptions(engine="reference", **options)
    )
    reference_s = perf_counter() - start
    assert reference.outcomes == fast.outcomes

    text = "\n".join([
        "engine bench (120-sink chain, buffopt, 8-buffer library)",
        f"reference: {reference_s * 1e3:8.2f} ms (single run)",
        "fast:      see pytest-benchmark stats",
    ])
    write_result(results_dir, "engines.txt", text)


def test_lishi_engine_head_to_head(benchmark, results_dir):
    from conftest import write_result

    library = default_buffer_library().restricted(list(EIGHT_BUFFER_NAMES))
    coupling = CouplingModel.estimation_mode(default_technology())
    tree = chain_net(120)
    options = dict(noise_aware=False, track_counts=True, max_buffers=4)

    lishi = benchmark(
        lambda: run_dp(
            tree, library, coupling, DPOptions(engine="lishi", **options)
        )
    )
    start = perf_counter()
    reference = run_dp(
        tree, library, coupling, DPOptions(engine="reference", **options)
    )
    reference_s = perf_counter() - start
    assert_semantically_equal(reference, lishi, "bench [lishi]")

    text = "\n".join([
        "lishi engine bench (120-sink chain, delay, 8-buffer library)",
        f"reference: {reference_s * 1e3:8.2f} ms (single run)",
        "lishi:     see pytest-benchmark stats",
    ])
    write_result(results_dir, "engines_lishi.txt", text)


if __name__ == "__main__":
    raise SystemExit(main())
